"""Setup shim: enables legacy editable installs (`pip install -e .`) in
environments whose setuptools predates PEP 660 editable wheels."""

from setuptools import setup

setup()
