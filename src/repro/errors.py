"""Exception hierarchy for the Perm reproduction.

Every error raised by the library derives from :class:`PermError`, so a
caller can catch one type.  Subclasses map to the pipeline stage that
detected the problem (Figure 3 of the paper): lexing/parsing, semantic
analysis, provenance rewriting, planning, and execution.
"""

from __future__ import annotations


class PermError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(PermError):
    """Raised by the lexer or parser for malformed SQL / SQL-PLE input.

    Carries the 1-based line and column where the problem was detected so
    clients (and the Perm browser) can point at the offending token.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.message = message
        self.line = line
        self.column = column


class AnalyzeError(PermError):
    """Raised during semantic analysis: unknown relations or columns,
    ambiguous references, arity mismatches, bad aggregate usage, etc."""


class CatalogError(PermError):
    """Raised for catalog violations: duplicate table names, dropping a
    relation that does not exist, schema/row arity mismatches."""


class TypeCheckError(AnalyzeError):
    """Raised when an expression is not well typed (e.g. ``1 + 'a'``)."""


class RewriteError(PermError):
    """Raised by the provenance rewriter when a query cannot be rewritten
    under the requested contribution semantics."""


class PlanError(PermError):
    """Raised by the planner when a logical tree has no physical
    implementation (should not happen for trees built by the analyzer)."""


class CostEstimationError(PermError):
    """Raised by the cost estimator when a plan's cardinality cannot be
    grounded in catalog statistics (e.g. a scan of a relation the catalog
    does not know). Cost-based decisions must fall back to the syntactic
    plan instead of optimizing on fabricated numbers."""


class ExecutionError(PermError):
    """Raised at runtime: division by zero, scalar subquery returning more
    than one row, cast failures, and similar data-dependent errors."""


class ProgrammingError(PermError):
    """Raised for misuse of the DB-API front end: binding the wrong number
    of parameters, unknown named parameters, operating on a closed
    connection or cursor (mirrors PEP 249's ProgrammingError)."""


class OperationalError(PermError):
    """Raised for errors related to the database's operation rather than
    the statement's content (PEP 249's OperationalError): transaction
    state violations such as SAVEPOINT outside a transaction or rolling
    back to an unknown savepoint."""


class SerializationError(OperationalError):
    """Raised when a COMMIT loses the snapshot-isolation write-write
    race: another transaction committed a table this one wrote after
    this one's snapshot was taken (first-committer-wins). The losing
    transaction is rolled back; the standard remedy is to retry it."""


class ServerBusy(OperationalError):
    """Raised (and sent over the wire) when the SQL server rejects work
    for capacity reasons: the session limit is reached, or the worker
    queue is at its depth limit. The request had no effect; clients
    should back off and retry."""


class IntegrityError(PermError):
    """Raised when a change would violate relational integrity (PEP 249's
    IntegrityError; reserved — the engine currently enforces no
    constraints, but DB-API clients expect the name to exist)."""


class NotSupportedError(PermError):
    """Raised for DB-API features this engine does not provide (PEP 249's
    NotSupportedError)."""


class PermWarning(Exception):
    """Base class for important non-fatal conditions (PEP 249's Warning;
    exposed as ``repro.Warning``)."""
