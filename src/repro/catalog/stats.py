"""Table statistics for the cost model.

PostgreSQL's ANALYZE gathers row counts and per-column distinct counts;
Perm's cost-based rewrite-strategy selection (paper §2.2: "a heuristic
and a cost-based solution for choosing the best rewrite strategy") needs
the same numbers. Statistics are computed lazily per table version and
cached on the catalog entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datatypes import value_identity
from ..storage.table import HeapTable


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for a single column."""

    name: str
    n_distinct: int
    null_fraction: float

    @property
    def selectivity_eq(self) -> float:
        """Estimated selectivity of an equality predicate on this column."""
        if self.n_distinct <= 0:
            return 1.0
        return (1.0 - self.null_fraction) / self.n_distinct


@dataclass(frozen=True)
class TableStats:
    """Statistics for a whole table."""

    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())


def compute_table_stats(table: HeapTable) -> TableStats:
    """One full scan computing row count, distinct counts and null fractions."""
    row_count = len(table.rows)
    columns: dict[str, ColumnStats] = {}
    for position, attribute in enumerate(table.schema):
        distinct_values = set()
        nulls = 0
        for row in table.rows:
            value = row[position]
            if value is None:
                nulls += 1
            else:
                distinct_values.add(value_identity(value))
        null_fraction = (nulls / row_count) if row_count else 0.0
        columns[attribute.name.lower()] = ColumnStats(
            name=attribute.name,
            n_distinct=len(distinct_values),
            null_fraction=null_fraction,
        )
    return TableStats(row_count=row_count, columns=columns)
