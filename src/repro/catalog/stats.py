"""Table statistics for the cost model.

PostgreSQL's ANALYZE gathers row counts and per-column distinct counts;
Perm's cost-based rewrite-strategy selection (paper §2.2: "a heuristic
and a cost-based solution for choosing the best rewrite strategy") needs
the same numbers. Statistics are computed lazily per table version and
cached on the catalog entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datatypes import value_identity
from ..storage.table import HeapTable


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for a single column.

    ``min_value``/``max_value`` are kept for orderable (numeric) columns
    only; the cost model uses them for range-predicate selectivity
    (``WHERE c < k`` interpolates ``k`` into ``[min, max]`` instead of
    assuming the System-R constant).
    """

    name: str
    n_distinct: int
    null_fraction: float
    min_value: float | None = None
    max_value: float | None = None

    @property
    def selectivity_eq(self) -> float:
        """Estimated selectivity of an equality predicate on this column."""
        if self.n_distinct <= 0:
            return 1.0
        return (1.0 - self.null_fraction) / self.n_distinct


@dataclass(frozen=True)
class TableStats:
    """Statistics for a whole table."""

    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())

    def column_is_unique(self, name: str) -> bool:
        """Whether *name* currently holds a distinct non-NULL value in
        every row — a statistics-derived key. Statistics are exact (one
        full scan per table version), so this is a fact about the current
        heap, not an estimate; consumers that bake it into a plan must
        revalidate against :attr:`HeapTable.version`."""
        stats = self.column(name)
        if stats is None:
            return False
        return stats.null_fraction == 0.0 and stats.n_distinct == self.row_count


def compute_table_stats(table: HeapTable) -> TableStats:
    """One full scan computing row count, distinct counts, null fractions
    and (for numeric columns) min/max bounds."""
    row_count = len(table.rows)
    columns: dict[str, ColumnStats] = {}
    for position, attribute in enumerate(table.schema):
        distinct_values = set()
        nulls = 0
        low: float | None = None
        high: float | None = None
        for row in table.rows:
            value = row[position]
            if value is None:
                nulls += 1
                continue
            distinct_values.add(value_identity(value))
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if low is None or value < low:
                    low = value
                if high is None or value > high:
                    high = value
        null_fraction = (nulls / row_count) if row_count else 0.0
        columns[attribute.name.lower()] = ColumnStats(
            name=attribute.name,
            n_distinct=len(distinct_values),
            null_fraction=null_fraction,
            min_value=low,
            max_value=high,
        )
    return TableStats(row_count=row_count, columns=columns)
