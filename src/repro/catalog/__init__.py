"""Catalog: schemas, tables, views, statistics and provenance metadata."""

from .catalog import Catalog, TableEntry, ViewEntry  # noqa: F401
from .schema import Attribute, Schema  # noqa: F401
from .stats import ColumnStats, TableStats, compute_table_stats  # noqa: F401
