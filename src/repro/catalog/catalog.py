"""The system catalog: tables, views and provenance registrations.

Views are stored as their defining query AST (the analyzer unfolds them,
mirroring the "view unfolding" step in the paper's Figure 3 pipeline).

Eager provenance support (paper §1: "decide whether he will store the
provenance of a query for later reuse"): when a table or view is created
from a ``SELECT PROVENANCE`` query, the catalog records which of its
columns are provenance attributes. A later query over that relation can
then resume the rewrite from the stored columns instead of recomputing
provenance — the incremental provenance computation of §2.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..errors import CatalogError
from ..storage.table import HeapTable
from .schema import Schema
from .stats import TableStats, compute_table_stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sql import ast


@dataclass
class TableEntry:
    """A stored base table."""

    name: str
    table: HeapTable
    # Provenance metadata for eagerly materialized provenance (column
    # names that carry provenance, in schema order).
    provenance_attrs: tuple[str, ...] = ()
    # Small statistics cache keyed by version stamp, so sessions at
    # different snapshots (a long reader plus a committing writer) do
    # not evict each other's entry on every statement. Bounded to a few
    # stamps; values pair (stamp -> stats) at insertion, so a reader can
    # never see stats of one version under the stamp of another.
    _stats_cache: dict[int, TableStats] = field(default_factory=dict, repr=False)

    # How many distinct visible versions keep cached statistics at once
    # (concurrent sessions rarely straddle more snapshots than this).
    _STATS_CACHE_SIZE = 4

    @property
    def schema(self) -> Schema:
        return self.table.schema

    def stats(self) -> TableStats:
        """Statistics of the *visible* version of the table (the active
        transaction's snapshot, else the latest committed state), cached
        per version stamp. Because stamps are unique per distinct state
        — transaction-local states included — a transaction's private
        statistics can never be served to another session, and rolling
        back restores the committed stamp and with it the committed
        statistics."""
        version = self.table.version
        stats = self._stats_cache.get(version)
        if stats is None:
            stats = compute_table_stats(self.table)
            self._stats_cache[version] = stats
            while len(self._stats_cache) > self._STATS_CACHE_SIZE:
                # pop(key, None): a racing thread may have evicted the
                # same oldest entry already.
                self._stats_cache.pop(next(iter(self._stats_cache)), None)
        return stats


@dataclass
class MatviewEntry(TableEntry):
    """A materialized view: a stored heap table plus its defining query.

    The heap makes MVCC snapshots, statistics and the WAL cover the
    stored rows exactly like a base table; the query (and its SQL text,
    which survives checkpoints) lets the engine refresh or incrementally
    maintain the contents. ``stale`` marks contents that no longer match
    the base tables (non-delta-safe shape, coarse base write, or a view
    redefinition); reads outside a transaction refresh stale matviews
    before planning.

    The maintenance fields below are owned by :mod:`repro.engine.matview`:
    ``base_versions`` maps each base table to the heap version stamp the
    stored rows were computed from, and ``source_ids`` holds, per stored
    row, the tuple of contributing base-row ids per leaf of the rewritten
    plan (``None`` when the shape is not delta-safe).
    """

    query: "ast.QueryExpr" = None  # type: ignore[assignment]
    sql: str = ""
    with_provenance: bool = False
    stale: bool = False
    base_tables: tuple[str, ...] = ()
    base_versions: dict[str, int] = field(default_factory=dict)
    delta_safe: bool = False
    source_ids: Optional[list[tuple]] = None
    # Compiled MatviewProgram (engine.matview); rebuilt lazily after
    # recovery or refresh.
    program: object = field(default=None, repr=False)


@dataclass
class ViewEntry:
    """A stored view: name, defining query AST, and its SQL text."""

    name: str
    query: "ast.QueryExpr"
    sql: str
    provenance_attrs: tuple[str, ...] = ()


class Catalog:
    """Name -> relation mapping with case-insensitive lookup.

    ``version`` increments on every schema-level change (create/drop of a
    relation, provenance registration). Row-level DML does not bump it —
    plans scan heap tables in place, so cached plans stay valid across
    inserts and deletes but not across schema changes. The engine's plan
    cache keys on this counter (:mod:`repro.engine.pipeline`).
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._views: dict[str, ViewEntry] = {}
        self._matviews: dict[str, MatviewEntry] = {}
        self.version = 0
        # Schema-change observer (set by repro.storage.persist so DDL —
        # which is non-transactional and bypasses the commit hook — still
        # reaches the write-ahead log). None for in-memory databases.
        self.observer = None

    # -- tables ---------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        if_not_exists: bool = False,
        provenance_attrs: tuple[str, ...] = (),
    ) -> TableEntry:
        key = name.lower()
        if key in self._tables or key in self._views or key in self._matviews:
            if if_not_exists and key in self._tables:
                return self._tables[key]
            raise CatalogError(f"relation {name!r} already exists")
        entry = TableEntry(name=name, table=HeapTable(name, schema), provenance_attrs=provenance_attrs)
        self._tables[key] = entry
        self.version += 1
        if self.observer is not None:
            self.observer.on_create_table(entry)
        return entry

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return False
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self.version += 1
        if self.observer is not None:
            self.observer.on_drop_relation("table", name)
        return True

    def table(self, name: str) -> TableEntry:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def tables(self) -> list[TableEntry]:
        return list(self._tables.values())

    # -- views ----------------------------------------------------------
    def create_view(
        self,
        name: str,
        query: "ast.QueryExpr",
        sql: str,
        or_replace: bool = False,
        provenance_attrs: tuple[str, ...] = (),
    ) -> ViewEntry:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"relation {name!r} already exists as a table")
        if key in self._matviews:
            raise CatalogError(f"relation {name!r} already exists as a materialized view")
        if key in self._views and not or_replace:
            raise CatalogError(f"view {name!r} already exists")
        entry = ViewEntry(name=name, query=query, sql=sql, provenance_attrs=provenance_attrs)
        self._views[key] = entry
        self.version += 1
        if self.observer is not None:
            self.observer.on_create_view(entry)
        return entry

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return False
            raise CatalogError(f"view {name!r} does not exist")
        del self._views[key]
        self.version += 1
        if self.observer is not None:
            self.observer.on_drop_relation("view", name)
        return True

    def view(self, name: str) -> ViewEntry:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"view {name!r} does not exist") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    @property
    def views(self) -> list[ViewEntry]:
        return list(self._views.values())

    # -- materialized views ---------------------------------------------
    def create_matview(
        self,
        name: str,
        schema: Schema,
        query: "ast.QueryExpr",
        sql: str,
        with_provenance: bool = False,
        provenance_attrs: tuple[str, ...] = (),
    ) -> MatviewEntry:
        key = name.lower()
        if key in self._tables or key in self._views or key in self._matviews:
            raise CatalogError(f"relation {name!r} already exists")
        entry = MatviewEntry(
            name=name,
            table=HeapTable(name, schema),
            provenance_attrs=provenance_attrs,
            query=query,
            sql=sql,
            with_provenance=with_provenance,
        )
        self._matviews[key] = entry
        self.version += 1
        if self.observer is not None:
            self.observer.on_create_matview(entry)
        return entry

    def drop_matview(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        if key not in self._matviews:
            if if_exists:
                return False
            raise CatalogError(f"materialized view {name!r} does not exist")
        del self._matviews[key]
        self.version += 1
        if self.observer is not None:
            self.observer.on_drop_relation("materialized view", name)
        return True

    def matview(self, name: str) -> MatviewEntry:
        try:
            return self._matviews[name.lower()]
        except KeyError:
            raise CatalogError(f"materialized view {name!r} does not exist") from None

    def has_matview(self, name: str) -> bool:
        return name.lower() in self._matviews

    @property
    def matviews(self) -> list[MatviewEntry]:
        return list(self._matviews.values())

    def matview_fresh(self, entry: MatviewEntry) -> bool:
        """Whether *entry*'s stored rows match its base tables **as
        visible to the caller's snapshot** — ``table.version`` resolves
        through the active transaction, so a transaction that wrote a
        base table sees a version mismatch here and must unfold (its own
        uncommitted writes are not in the stored heap). This is the
        single freshness predicate: the analyzer's scan-vs-unfold
        decision and the plan-level revalidation both call it."""
        if entry.stale:
            return False
        for name in entry.base_tables:
            if not self.has_table(name):
                return False
            if self.table(name).table.version != entry.base_versions.get(name):
                return False
        return True

    def mark_matview_stale(self, name: str) -> None:
        """Flag a materialized view as out of date. Bumps the catalog
        version only on the fresh -> stale transition, so cached plans
        that scan the stored heap stop being served; repeated marks are
        idempotent and free."""
        entry = self.matview(name)
        if entry.stale:
            return
        entry.stale = True
        self.version += 1
        if self.observer is not None:
            self.observer.on_matview_stale(entry.name)

    def set_matview_fresh(self, name: str) -> None:
        """Clear the stale flag after a successful refresh (bumps the
        catalog version so plans that unfolded the stale definition are
        invalidated in favour of heap scans)."""
        entry = self.matview(name)
        entry.stale = False
        self.version += 1
        if self.observer is not None:
            self.observer.on_matview_fresh(entry.name)

    def scan_entry(self, name: str) -> TableEntry:
        """Read-path resolution: the heap-backed entry for *name*, which
        is either a base table or a materialized view. DML and DDL sites
        keep using the strict :meth:`table` / :meth:`matview` lookups."""
        key = name.lower()
        entry = self._tables.get(key)
        if entry is not None:
            return entry
        entry = self._matviews.get(key)
        if entry is not None:
            return entry
        raise CatalogError(f"table {name!r} does not exist")

    # -- generic --------------------------------------------------------
    def has_relation(self, name: str) -> bool:
        key = name.lower()
        return key in self._tables or key in self._views or key in self._matviews

    def relation_names(self) -> list[str]:
        return sorted(
            [e.name for e in self._tables.values()]
            + [e.name for e in self._views.values()]
            + [e.name for e in self._matviews.values()]
        )

    def register_provenance_attrs(self, name: str, attrs: tuple[str, ...]) -> None:
        """Record that relation *name* stores provenance in columns *attrs*
        (eager provenance registration)."""
        key = name.lower()
        if key in self._tables:
            self._tables[key].provenance_attrs = attrs
        elif key in self._views:
            self._views[key].provenance_attrs = attrs
        elif key in self._matviews:
            self._matviews[key].provenance_attrs = attrs
        else:
            raise CatalogError(f"relation {name!r} does not exist")
        self.version += 1
        if self.observer is not None:
            self.observer.on_register_provenance(name, attrs)

    def provenance_attrs(self, name: str) -> tuple[str, ...]:
        key = name.lower()
        if key in self._tables:
            return self._tables[key].provenance_attrs
        if key in self._views:
            return self._views[key].provenance_attrs
        if key in self._matviews:
            return self._matviews[key].provenance_attrs
        raise CatalogError(f"relation {name!r} does not exist")
