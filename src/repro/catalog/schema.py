"""Schemas and attributes.

An :class:`Attribute` describes one column: its (case-preserving) name
and static type. A :class:`Schema` is an ordered attribute list with
case-insensitive lookup, matching PostgreSQL's folding of unquoted
identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..datatypes import SQLType
from ..errors import CatalogError


@dataclass(frozen=True)
class Attribute:
    """A named, typed column."""

    name: str
    type: SQLType

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.type)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} {self.type}"


class Schema:
    """Ordered list of attributes with case-insensitive name lookup."""

    __slots__ = ("attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        self.attributes: tuple[Attribute, ...] = tuple(attributes)
        index: dict[str, int] = {}
        for position, attribute in enumerate(self.attributes):
            key = attribute.name.lower()
            if key in index:
                raise CatalogError(f"duplicate attribute name {attribute.name!r} in schema")
            index[key] = position
        self._index = index

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __getitem__(self, position: int) -> Attribute:
        return self.attributes[position]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.attributes == other.attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Schema(" + ", ".join(str(a) for a in self.attributes) + ")"

    # -- lookup --------------------------------------------------------------
    @property
    def names(self) -> list[str]:
        return [a.name for a in self.attributes]

    @property
    def types(self) -> list[SQLType]:
        return [a.type for a in self.attributes]

    def has(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        """Position of attribute *name* (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no attribute {name!r} in schema ({', '.join(self.names)})"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.index_of(name)]

    # -- construction helpers --------------------------------------------------
    def concat(self, other: "Schema") -> "Schema":
        return Schema(self.attributes + other.attributes)

    def project(self, names: Iterable[str]) -> "Schema":
        return Schema(self.attribute(n) for n in names)

    def renamed(self, new_names: Iterable[str]) -> "Schema":
        new = tuple(new_names)
        if len(new) != len(self.attributes):
            raise CatalogError(
                f"rename expects {len(self.attributes)} names, got {len(new)}"
            )
        return Schema(a.renamed(n) for a, n in zip(self.attributes, new))


def schema_of(*pairs: tuple[str, SQLType]) -> Schema:
    """Convenience constructor: ``schema_of(("id", SQLType.INT), ...)``."""
    return Schema(Attribute(name, type_) for name, type_ in pairs)
