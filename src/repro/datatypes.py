"""SQL value model: types, casts, three-valued logic and arithmetic.

The engine represents SQL values as plain Python objects:

========  ==========================
SQL type  Python representation
========  ==========================
INT       ``int``
FLOAT     ``float``
TEXT      ``str``
BOOL      ``bool``
NULL      ``None`` (any type)
========  ==========================

All comparison and boolean operations follow SQL three-valued logic
(``None`` standing in for ``unknown``), which the provenance rewrite
rules rely on — e.g. the aggregation rule joins on *null-safe* equality
(``IS NOT DISTINCT FROM``) so that NULL group keys still find their
witnesses.
"""

from __future__ import annotations

import enum
import math
from typing import Any

from .errors import ExecutionError, TypeCheckError

# The SQL value type used throughout the engine.
Value = int | float | str | bool | None


class SQLType(enum.Enum):
    """Static SQL types known to the analyzer."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    # Type of an untyped NULL literal; unifies with anything.
    NULL = "null"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_TYPE_ALIASES = {
    "int": SQLType.INT,
    "integer": SQLType.INT,
    "int4": SQLType.INT,
    "int8": SQLType.INT,
    "bigint": SQLType.INT,
    "smallint": SQLType.INT,
    "float": SQLType.FLOAT,
    "float8": SQLType.FLOAT,
    "real": SQLType.FLOAT,
    "double": SQLType.FLOAT,
    "double precision": SQLType.FLOAT,
    "numeric": SQLType.FLOAT,
    "decimal": SQLType.FLOAT,
    "text": SQLType.TEXT,
    "varchar": SQLType.TEXT,
    "char": SQLType.TEXT,
    "character varying": SQLType.TEXT,
    "string": SQLType.TEXT,
    "bool": SQLType.BOOL,
    "boolean": SQLType.BOOL,
}


def type_from_name(name: str) -> SQLType:
    """Resolve a SQL type name (``INTEGER``, ``varchar`` ...) to a :class:`SQLType`."""
    try:
        return _TYPE_ALIASES[name.strip().lower()]
    except KeyError:
        raise TypeCheckError(f"unknown type name: {name!r}") from None


def type_of_value(value: Value) -> SQLType:
    """Dynamic type of a Python value under the SQL value model."""
    if value is None:
        return SQLType.NULL
    if isinstance(value, bool):  # bool before int: bool is a subclass of int
        return SQLType.BOOL
    if isinstance(value, int):
        return SQLType.INT
    if isinstance(value, float):
        return SQLType.FLOAT
    if isinstance(value, str):
        return SQLType.TEXT
    raise TypeCheckError(f"value {value!r} is not a SQL value")


_NUMERIC = (SQLType.INT, SQLType.FLOAT)


def is_numeric(t: SQLType) -> bool:
    return t in _NUMERIC or t is SQLType.NULL


def unify_types(a: SQLType, b: SQLType, context: str = "expression") -> SQLType:
    """Least common type of *a* and *b* (used for CASE branches, set
    operations and IN lists). NULL unifies with anything; INT and FLOAT
    unify to FLOAT. Raises :class:`TypeCheckError` otherwise."""
    if a is b:
        return a
    if a is SQLType.NULL:
        return b
    if b is SQLType.NULL:
        return a
    if a in _NUMERIC and b in _NUMERIC:
        return SQLType.FLOAT
    raise TypeCheckError(f"cannot unify types {a} and {b} in {context}")


def cast_value(value: Value, target: SQLType) -> Value:
    """Run-time CAST. NULL casts to NULL of any type."""
    if value is None:
        return None
    try:
        if target is SQLType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, str):
                return int(value.strip())
            return int(value)
        if target is SQLType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
            return float(value)
        if target is SQLType.TEXT:
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, float) and value.is_integer():
                return str(value)
            return str(value)
        if target is SQLType.BOOL:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return value != 0
            lowered = value.strip().lower()
            if lowered in ("t", "true", "yes", "on", "1"):
                return True
            if lowered in ("f", "false", "no", "off", "0"):
                return False
            raise ValueError(lowered)
    except (ValueError, TypeError) as exc:
        raise ExecutionError(f"cannot cast {value!r} to {target}") from exc
    raise ExecutionError(f"cannot cast to {target}")


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------

def tvl_and(a: bool | None, b: bool | None) -> bool | None:
    """SQL AND: false dominates unknown."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def tvl_or(a: bool | None, b: bool | None) -> bool | None:
    """SQL OR: true dominates unknown."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def tvl_not(a: bool | None) -> bool | None:
    """SQL NOT: NOT unknown = unknown."""
    if a is None:
        return None
    return not a


def is_true(a: bool | None) -> bool:
    """Whether a 3VL value passes a WHERE/HAVING/JOIN condition."""
    return a is True


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------

def _comparable(a: Value, b: Value) -> None:
    ta, tb = type_of_value(a), type_of_value(b)
    if ta in _NUMERIC and tb in _NUMERIC:
        return
    if ta is tb:
        return
    raise ExecutionError(f"cannot compare {ta} with {tb} ({a!r} vs {b!r})")


def compare(a: Value, b: Value) -> int | None:
    """Spaceship comparison under SQL semantics.

    Returns ``None`` when either side is NULL (unknown), otherwise
    -1 / 0 / +1. Booleans order ``false < true``; strings compare
    lexicographically (codepoint order, as in the C collation).
    """
    if a is None or b is None:
        return None
    _comparable(a, b)
    if a < b:  # type: ignore[operator]
        return -1
    if a > b:  # type: ignore[operator]
        return 1
    return 0


def eq(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c == 0


def ne(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c != 0


def lt(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c < 0


def le(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c <= 0


def gt(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c > 0


def ge(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c >= 0


def not_distinct(a: Value, b: Value) -> bool:
    """``a IS NOT DISTINCT FROM b`` — null-safe equality.

    Two NULLs are *not distinct*; a NULL and a non-NULL are distinct.
    This is the join predicate the aggregation and set-operation rewrite
    rules use to re-attach provenance to group keys that may be NULL.
    """
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    return compare(a, b) == 0


def distinct(a: Value, b: Value) -> bool:
    """``a IS DISTINCT FROM b``."""
    return not not_distinct(a, b)


# Sort key helper: SQL orders NULLs last for ASC (PostgreSQL default).
_NULL_LAST = 1
_NULL_FIRST = 0


def sort_key(value: Value, descending: bool = False, nulls_first: bool | None = None):
    """Build a totally ordered key for ORDER BY with NULL placement.

    PostgreSQL defaults: NULLs last for ascending, first for descending.
    """
    if nulls_first is None:
        nulls_first = descending
    null_rank = _NULL_FIRST if nulls_first else _NULL_LAST
    if value is None:
        return (null_rank, 0, "")
    # Normalize across int/float and bool so mixed columns sort stably.
    # Ints stay exact (Python compares int vs float exactly); a float()
    # normalization here would make integers 2^53 apart tie and sort in
    # input order instead of numeric order.
    if isinstance(value, bool):
        return (1 - null_rank, 0, int(value))
    if isinstance(value, (int, float)):
        return (1 - null_rank, 0, value)
    return (1 - null_rank, 1, value)


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------

def arith(op: str, a: Value, b: Value) -> Value:
    """Binary arithmetic with NULL propagation and SQL division rules.

    ``/`` on two INTs performs integer division (PostgreSQL semantics);
    ``%`` is only defined on INTs.
    """
    if a is None or b is None:
        return None
    ta, tb = type_of_value(a), type_of_value(b)
    if op == "||":
        if ta is not SQLType.TEXT or tb is not SQLType.TEXT:
            raise ExecutionError(f"|| requires text operands, got {ta} and {tb}")
        return a + b  # type: ignore[operator]
    if not (ta in _NUMERIC and tb in _NUMERIC):
        raise ExecutionError(f"arithmetic {op!r} requires numeric operands, got {ta} and {tb}")
    assert isinstance(a, (int, float)) and isinstance(b, (int, float))
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise ExecutionError("division by zero")
        if isinstance(a, int) and isinstance(b, int):
            # SQL integer division truncates toward zero.
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        return a / b
    if op == "%":
        if not (isinstance(a, int) and isinstance(b, int)):
            raise ExecutionError("% requires integer operands")
        if b == 0:
            raise ExecutionError("division by zero")
        # SQL modulo takes the sign of the dividend.
        r = abs(a) % abs(b)
        return r if a >= 0 else -r
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def negate(a: Value) -> Value:
    if a is None:
        return None
    if isinstance(a, bool) or not isinstance(a, (int, float)):
        raise ExecutionError(f"unary minus requires a numeric operand, got {type_of_value(a)}")
    return -a


def format_value(value: Value) -> str:
    """Render a value the way the Perm browser result grid shows it."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "t" if value else "f"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)


def value_identity(value: Value) -> tuple[int, Any]:
    """Hash/equality key distinguishing ``1`` from ``1.0`` from ``True``.

    Python hashes ``1 == 1.0 == True`` identically; SQL DISTINCT and set
    operations must too (they compare by value), so ints and floats
    share one numeric tag while booleans and strings keep their own.
    The numeric value itself is kept **exact** — Python guarantees
    ``5 == 5.0`` with equal hashes, so cross-type matches still work,
    while big integers beyond 2^53 (where float conversion rounds) can
    no longer collide with their neighbours in hash joins, GROUP BY or
    DISTINCT.
    """
    if value is None:
        return (0, None)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, value)


def row_identity(row: tuple[Value, ...]) -> tuple[tuple[int, Any], ...]:
    """Identity key for a whole tuple (used by DISTINCT, set ops, hash joins)."""
    return tuple(value_identity(v) for v in row)


# ---------------------------------------------------------------------------
# JSON-safe value encoding (shared by the wire protocol and the WAL)
# ---------------------------------------------------------------------------

# RFC 8259 JSON has no Infinity/NaN literals, so non-finite floats travel
# as tagged one-key objects. Unambiguous: SQL values are scalars, never
# objects, so a dict on the wire can only be a tag.
_NONFINITE_DECODE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def to_jsonsafe_value(value: Value) -> object:
    """Encode one SQL value for strict (``allow_nan=False``) JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {"$f": "nan"}
        return {"$f": "inf" if value > 0 else "-inf"}
    return value


def from_jsonsafe_value(value: object) -> Value:
    """Decode one value produced by :func:`to_jsonsafe_value`."""
    if isinstance(value, dict):
        decoded = _NONFINITE_DECODE.get(value.get("$f"))  # type: ignore[arg-type]
        if decoded is not None or value.get("$f") == "nan":
            return decoded if decoded is not None else math.nan
        raise TypeCheckError(f"unknown tagged wire value: {value!r}")
    return value  # type: ignore[return-value]
