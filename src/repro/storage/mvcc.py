"""Multi-version concurrency control: snapshot-isolated transactions.

Perm computes provenance inside a real DBMS — one where provenance
queries run against a *stable snapshot* while other sessions commit
updates underneath them. This module gives the reproduction that
property with the copy-on-write flavor of MVCC:

* Each :class:`~repro.storage.table.HeapTable` holds its latest
  **committed state** as a single ``(rows, version)`` tuple. The rows
  list of a committed state is never mutated again — every committed
  mutation installs a *new* list — so a reference to it is a stable
  snapshot of that table for free.

* A :class:`Transaction` captures, at ``BEGIN``, the committed state of
  every table (one atomic cut, taken under the manager lock). Reads
  inside the transaction resolve against that snapshot; the first write
  to a table makes a private **working copy** (copy-on-write) that only
  this transaction sees.

* ``COMMIT`` re-checks, under the manager lock, that no other
  transaction committed a table this one wrote since its snapshot was
  taken (**first-committer-wins** at table granularity — the snapshot
  isolation write-write rule). A conflict aborts the transaction with
  :class:`~repro.errors.SerializationError`; otherwise every working
  copy is installed as the table's new committed state in one atomic
  reference swap per table.

* **Version stamps** come from one process-global monotonic counter, so
  every distinct visible state of a table — committed or transaction-
  local — has a stamp no other state of that table ever had. Everything
  that used to key on "the global ``HeapTable.version`` counter" (the
  catalog's statistics cache, the optimizer's recorded uniqueness deps,
  the SQLite mirror sync) keys on *snapshot identity* simply by reading
  ``table.version`` through the active transaction.

Which transaction is "active" is a thread-local set by the connection
for the duration of each statement (:func:`activate`); the storage layer
itself never starts or ends transactions.

Isolation level: **snapshot isolation** (Postgres would call it
REPEATABLE READ). Write skew between transactions whose write sets touch
different tables is possible, exactly as under SI. DDL (CREATE/DROP) is
non-transactional: it takes effect immediately and is not undone by
ROLLBACK.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..errors import OperationalError, SerializationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import HeapTable, Row


# ---------------------------------------------------------------------------
# Version stamps
# ---------------------------------------------------------------------------

_stamp_lock = threading.Lock()
_stamp = 0


def next_stamp() -> int:
    """A process-globally unique, monotonically increasing version stamp."""
    global _stamp
    with _stamp_lock:
        _stamp += 1
        return _stamp


# ---------------------------------------------------------------------------
# The active transaction (per thread)
# ---------------------------------------------------------------------------

_tls = threading.local()


def current_transaction() -> Optional["Transaction"]:
    """The transaction the current thread is executing inside, if any."""
    return getattr(_tls, "txn", None)


class _Activation:
    """Context manager installing a transaction as the thread's current
    one for the duration of a statement (re-entrant: nested statement
    execution — e.g. the inner query of INSERT ... SELECT — keeps the
    already-active transaction)."""

    __slots__ = ("_txn", "_prev")

    def __init__(self, txn: "Transaction"):
        self._txn = txn

    def __enter__(self) -> "Transaction":
        self._prev = current_transaction()
        _tls.txn = self._txn
        return self._txn

    def __exit__(self, exc_type, exc, tb) -> None:
        _tls.txn = self._prev


def activate(txn: "Transaction") -> _Activation:
    """Make *txn* the current thread's transaction inside a ``with``."""
    return _Activation(txn)


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class _Working:
    """A transaction's private view of one table's rows.

    Starts in *overlay* mode — the snapshot base list (never copied)
    plus appended rows — so an INSERT-only transaction costs O(rows
    inserted), not O(table). The full copy is materialized only when
    something actually needs it: a read of the table inside the
    transaction, or an UPDATE/DELETE (which replace the row list
    wholesale anyway). Commit installs ``final()`` — at most one copy
    per table per transaction."""

    __slots__ = ("_base", "_extra", "_rows", "version")

    def __init__(self, base: list["Row"], version: int):
        self._base: Optional[list["Row"]] = base
        self._extra: list["Row"] = []
        self._rows: Optional[list["Row"]] = None
        self.version = version

    def append(self, rows: Iterable["Row"]) -> None:
        if self._rows is not None:
            self._rows.extend(rows)
        else:
            self._extra.extend(rows)

    def replace(self, rows: list["Row"]) -> None:
        self._rows = rows
        self._base = None
        self._extra = []

    def visible(self) -> list["Row"]:
        if self._rows is None:
            assert self._base is not None
            self._rows = self._base + self._extra
            self._base = None
            self._extra = []
        return self._rows

    def final(self, in_place: bool = False) -> list["Row"]:
        """The rows to install at commit (materializes at most once).

        ``in_place=True`` — only legal when the caller has proven no
        other live snapshot references the base list (no other active
        transaction) — extends the base directly instead of copying, so
        a solo append-only commit is O(rows appended), not O(table)."""
        if self._rows is not None:
            return self._rows
        assert self._base is not None
        if in_place:
            self._base.extend(self._extra)
            return self._base
        return self._base + self._extra


class Transaction:
    """One snapshot-isolated transaction over a set of heap tables.

    Created by :meth:`TransactionManager.begin`; the snapshot maps every
    table that existed at begin time to its committed ``(rows, version)``
    state. Tables created afterwards (DDL is non-transactional) are
    adopted lazily at their then-current committed state.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        snapshot: dict["HeapTable", tuple[list["Row"], int]],
    ):
        self.manager = manager
        self.status = "active"
        self._snapshot = snapshot
        self._working: dict["HeapTable", _Working] = {}
        # Stack of (savepoint name, saved working state per written table).
        self._savepoints: list[tuple[str, dict["HeapTable", tuple[list["Row"], int]]]] = []

    # -- status --------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.status == "active"

    def _check_active(self) -> None:
        if not self.active:
            raise OperationalError(f"transaction is {self.status}")

    # -- visibility (called from HeapTable properties) -----------------
    def _base(self, table: "HeapTable") -> tuple[list["Row"], int]:
        state = self._snapshot.get(table)
        if state is None:
            # Created after our snapshot (non-transactional DDL): adopt
            # its current committed state so the table is usable at all.
            state = table._state
            self._snapshot[table] = state
        return state

    def visible_rows(self, table: "HeapTable") -> list["Row"]:
        working = self._working.get(table)
        if working is not None:
            return working.visible()
        return self._base(table)[0]

    def visible_version(self, table: "HeapTable") -> int:
        working = self._working.get(table)
        if working is not None:
            return working.version
        return self._base(table)[1]

    # -- writes --------------------------------------------------------
    def append_rows(self, table: "HeapTable", rows: Iterable["Row"]) -> None:
        self._check_active()
        working = self._working.get(table)
        if working is None:
            working = _Working(self._base(table)[0], 0)
            self._working[table] = working
        working.append(rows)
        working.version = next_stamp()

    def replace_rows(self, table: "HeapTable", rows: list["Row"]) -> None:
        self._check_active()
        self._base(table)  # pin the snapshot base for the conflict check
        working = self._working.get(table)
        if working is None:
            working = _Working(self._base(table)[0], 0)
            self._working[table] = working
        working.replace(rows)
        working.version = next_stamp()

    # -- savepoints ----------------------------------------------------
    def savepoint(self, name: str) -> None:
        self._check_active()
        saved = {
            table: (list(working.visible()), working.version)
            for table, working in self._working.items()
        }
        self._savepoints.append((name.lower(), saved))

    def _find_savepoint(self, name: str) -> int:
        key = name.lower()
        for index in range(len(self._savepoints) - 1, -1, -1):
            if self._savepoints[index][0] == key:
                return index
        raise OperationalError(f"no such savepoint: {name}")

    def rollback_to(self, name: str) -> None:
        """Discard every change made after SAVEPOINT *name* (the
        savepoint itself survives, Postgres-style)."""
        self._check_active()
        index = self._find_savepoint(name)
        saved = self._savepoints[index][1]
        for table in list(self._working):
            state = saved.get(table)
            if state is None:
                # First written after the savepoint: back to the snapshot.
                del self._working[table]
            else:
                # The saved rows become the restored working's base —
                # safe without a copy because a _Working never mutates
                # its base, so rolling back to this savepoint again
                # later still sees them untouched. The stamp is restored
                # exactly: the content is bit-identical to what that
                # stamp named, so statistics and plan deps recorded
                # against it become valid again.
                self._working[table] = _Working(state[0], state[1])
        del self._savepoints[index + 1 :]

    def release(self, name: str) -> None:
        self._check_active()
        index = self._find_savepoint(name)
        del self._savepoints[index:]

    # -- outcome -------------------------------------------------------
    def commit(self) -> None:
        """Install every working copy as the new committed state, or
        abort with :class:`SerializationError` if another transaction
        committed one of the written tables first."""
        self._check_active()
        manager = self.manager
        if not self._working:
            self.status = "committed"
            manager.retire(self)
            return
        with manager.lock:
            for table in self._working:
                if table._state[1] != self._snapshot[table][1]:
                    self.status = "aborted"
                    self._working.clear()
                    self._savepoints.clear()
                    manager.retire(self)
                    raise SerializationError(
                        f"could not serialize access to table {table.name!r}: "
                        "a concurrent transaction committed it first "
                        "(retry the transaction)"
                    )
            # Snapshot holders are exactly the live transactions; with
            # none but us, append-only tables may extend the committed
            # list in place (their old stamp becomes permanently
            # unmatchable, so every stamp-keyed cache revalidates).
            solo = manager.is_solo(self)
            for table, working in self._working.items():
                # The working stamp already names exactly this content,
                # so it is reused: plans prepared inside the transaction
                # against its final state stay valid after the commit.
                table._state = (working.final(in_place=solo), working.version)
            manager.commit_count += 1
            manager.retire(self)
        self.status = "committed"
        self._working.clear()
        self._savepoints.clear()

    def rollback(self) -> None:
        """Discard all working copies; committed state is untouched."""
        if self.status == "active":
            self.status = "rolled back"
            self.manager.retire(self)
        self._working.clear()
        self._savepoints.clear()


class TransactionManager:
    """Begin/commit coordination point for one database's tables.

    ``tables`` is a zero-argument callable returning the current heap
    tables (the catalog's, at begin time); keeping it a callable avoids
    an import cycle between the storage and catalog layers.
    ``begin_count``/``commit_count`` are plain telemetry counters (the
    conflict check itself uses version stamps, not sequence numbers).
    """

    def __init__(self, tables: Callable[[], Iterable["HeapTable"]]):
        self.lock = threading.RLock()
        self._tables = tables
        self.begin_count = 0
        self.commit_count = 0
        # Live (active) transactions — i.e. the set of live snapshots.
        # Weak, so a session abandoned without commit/rollback cannot
        # pin the in-place append optimization off forever.
        self._active: "weakref.WeakSet[Transaction]" = weakref.WeakSet()

    def begin(self) -> Transaction:
        """Start a transaction on a consistent snapshot: the committed
        state of every table, captured in one critical section so no
        commit can land between two table captures."""
        with self.lock:
            snapshot = {table: table._state for table in self._tables()}
            self.begin_count += 1
            txn = Transaction(self, snapshot)
            self._active.add(txn)
            return txn

    def retire(self, txn: Transaction) -> None:
        """Drop *txn* from the live-snapshot set (commit/rollback)."""
        with self.lock:
            self._active.discard(txn)

    def is_solo(self, txn: Transaction) -> bool:
        """Whether *txn* is the only live transaction (call under the
        manager lock, from its commit)."""
        return all(other is txn for other in self._active)
