"""Multi-version concurrency control: snapshot-isolated transactions.

Perm computes provenance inside a real DBMS — one where provenance
queries run against a *stable snapshot* while other sessions commit
updates underneath them. This module gives the reproduction that
property with the copy-on-write flavor of MVCC:

* Each :class:`~repro.storage.table.HeapTable` holds its latest
  **committed state** as a single ``(rows, version, row_ids)`` triple.
  The rows list of a committed state is never mutated again — every
  committed mutation installs a *new* list — so a reference to it is a
  stable snapshot of that table for free. ``row_ids`` is a parallel
  list of hidden, process-globally unique row identities that survive
  updates: the same logical row keeps its id across any number of
  ``UPDATE``\\ s, which is what row-level conflict detection keys on.

* A :class:`Transaction` captures, at ``BEGIN``, the committed state of
  every table (one atomic cut, taken under the manager lock). Reads
  inside the transaction resolve against that snapshot; the first write
  to a table makes a private **working copy** (copy-on-write) that only
  this transaction sees. The working copy accumulates the transaction's
  **row-level write set**: the ids of committed rows it updated (to new
  content) or deleted. Freshly inserted rows get fresh ids and are
  never part of the write set — two inserters can never conflict.

* ``COMMIT`` re-checks, under the manager lock, whether another
  transaction committed a written table since this one's snapshot. If
  nothing intervened the working copy installs directly (the cheap,
  common path). Otherwise conflicts are resolved at **row granularity**
  (first-committer-wins per row): the table keeps a short history of
  committed write sets, and the commit aborts with
  :class:`~repro.errors.SerializationError` only if this transaction's
  write set overlaps a row someone else wrote after its snapshot — or
  if either side performed a coarse (whole-table / non-transactional)
  write. Disjoint-row commits *merge*: the transaction's per-row
  effects are replayed onto the current committed state, so two
  transactions updating different rows of one table both succeed.
  ``TransactionManager(granularity="table")`` restores the old
  whole-table first-committer-wins rule (used for comparisons).

* **Version GC**: each committed write appends a history entry (its
  commit sequence number, its row-level write set, and the superseded
  committed state) to the table. The manager weak-tracks live
  transactions, so whenever one retires it computes the **snapshot
  horizon** — the oldest begin sequence any live snapshot holds — and
  frees every history entry at or below it: superseded committed
  states no live snapshot can see. ``gc_stats()`` exposes the
  counters (runs, versions freed, rows freed, versions retained,
  horizon).

* **Version stamps** come from one process-global monotonic counter, so
  every distinct visible state of a table — committed or transaction-
  local — has a stamp no other state of that table ever had. Everything
  that used to key on "the global ``HeapTable.version`` counter" (the
  catalog's statistics cache, the optimizer's recorded uniqueness deps,
  the SQLite mirror sync) keys on *snapshot identity* simply by reading
  ``table.version`` through the active transaction. A merged commit
  gets a fresh stamp (its content includes other transactions' rows).

Which transaction is "active" is a thread-local set by the connection
for the duration of each statement (:func:`activate`); the storage layer
itself never starts or ends transactions.

Isolation level: **snapshot isolation** (Postgres would call it
REPEATABLE READ). Write skew between transactions whose write sets touch
different rows is possible, exactly as under SI. DDL (CREATE/DROP) is
non-transactional; the connection layer rejects it inside an explicit
transaction.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from ..errors import OperationalError, SerializationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import HeapTable, Row


# ---------------------------------------------------------------------------
# Version stamps, commit sequence numbers, row identities
# ---------------------------------------------------------------------------

_counter_lock = threading.Lock()
_stamp = 0
_commit_seq = 0
_row_id = 0


def next_stamp() -> int:
    """A process-globally unique, monotonically increasing version stamp."""
    global _stamp
    with _counter_lock:
        _stamp += 1
        return _stamp


def next_commit_seq() -> int:
    """The next commit sequence number (orders committed states; unlike
    version stamps, which are allocated while a transaction is still
    writing, sequence numbers are allocated at the moment a state
    becomes committed)."""
    global _commit_seq
    with _counter_lock:
        _commit_seq += 1
        return _commit_seq


def current_commit_seq() -> int:
    """The latest allocated commit sequence number."""
    return _commit_seq


def current_stamp() -> int:
    """The latest allocated version stamp."""
    return _stamp


def current_row_id() -> int:
    """The latest allocated row identity."""
    return _row_id


def raise_counters(stamp: int = 0, commit_seq: int = 0, row_id: int = 0) -> None:
    """Raise the global counters to at least the given values (never
    lowers them). Recovery calls this after replaying a write-ahead log
    so stamps, commit sequences and row identities allocated after a
    restart stay monotone with every value the log recorded."""
    global _stamp, _commit_seq, _row_id
    with _counter_lock:
        _stamp = max(_stamp, stamp)
        _commit_seq = max(_commit_seq, commit_seq)
        _row_id = max(_row_id, row_id)


def new_row_ids(count: int) -> list[int]:
    """Allocate *count* fresh row identities (one lock round-trip per
    batch, so bulk inserts stay cheap)."""
    global _row_id
    with _counter_lock:
        start = _row_id + 1
        _row_id += count
    return list(range(start, start + count))


# ---------------------------------------------------------------------------
# The active transaction (per thread)
# ---------------------------------------------------------------------------

_tls = threading.local()


def current_transaction() -> Optional["Transaction"]:
    """The transaction the current thread is executing inside, if any."""
    return getattr(_tls, "txn", None)


class _Activation:
    """Context manager installing a transaction as the thread's current
    one for the duration of a statement (re-entrant: nested statement
    execution — e.g. the inner query of INSERT ... SELECT — keeps the
    already-active transaction)."""

    __slots__ = ("_txn", "_prev")

    def __init__(self, txn: "Transaction"):
        self._txn = txn

    def __enter__(self) -> "Transaction":
        self._prev = current_transaction()
        _tls.txn = self._txn
        return self._txn

    def __exit__(self, exc_type, exc, tb) -> None:
        _tls.txn = self._prev


def activate(txn: "Transaction") -> _Activation:
    """Make *txn* the current thread's transaction inside a ``with``."""
    return _Activation(txn)


# ---------------------------------------------------------------------------
# Committed-write history (per table)
# ---------------------------------------------------------------------------


class HistoryEntry:
    """One committed write of a table: the commit sequence number, the
    row-level write set (``None`` for a coarse whole-table write), and
    the committed state this write superseded (held until GC proves no
    live snapshot can reach it)."""

    __slots__ = ("seq", "written", "superseded")

    def __init__(
        self,
        seq: int,
        written: Optional[frozenset[int]],
        superseded: tuple[list["Row"], int, list[int]],
    ):
        self.seq = seq
        self.written = written
        self.superseded = superseded


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class _Working:
    """A transaction's private view of one table's rows (plus their ids
    and the accumulated row-level write set).

    Starts in *overlay* mode — the snapshot base list (never copied)
    plus appended rows — so an INSERT-only transaction costs O(rows
    inserted), not O(table). The full copy is materialized only when
    something actually needs it: a read of the table inside the
    transaction, or an UPDATE/DELETE (which replace the row list
    wholesale anyway). Commit installs ``final_state()`` — at most one
    copy per table per transaction."""

    __slots__ = (
        "_base",
        "_base_ids",
        "_extra",
        "_extra_ids",
        "_rows",
        "_ids",
        "_base_is_snapshot",
        "version",
        "written",
        "coarse",
    )

    def __init__(
        self,
        base: list["Row"],
        base_ids: list[int],
        version: int,
        base_is_snapshot: bool = True,
    ):
        self._base: Optional[list["Row"]] = base
        self._base_ids: Optional[list[int]] = base_ids
        # Whether the base lists *are* the transaction's snapshot of the
        # table (false after a savepoint restore, whose base is the
        # saved mid-transaction rows) — the condition under which the
        # overlay's extra rows alone describe the delta vs the snapshot.
        self._base_is_snapshot = base_is_snapshot
        self._extra: list["Row"] = []
        self._extra_ids: list[int] = []
        self._rows: Optional[list["Row"]] = None
        self._ids: Optional[list[int]] = None
        self.version = version
        # Ids of committed rows this transaction updated (to different
        # content) or deleted — the row-level write set. Fresh inserts
        # are never in it.
        self.written: set[int] = set()
        # A whole-table operation (truncate) that must keep
        # table-granularity conflicts.
        self.coarse = False

    def append(self, rows: Sequence["Row"], ids: Sequence[int]) -> None:
        if self._rows is not None:
            self._rows.extend(rows)
            assert self._ids is not None
            self._ids.extend(ids)
        else:
            self._extra.extend(rows)
            self._extra_ids.extend(ids)

    def replace(self, rows: list["Row"], ids: list[int]) -> None:
        self._rows = rows
        self._ids = ids
        self._base = None
        self._base_ids = None
        self._extra = []
        self._extra_ids = []

    def visible(self) -> list["Row"]:
        if self._rows is None:
            assert self._base is not None and self._base_ids is not None
            self._rows = self._base + self._extra
            self._ids = self._base_ids + self._extra_ids
            self._base = None
            self._base_ids = None
            self._extra = []
            self._extra_ids = []
        return self._rows

    def visible_ids(self) -> list[int]:
        self.visible()
        assert self._ids is not None
        return self._ids

    def final_state(self, in_place: bool = False) -> tuple[list["Row"], list[int]]:
        """The (rows, ids) to install at commit (materializes at most
        once).

        ``in_place=True`` — only legal when the caller has proven no
        other live snapshot references the base lists (no other active
        transaction, no retained history) — extends the base directly
        instead of copying, so a solo append-only commit is O(rows
        appended), not O(table)."""
        if self._rows is not None:
            assert self._ids is not None
            return self._rows, self._ids
        assert self._base is not None and self._base_ids is not None
        if in_place:
            self._base.extend(self._extra)
            self._base_ids.extend(self._extra_ids)
            return self._base, self._base_ids
        return self._base + self._extra, self._base_ids + self._extra_ids

    def pending_append(self) -> Optional[tuple[list["Row"], list[int]]]:
        """The (rows, ids) appended on top of the snapshot, if this
        working copy is still a pure snapshot overlay — the cheap exact
        delta for WAL records (``None`` once materialized, replaced, or
        rebased onto a savepoint)."""
        if self._rows is None and self._base_is_snapshot:
            assert not self.written and not self.coarse
            return self._extra, self._extra_ids
        return None

    def save(self) -> tuple[list["Row"], list[int], int, set[int], bool]:
        """Snapshot for SAVEPOINT (independent copies of the mutable
        lists; the row tuples themselves are immutable)."""
        return (
            list(self.visible()),
            list(self.visible_ids()),
            self.version,
            set(self.written),
            self.coarse,
        )


class CommitChange:
    """One table's share of a commit, handed to the manager's
    ``on_commit`` hook *before* the new state installs (the write-ahead
    ordering: log, make durable, only then install).

    Exactly one of two shapes:

    * ``appended`` is not ``None`` — an append-only overlay commit; the
      new state is ``previous`` plus the appended rows/ids.
    * otherwise ``rows``/``ids`` are the complete new state (and
      ``previous`` is what it supersedes; ``coarse`` marks whole-table
      writes whose row-level delta is meaningless).
    """

    __slots__ = (
        "table",
        "previous",
        "version",
        "rows",
        "ids",
        "appended",
        "appended_ids",
        "coarse",
    )

    def __init__(
        self,
        table: "HeapTable",
        previous: tuple[list["Row"], int, list[int]],
        version: int,
        rows: Optional[list["Row"]],
        ids: Optional[list[int]],
        appended: Optional[list["Row"]],
        appended_ids: Optional[list[int]],
        coarse: bool,
    ):
        self.table = table
        self.previous = previous
        self.version = version
        self.rows = rows
        self.ids = ids
        self.appended = appended
        self.appended_ids = appended_ids
        self.coarse = coarse


class Transaction:
    """One snapshot-isolated transaction over a set of heap tables.

    Created by :meth:`TransactionManager.begin`; the snapshot maps every
    table that existed at begin time to its committed
    ``(rows, version, ids)`` state. Tables created afterwards (DDL is
    non-transactional) are adopted lazily at their then-current
    committed state.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        snapshot: dict["HeapTable", tuple[list["Row"], int, list[int]]],
        begin_seq: int,
    ):
        self.manager = manager
        self.status = "active"
        self.begin_seq = begin_seq
        self._snapshot = snapshot
        self._working: dict["HeapTable", _Working] = {}
        # Stack of (savepoint name, saved working state per written table).
        self._savepoints: list[tuple[str, dict["HeapTable", tuple]]] = []

    # -- status --------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.status == "active"

    def _check_active(self) -> None:
        if not self.active:
            raise OperationalError(f"transaction is {self.status}")

    # -- visibility (called from HeapTable properties) -----------------
    def _base(self, table: "HeapTable") -> tuple[list["Row"], int, list[int]]:
        state = self._snapshot.get(table)
        if state is None:
            # Created after our snapshot (non-transactional DDL): adopt
            # its current committed state so the table is usable at all.
            state = table._state
            self._snapshot[table] = state
        return state

    def visible_rows(self, table: "HeapTable") -> list["Row"]:
        working = self._working.get(table)
        if working is not None:
            return working.visible()
        return self._base(table)[0]

    def visible_version(self, table: "HeapTable") -> int:
        working = self._working.get(table)
        if working is not None:
            return working.version
        return self._base(table)[1]

    def visible_ids(self, table: "HeapTable") -> list[int]:
        working = self._working.get(table)
        if working is not None:
            return working.visible_ids()
        return self._base(table)[2]

    # -- writes --------------------------------------------------------
    def _working_for(self, table: "HeapTable") -> _Working:
        working = self._working.get(table)
        if working is None:
            base = self._base(table)
            working = _Working(base[0], base[2], 0)
            self._working[table] = working
        return working

    def append_rows(self, table: "HeapTable", rows: Sequence["Row"]) -> list[int]:
        self._check_active()
        working = self._working_for(table)
        ids = new_row_ids(len(rows))
        working.append(rows, ids)
        working.version = next_stamp()
        return ids

    def replace_rows(
        self,
        table: "HeapTable",
        rows: list["Row"],
        ids: list[int],
        written: Iterable[int] = (),
        coarse: bool = False,
    ) -> None:
        """Install a full replacement of the table's visible rows.
        *written* are the ids of pre-existing rows this statement
        updated or deleted (the row-level write set contribution);
        *coarse* marks a whole-table operation that must conflict with
        any concurrent commit of the table."""
        self._check_active()
        working = self._working_for(table)
        working.replace(rows, ids)
        working.written.update(written)
        working.coarse = working.coarse or coarse
        working.version = next_stamp()

    # -- savepoints ----------------------------------------------------
    def savepoint(self, name: str) -> None:
        self._check_active()
        saved = {
            table: working.save() for table, working in self._working.items()
        }
        self._savepoints.append((name.lower(), saved))

    def _find_savepoint(self, name: str) -> int:
        key = name.lower()
        for index in range(len(self._savepoints) - 1, -1, -1):
            if self._savepoints[index][0] == key:
                return index
        raise OperationalError(f"no such savepoint: {name}")

    def rollback_to(self, name: str) -> None:
        """Discard every change made after SAVEPOINT *name* (the
        savepoint itself survives, Postgres-style)."""
        self._check_active()
        index = self._find_savepoint(name)
        saved = self._savepoints[index][1]
        for table in list(self._working):
            state = saved.get(table)
            if state is None:
                # First written after the savepoint: back to the snapshot.
                del self._working[table]
            else:
                # The saved rows become the restored working's base —
                # safe without a copy because a _Working never mutates
                # its base, so rolling back to this savepoint again
                # later still sees them untouched. The stamp is restored
                # exactly: the content is bit-identical to what that
                # stamp named, so statistics and plan deps recorded
                # against it become valid again.
                rows, ids, version, written, coarse = state
                restored = _Working(rows, ids, version, base_is_snapshot=False)
                restored.written = set(written)
                restored.coarse = coarse
                self._working[table] = restored
        del self._savepoints[index + 1 :]

    def release(self, name: str) -> None:
        self._check_active()
        index = self._find_savepoint(name)
        del self._savepoints[index:]

    # -- outcome -------------------------------------------------------
    def _abort(self, table: "HeapTable", reason: str) -> SerializationError:
        self.status = "aborted"
        self._working.clear()
        self._savepoints.clear()
        self.manager.conflict_count += 1
        self.manager.retire(self)
        return SerializationError(
            f"could not serialize access to table {table.name!r}: "
            f"a concurrent transaction committed it first ({reason}; "
            "retry the transaction)"
        )

    def _concurrent_write_set(
        self, table: "HeapTable"
    ) -> Optional[set[int]]:
        """Row ids committed to *table* after this transaction's
        snapshot, from the table's write history. ``None`` means some
        concurrent write was coarse (or non-transactional), forcing a
        table-granularity conflict."""
        if table._coarse_seq > self.begin_seq:
            return None
        others: set[int] = set()
        for entry in reversed(table._history):
            if entry.seq <= self.begin_seq:
                break
            if entry.written is None:
                return None
            others.update(entry.written)
        return others

    def _merged_state(
        self, table: "HeapTable", working: _Working
    ) -> Optional[tuple[list["Row"], list[int]]]:
        """Merge this transaction's per-row effects onto the table's
        *current* committed state (which contains other transactions'
        disjoint writes). Returns ``None`` if a row this transaction
        wrote no longer exists — the defensive signal to abort."""
        snap_rows, _, snap_ids = self._snapshot[table]
        w_rows, w_ids = working.final_state()
        content = dict(zip(w_ids, w_rows))
        snap_id_set = set(snap_ids)
        # Only rows that existed in the snapshot participate in the
        # merge; a row this transaction inserted *and* wrote again (its
        # id is fresh) rides along as a plain insert.
        written = working.written & snap_id_set
        deleted = {rid for rid in written if rid not in content}
        updated = written - deleted
        cur_rows, _, cur_ids = table._state
        cur_id_set = set(cur_ids)
        if (deleted | updated) - cur_id_set:
            return None
        new_rows: list["Row"] = []
        new_ids: list[int] = []
        for row, rid in zip(cur_rows, cur_ids):
            if rid in deleted:
                continue
            if rid in updated:
                new_rows.append(content[rid])
            else:
                new_rows.append(row)
            new_ids.append(rid)
        for rid, row in zip(w_ids, w_rows):
            if rid not in snap_id_set:
                new_rows.append(row)
                new_ids.append(rid)
        return new_rows, new_ids

    def commit(self) -> None:
        """Install every working copy as the new committed state.

        Fast path: no other transaction committed a written table since
        this one's snapshot — the working copy installs directly (its
        stamp is reused, so plans prepared inside the transaction stay
        valid). Otherwise row-level first-committer-wins applies: the
        commit aborts with :class:`SerializationError` iff this
        transaction's write set overlaps a row committed after its
        snapshot (or either side wrote coarsely); disjoint-row commits
        merge onto the current state under a fresh stamp."""
        self._check_active()
        manager = self.manager
        if not self._working:
            self.status = "committed"
            manager.retire(self)
            return
        with manager.lock:
            merges: dict["HeapTable", tuple[list["Row"], list[int]]] = {}
            for table, working in self._working.items():
                if table._state[1] == self._snapshot[table][1]:
                    continue  # nothing intervened: plain install below
                if manager.granularity == "table":
                    raise self._abort(table, "table-granularity conflict")
                if working.coarse:
                    raise self._abort(table, "whole-table write")
                others = self._concurrent_write_set(table)
                if others is None:
                    raise self._abort(table, "concurrent whole-table write")
                overlap = working.written & others
                if overlap:
                    raise self._abort(
                        table, f"write-write overlap on {len(overlap)} row(s)"
                    )
                merged = self._merged_state(table, working)
                if merged is None:
                    raise self._abort(table, "written row vanished")
                merges[table] = merged
            seq = next_commit_seq()
            # Snapshot holders are exactly the live transactions; with
            # none but us and no retained history, append-only tables
            # may extend the committed list in place (their old stamp
            # becomes permanently unmatchable, so every stamp-keyed
            # cache revalidates).
            solo = manager.is_solo(self)
            # Stage every table's new state *before* installing any of
            # it, so the write-ahead hook sees the complete commit while
            # no table has changed yet (log -> make durable -> install).
            pending: list[tuple["HeapTable", _Working, CommitChange]] = []
            for table, working in self._working.items():
                previous = table._state
                merged = merges.get(table)
                appended = appended_ids = None
                if merged is not None:
                    # Merged content includes other transactions' rows:
                    # it is a state no stamp has ever named, so it gets
                    # a fresh one.
                    rows, ids = merged
                    version = next_stamp()
                else:
                    # The working stamp already names exactly this
                    # content, so it is reused: plans prepared inside
                    # the transaction against its final state stay
                    # valid after the commit.
                    version = working.version
                    overlay = working.pending_append()
                    if overlay is not None:
                        # Append-only: keep the overlay unmaterialized
                        # so the install below may extend in place.
                        appended, appended_ids = overlay
                        rows = ids = None
                    else:
                        rows, ids = working.final_state()
                pending.append(
                    (
                        table,
                        working,
                        CommitChange(
                            table,
                            previous,
                            version,
                            rows,
                            ids,
                            appended,
                            appended_ids,
                            working.coarse,
                        ),
                    )
                )
            finalize_matviews = None
            if manager.matview_maintainer is not None:
                # Materialized-view maintenance: derive the views' share
                # of this commit from the staged base-table changes, so
                # the write-ahead hook logs base rows and view rows as
                # one atomic unit. The returned finalizer (catalog
                # bookkeeping) runs only after everything installs.
                maintained, finalize_matviews = manager.matview_maintainer(
                    seq, [change for _, _, change in pending]
                )
                for change in maintained:
                    pending.append((change.table, None, change))
            if manager.on_commit is not None:
                try:
                    manager.on_commit(seq, [change for _, _, change in pending])
                except BaseException:
                    # The commit record never became durable: abort with
                    # no state installed (the transaction is over either
                    # way — the caller sees the logging failure).
                    self.status = "aborted"
                    self._working.clear()
                    self._savepoints.clear()
                    manager.retire(self)
                    raise
            for table, working, change in pending:
                if working is None:
                    # A maintainer-generated change: a complete new state
                    # for a materialized view's heap. No user transaction
                    # ever writes these heaps, so a coarse history entry
                    # is conservative and safe.
                    table._state = (change.rows, change.version, change.ids)
                    table._history.append(HistoryEntry(seq, None, change.previous))
                    continue
                if change.rows is None:
                    in_place = solo and not table._history
                    rows, ids = working.final_state(in_place=in_place)
                else:
                    rows, ids = change.rows, change.ids
                table._state = (rows, change.version, ids)
                written = None if working.coarse else frozenset(working.written)
                table._history.append(HistoryEntry(seq, written, change.previous))
            if finalize_matviews is not None:
                finalize_matviews()
            manager.commit_count += 1
            manager.retire(self)
        self.status = "committed"
        self._working.clear()
        self._savepoints.clear()
        if manager.on_commit_complete is not None:
            manager.on_commit_complete()

    def rollback(self) -> None:
        """Discard all working copies; committed state is untouched."""
        if self.status == "active":
            self.status = "rolled back"
            self.manager.retire(self)
        self._working.clear()
        self._savepoints.clear()


class TransactionManager:
    """Begin/commit coordination point for one database's tables.

    ``tables`` is a zero-argument callable returning the current heap
    tables (the catalog's, at begin time); keeping it a callable avoids
    an import cycle between the storage and catalog layers.
    ``granularity`` selects the first-committer-wins unit: ``"row"``
    (the default — disjoint-row commits merge) or ``"table"`` (any two
    commits of one table conflict; kept for comparison benchmarks).
    ``begin_count``/``commit_count``/``conflict_count`` are plain
    telemetry counters (the conflict check itself uses version stamps
    and commit sequence numbers)."""

    def __init__(
        self,
        tables: Callable[[], Iterable["HeapTable"]],
        granularity: str = "row",
    ):
        if granularity not in ("row", "table"):
            raise ValueError(
                f"unknown conflict granularity {granularity!r} "
                "(valid: 'row', 'table')"
            )
        self.lock = threading.RLock()
        self._tables = tables
        self.granularity = granularity
        self.begin_count = 0
        self.commit_count = 0
        self.conflict_count = 0
        # Durability hooks (set by repro.storage.persist when a database
        # opens on disk). ``on_commit(seq, changes)`` runs under the
        # manager lock with every CommitChange staged but nothing
        # installed — it must make the commit durable or raise (raising
        # aborts the commit with storage untouched).
        # ``on_commit_complete()`` runs after the commit fully installs
        # and the lock is released (checkpoint threshold checks go here,
        # where rewriting the snapshot can no longer lose the commit).
        self.on_commit: Optional[Callable[[int, list[CommitChange]], None]] = None
        self.on_commit_complete: Optional[Callable[[], None]] = None
        # Materialized-view maintenance hook (set by repro.engine.database
        # when the catalog holds matviews; a callable keeps this module
        # free of engine imports). Called under the lock with the staged
        # changes; returns (extra changes, finalizer-or-None).
        self.matview_maintainer: Optional[
            Callable[
                [int, list[CommitChange]],
                tuple[list[CommitChange], Optional[Callable[[], None]]],
            ]
        ] = None
        # Live (active) transactions — i.e. the set of live snapshots.
        # Weak, so a session abandoned without commit/rollback cannot
        # pin the version history (or the in-place append optimization)
        # off forever.
        self._active: "weakref.WeakSet[Transaction]" = weakref.WeakSet()
        # GC telemetry (guarded by self.lock).
        self._gc_runs = 0
        self._gc_versions_freed = 0
        self._gc_rows_freed = 0
        self._gc_horizon = 0

    def begin(self) -> Transaction:
        """Start a transaction on a consistent snapshot: the committed
        state of every table, captured in one critical section so no
        commit can land between two table captures."""
        with self.lock:
            snapshot = {table: table._state for table in self._tables()}
            self.begin_count += 1
            txn = Transaction(self, snapshot, current_commit_seq())
            self._active.add(txn)
            return txn

    def retire(self, txn: Transaction) -> None:
        """Drop *txn* from the live-snapshot set (commit/rollback) and
        garbage-collect history the remaining snapshots cannot see."""
        with self.lock:
            self._active.discard(txn)
            self.collect()

    def is_solo(self, txn: Transaction) -> bool:
        """Whether *txn* is the only live transaction (call under the
        manager lock, from its commit)."""
        return all(other is txn for other in self._active)

    # -- version garbage collection ------------------------------------
    def horizon(self) -> int:
        """The snapshot horizon: every committed state superseded at or
        before this sequence number is invisible to all live snapshots
        (with no live snapshots, everything superseded is)."""
        live = [txn.begin_seq for txn in self._active if txn.active]
        return min(live) if live else current_commit_seq()

    def collect(self) -> dict[str, int]:
        """Free history entries (superseded committed states) no live
        snapshot can see. Runs automatically whenever a transaction
        retires; callable directly for tests and telemetry. Returns the
        cumulative :meth:`gc_stats`."""
        with self.lock:
            horizon = self.horizon()
            freed = rows_freed = 0
            for table in self._tables():
                history = table._history
                cut = 0
                while cut < len(history) and history[cut].seq <= horizon:
                    rows_freed += len(history[cut].superseded[0])
                    freed += 1
                    cut += 1
                if cut:
                    del history[:cut]
            self._gc_runs += 1
            self._gc_versions_freed += freed
            self._gc_rows_freed += rows_freed
            self._gc_horizon = horizon
            return self.gc_stats()

    def gc_stats(self) -> dict[str, int]:
        """Version-GC counters: how often GC ran, how many superseded
        committed states (and rows) it freed, how many are currently
        retained for live snapshots, and the current horizon."""
        with self.lock:
            retained = sum(len(table._history) for table in self._tables())
            return {
                "gc_runs": self._gc_runs,
                "versions_freed": self._gc_versions_freed,
                "rows_freed": self._gc_rows_freed,
                "versions_retained": retained,
                "horizon": self._gc_horizon,
            }
