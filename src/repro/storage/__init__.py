"""In-memory storage layer: heap tables and result relations."""

from .table import HeapTable, Relation  # noqa: F401
