"""Storage layer: multi-versioned heap tables, snapshot transactions
(MVCC), result relations, and the optional durability engine (checkpoint
snapshots + write-ahead log in :mod:`repro.storage.persist`)."""

from .mvcc import Transaction, TransactionManager, activate, current_transaction  # noqa: F401
from .persist import PersistentStore  # noqa: F401
from .table import HeapTable, Relation  # noqa: F401
from .wal import WriteAheadLog  # noqa: F401
