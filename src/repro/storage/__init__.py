"""In-memory storage layer: multi-versioned heap tables, snapshot
transactions (MVCC) and result relations."""

from .mvcc import Transaction, TransactionManager, activate, current_transaction  # noqa: F401
from .table import HeapTable, Relation  # noqa: F401
