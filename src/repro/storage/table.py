"""In-memory heap tables and immutable result relations.

The original Perm system stores everything in PostgreSQL heap files; this
reproduction keeps tuples as Python tuples in lists. :class:`HeapTable`
is the mutable stored form; :class:`Relation` is the immutable
query-result form returned by the executor and consumed by clients and
the Perm browser.

Storage is multi-versioned (:mod:`repro.storage.mvcc`): a table's
committed state is a single ``(rows, version, row_ids)`` tuple whose
rows list is never mutated after being installed, so holding a reference
to it *is* a snapshot. ``row_ids`` is a parallel list of hidden,
process-globally unique row identities: a logical row keeps its id
across updates, which is what lets transactions detect write-write
conflicts at row granularity (two transactions updating *different*
rows of one table both commit). ``rows`` and ``version`` are properties
that resolve through the thread's active transaction — inside a
transaction they return the snapshot (or this transaction's private
working copy); outside they return the latest committed state.
``version`` stamps are globally unique per distinct state (see
:func:`repro.storage.mvcc.next_stamp`), which is what lets cached
statistics, the optimizer's recorded uniqueness deps and the SQLite
mirror key on snapshot identity.

Every mutator is **atomic**: the new row list is staged completely
(all predicate evaluation and value coercion up front) and applied in a
single reference swap — an error mid-scan leaves the table untouched.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..catalog.schema import Schema
from ..datatypes import Value, cast_value, format_value, type_of_value, SQLType
from ..errors import CatalogError
from . import mvcc

Row = tuple[Value, ...]


class HeapTable:
    """A mutable stored table: a schema plus a versioned list of rows."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        # Latest committed (rows, version, row_ids). Swapped as one
        # tuple so a concurrent snapshot capture never pairs new rows
        # with an old stamp. The lists inside are treated as immutable
        # once installed.
        self._state: tuple[list[Row], int, list[int]] = ([], mvcc.next_stamp(), [])
        # Committed-write history for row-level conflict checks; trimmed
        # by the manager's version GC up to the live-snapshot horizon.
        self._history: list[mvcc.HistoryEntry] = []
        # Commit sequence of the last *non-transactional* write (those
        # bypass the history and conflict coarsely with any transaction
        # whose snapshot predates them).
        self._coarse_seq = 0
        # Durability hook for non-transactional installs (set by
        # repro.storage.persist on persistent databases): called with
        # (table, seq, version, rows, ids) before the state swaps in.
        self.on_direct_install = None
        # Scan hand-off to the vectorized engine: the latest packed
        # columnar image of this table as ``(version, columns)``.
        # Version stamps are snapshot identity, so a matching stamp
        # guarantees the cached columns are bit-identical to ``rows`` —
        # the executor rebuilds on any mismatch (see
        # repro.executor.vectorized.VScan).
        self.columnar_cache: tuple[int, list] | None = None

    # -- visibility ----------------------------------------------------
    @property
    def rows(self) -> list[Row]:
        """Rows visible to the caller: the active transaction's snapshot
        (or working copy), else the latest committed state. Treat as
        read-only — mutate through the DML methods."""
        txn = mvcc.current_transaction()
        if txn is not None:
            return txn.visible_rows(self)
        return self._state[0]

    @property
    def version(self) -> int:
        """Version stamp of the visible state (snapshot identity): two
        reads seeing the same stamp see bit-identical rows."""
        txn = mvcc.current_transaction()
        if txn is not None:
            return txn.visible_version(self)
        return self._state[1]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    # -- write plumbing ------------------------------------------------
    def _visible_pair(self) -> tuple[list[Row], list[int]]:
        """The visible rows and their parallel row-identity list."""
        txn = mvcc.current_transaction()
        if txn is not None:
            return txn.visible_rows(self), txn.visible_ids(self)
        state = self._state
        return state[0], state[2]

    def _install_direct(self, rows: list[Row], ids: list[int]) -> None:
        """Install a new committed state outside any transaction. Such
        writes carry no row-level write set, so they conflict coarsely:
        any open transaction that also wrote this table will abort."""
        version = mvcc.next_stamp()
        if self.on_direct_install is not None:
            # Write-ahead: the record must be durable before the state
            # swaps in (a hook failure leaves the table untouched).
            self.on_direct_install(
                self, mvcc.next_commit_seq(), version, rows, ids
            )
        self._state = (rows, version, ids)
        # Allocated *after* the install so a transaction beginning in
        # between (whose snapshot misses this write) is ordered before
        # it and conflicts coarsely, exactly as without a hook.
        self._coarse_seq = mvcc.next_commit_seq()

    def _append(self, rows: list[Row]) -> None:
        txn = mvcc.current_transaction()
        if txn is not None:
            txn.append_rows(self, rows)
        else:
            committed, _, committed_ids = self._state
            self._install_direct(
                committed + rows, committed_ids + mvcc.new_row_ids(len(rows))
            )

    def _apply(
        self,
        rows: list[Row],
        ids: list[int],
        written: Iterable[int],
        coarse: bool = False,
    ) -> None:
        """Install a full replacement of the visible rows. *written* are
        the identities of pre-existing rows this statement updated or
        deleted; *coarse* marks a whole-table operation."""
        txn = mvcc.current_transaction()
        if txn is not None:
            txn.replace_rows(self, rows, ids, written, coarse)
        else:
            self._install_direct(rows, ids)

    def _coerce_row(self, values: Sequence[Value]) -> Row:
        if len(values) != len(self.schema):
            raise CatalogError(
                f"table {self.name!r} has {len(self.schema)} columns, "
                f"got a row with {len(values)} values"
            )
        coerced: list[Value] = []
        for value, attribute in zip(values, self.schema):
            if value is None:
                coerced.append(None)
                continue
            actual = type_of_value(value)
            if actual is attribute.type:
                coerced.append(value)
            elif actual is SQLType.INT and attribute.type is SQLType.FLOAT:
                coerced.append(float(value))  # type: ignore[arg-type]
            else:
                coerced.append(cast_value(value, attribute.type))
        return tuple(coerced)

    # -- DML -----------------------------------------------------------
    def insert(self, values: Sequence[Value]) -> None:
        """Insert one row, coercing values to the column types."""
        self._append([self._coerce_row(values)])

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Insert many rows, all or none: every row is coerced before the
        first one becomes visible, so a bad row mid-batch leaves the
        table exactly as it was."""
        staged = [self._coerce_row(row) for row in rows]
        if staged:
            self._append(staged)
        return len(staged)

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete rows matching *predicate*; returns the number removed.
        The predicate runs over every row before anything is applied."""
        rows, ids = self._visible_pair()
        kept_rows: list[Row] = []
        kept_ids: list[int] = []
        removed_ids: list[int] = []
        for row, rid in zip(rows, ids):
            if predicate(row):
                removed_ids.append(rid)
            else:
                kept_rows.append(row)
                kept_ids.append(rid)
        if removed_ids:
            self._apply(kept_rows, kept_ids, removed_ids)
        return len(removed_ids)

    def update_where(
        self, predicate: Callable[[Row], bool], updater: Callable[[Row], Sequence[Value]]
    ) -> int:
        """Apply *updater* to rows matching *predicate*; returns count.
        Predicate evaluation, updating and coercion all complete before
        the first changed row is applied (all-or-nothing). Rows keep
        their identity across the update; only rows whose content
        actually changed enter the write set (an UPDATE that rewrites a
        row to its current values cannot conflict with anything — and
        installs no new version at all if nothing changed)."""
        rows, ids = self._visible_pair()
        matched = 0
        new_rows: list[Row] = []
        written_ids: list[int] = []
        for row, rid in zip(rows, ids):
            if predicate(row):
                matched += 1
                new_row = self._coerce_row(updater(row))
                if new_row != row:
                    new_rows.append(new_row)
                    written_ids.append(rid)
                else:
                    new_rows.append(row)
            else:
                new_rows.append(row)
        if written_ids:
            self._apply(new_rows, list(ids), written_ids)
        return matched

    def truncate(self) -> None:
        rows, ids = self._visible_pair()
        if rows:
            self._apply([], [], ids, coarse=True)


class Relation:
    """An immutable query result: schema + rows (+ provenance metadata).

    ``provenance_attrs`` lists which attribute names carry provenance —
    the paper's ``prov_<rel>_<attr>`` columns — so clients and the Perm
    browser can split the grid into "original result attributes" and
    "provenance attributes" exactly as Figure 2 of the paper does.
    """

    __slots__ = ("schema", "rows", "provenance_attrs")

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Row],
        provenance_attrs: Sequence[str] = (),
    ):
        self.schema = schema
        self.rows: list[Row] = list(rows)
        self.provenance_attrs: tuple[str, ...] = tuple(provenance_attrs)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and self.schema == other.schema
            and self.rows == other.rows
        )

    @property
    def columns(self) -> list[str]:
        return self.schema.names

    @property
    def original_attrs(self) -> list[str]:
        """Names of non-provenance (original result) attributes."""
        prov = set(self.provenance_attrs)
        return [name for name in self.schema.names if name not in prov]

    def column(self, name: str) -> list[Value]:
        """All values of one column, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows]

    def sorted(self) -> "Relation":
        """Rows in a deterministic order (for comparisons in tests)."""
        from ..datatypes import sort_key

        ordered = sorted(self.rows, key=lambda row: tuple(sort_key(v) for v in row))
        return Relation(self.schema, ordered, self.provenance_attrs)

    def as_dicts(self) -> list[dict[str, Value]]:
        """Rows as name -> value dictionaries (convenient in examples)."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows]

    def format(self, max_rows: int | None = None) -> str:
        """Render an aligned text grid in the style of psql / the Perm
        browser result pane (see Figure 4, marker 5 of the paper)."""
        names = self.schema.names
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[format_value(v) for v in row] for row in shown]
        widths = [len(n) for n in names]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        separator = "-+-".join("-" * w for w in widths)
        lines = [" " + header, separator.join(["-", "-"]) if False else "-" + separator + "-"]
        for row in cells:
            lines.append(" " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f" ... ({len(self.rows) - max_rows} more rows)")
        lines.append(f"({len(self.rows)} row{'s' if len(self.rows) != 1 else ''})")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.names}, {len(self.rows)} rows)"
