"""Durable databases: checkpoint snapshots plus write-ahead recovery.

A persistent database is a directory::

    <data-dir>/
        MANIFEST.json      # catalog + counters + heap-file map (atomic)
        wal.log            # commit/DDL records since the manifest
        heap/
            g00000002-t0000.heap   # one JSON heap file per table

The manifest is the *checkpoint*: a consistent snapshot of every table,
the schema catalog and the MVCC counters, written via temp-file +
``rename`` so a crash mid-checkpoint always leaves either the old or
the new manifest intact (heap files are generation-numbered, so a new
checkpoint never overwrites a file the old manifest still references).
Everything since the checkpoint lives in the write-ahead log
(:mod:`repro.storage.wal`): row-level commit deltas stamped with their
MVCC commit version, full states for coarse and non-transactional
writes, and DDL records.

Recovery = load the manifest, replay every complete WAL record whose
sequence number exceeds the manifest's ``checkpoint_seq`` (making
replay idempotent across repeated recoveries), truncate any torn tail,
and raise the process-global MVCC counters above everything the log
recorded — so a kill at any byte offset recovers exactly the durable
committed prefix, with version stamps that stay monotone across
restarts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import TYPE_CHECKING, Optional

from ..catalog.schema import Attribute, Schema
from ..datatypes import from_jsonsafe_value, to_jsonsafe_value, type_from_name
from ..errors import OperationalError
from . import mvcc
from .wal import DURABILITY_MODES, WriteAheadLog, read_records, truncate_log

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog.catalog import Catalog, TableEntry, ViewEntry
    from ..engine.database import Database
    from .table import HeapTable, Row

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
HEAP_DIR = "heap"
FORMAT_VERSION = 1

# Rewrite the snapshot once the log outgrows this many bytes (tunable
# per database; CHECKPOINT forces one regardless).
DEFAULT_CHECKPOINT_BYTES = 16 * 1024 * 1024


def _encode_rows(rows: list["Row"]) -> list[list]:
    return [[to_jsonsafe_value(v) for v in row] for row in rows]


def _decode_rows(rows: list[list]) -> list["Row"]:
    return [tuple(from_jsonsafe_value(v) for v in row) for row in rows]


def _fsync_directory(path: str) -> None:
    """Make a rename inside *path* durable (POSIX: fsync the directory)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_atomically(path: str, data: bytes) -> None:
    """Write *data* to *path* via temp file + fsync + atomic rename."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(os.path.dirname(path) or ".")


class PersistentStore:
    """The durability engine behind ``repro.Database(path=...)``.

    Owns the data directory, the open WAL, the checkpointer and the
    recovery path; attaches itself to a database's transaction manager
    (commit hook), catalog (DDL observer) and heap tables (direct-write
    hook) so every state change is logged before it installs.
    """

    def __init__(
        self,
        path: str,
        durability: str = "fsync",
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
    ):
        if durability not in DURABILITY_MODES:
            raise OperationalError(
                f"unknown durability mode {durability!r} "
                f"(valid: {', '.join(DURABILITY_MODES)})"
            )
        self.path = os.path.abspath(path)
        self.durability = durability
        self.checkpoint_bytes = checkpoint_bytes
        os.makedirs(os.path.join(self.path, HEAP_DIR), exist_ok=True)
        self._lock = threading.RLock()
        self._database: Optional["Database"] = None
        self._wal: Optional[WriteAheadLog] = None
        self._generation = 0
        # Telemetry.
        self.records_replayed = 0
        self.torn_bytes_truncated = 0
        self.recovery_seconds = 0.0
        self.checkpoint_count = 0
        self.last_checkpoint_seq = 0

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def open_into(self, database: "Database") -> None:
        """Recover this directory's state into *database* (whose catalog
        must be empty) and attach the durability hooks."""
        started = time.perf_counter()
        self._database = database
        catalog = database.catalog
        checkpoint_seq = 0
        max_stamp = max_seq = max_row = 0
        manifest = self._load_manifest()
        if manifest is not None:
            if manifest.get("format") != FORMAT_VERSION:
                raise OperationalError(
                    f"unsupported data-directory format "
                    f"{manifest.get('format')!r} at {self.path}"
                )
            self._generation = int(manifest.get("generation", 0))
            checkpoint_seq = int(manifest.get("checkpoint_seq", 0))
            counters = manifest.get("counters", {})
            max_stamp = int(counters.get("stamp", 0))
            max_seq = int(counters.get("commit_seq", 0))
            max_row = int(counters.get("row_id", 0))
            for spec in manifest.get("tables", []):
                self._load_table(catalog, spec)
            for spec in manifest.get("views", []):
                self._load_view(catalog, spec)
            for spec in manifest.get("matviews", []):
                self._load_matview(catalog, spec)
            catalog.version = int(manifest.get("catalog_version", catalog.version))
            self.last_checkpoint_seq = checkpoint_seq
        wal_path = os.path.join(self.path, WAL_NAME)
        if os.path.exists(wal_path):
            records, durable, total = read_records(wal_path)
            if durable < total:
                truncate_log(wal_path, durable)
                self.torn_bytes_truncated += total - durable
            for record in records:
                seq = int(record.get("seq", 0))
                max_seq = max(max_seq, seq)
                max_stamp = max(max_stamp, int(record.get("stamp", 0)))
                max_row = max(max_row, int(record.get("row_id", 0)))
                if seq <= checkpoint_seq:
                    continue  # already inside the checkpoint snapshot
                self._replay(catalog, record)
                self.records_replayed += 1
        # Future stamps/sequences/row ids must exceed everything any
        # durable record ever named, or a post-recovery commit could
        # collide with a logged one.
        mvcc.raise_counters(stamp=max_stamp, commit_seq=max_seq, row_id=max_row)
        self._wal = WriteAheadLog(wal_path, self.durability)
        self._attach(database)
        self.recovery_seconds = time.perf_counter() - started

    def _load_manifest(self) -> Optional[dict]:
        path = os.path.join(self.path, MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            return json.load(handle)

    def _load_table(self, catalog: "Catalog", spec: dict) -> None:
        schema = Schema(
            Attribute(name, type_from_name(type_name))
            for name, type_name in spec["columns"]
        )
        entry = catalog.create_table(
            spec["name"], schema, provenance_attrs=tuple(spec.get("provenance", ()))
        )
        with open(os.path.join(self.path, spec["heap"]), "rb") as handle:
            heap = json.load(handle)
        entry.table._state = (
            _decode_rows(heap["rows"]),
            int(spec["version"]),
            list(heap["ids"]),
        )

    def _load_view(self, catalog: "Catalog", spec: dict) -> None:
        from ..sql.parser import Parser

        catalog.create_view(
            spec["name"],
            Parser(spec["sql"]).parse_query_expr(),
            spec["sql"],
            or_replace=True,
            provenance_attrs=tuple(spec.get("provenance", ())),
        )

    def _create_matview_entry(self, catalog: "Catalog", spec: dict):
        """Shared by manifest load and WAL replay: re-register a
        materialized view from its durable description. Maintenance
        state that cannot be persisted (the compiled program, per-row
        source ids) is rebuilt by the first refresh; until then the view
        degrades to stale-and-recompute on its first base write."""
        from ..sql.parser import Parser

        schema = Schema(
            Attribute(name, type_from_name(type_name))
            for name, type_name in spec["columns"]
        )
        entry = catalog.create_matview(
            spec["name"],
            schema,
            Parser(spec["sql"]).parse_query_expr(),
            spec["sql"],
            with_provenance=bool(spec.get("with_provenance", False)),
            provenance_attrs=tuple(spec.get("provenance", ())),
        )
        entry.stale = bool(spec.get("stale", False))
        entry.delta_safe = bool(spec.get("delta_safe", False))
        entry.base_tables = tuple(spec.get("base_tables", ()))
        entry.base_versions = {
            str(name): int(version)
            for name, version in spec.get("base_versions", {}).items()
        }
        return entry

    def _load_matview(self, catalog: "Catalog", spec: dict) -> None:
        entry = self._create_matview_entry(catalog, spec)
        with open(os.path.join(self.path, spec["heap"]), "rb") as handle:
            heap = json.load(handle)
        entry.table._state = (
            _decode_rows(heap["rows"]),
            int(spec["version"]),
            list(heap["ids"]),
        )

    def _replay(self, catalog: "Catalog", record: dict) -> None:
        kind = record.get("kind")
        if kind == "commit":
            for name, delta in record["tables"].items():
                entry = catalog.scan_entry(name)
                self._replay_delta(entry.table, delta)
                versions = delta.get("matview", {}).get("base_versions")
                if versions:
                    entry.base_versions = {
                        str(t): int(v) for t, v in versions.items()
                    }
        elif kind == "direct":
            table = catalog.scan_entry(record["table"]).table
            table._state = (
                _decode_rows(record["rows"]),
                int(record["version"]),
                list(record["ids"]),
            )
        elif kind == "create_table":
            schema = Schema(
                Attribute(name, type_from_name(type_name))
                for name, type_name in record["columns"]
            )
            entry = catalog.create_table(
                record["name"],
                schema,
                provenance_attrs=tuple(record.get("provenance", ())),
            )
            entry.table._state = ([], int(record["version"]), [])
        elif kind == "create_view":
            self._load_view(catalog, record)
        elif kind == "create_matview":
            self._create_matview_entry(catalog, record)
        elif kind == "matview_stale":
            if catalog.has_matview(record["name"]):
                catalog.matview(record["name"]).stale = True
        elif kind == "matview_fresh":
            if catalog.has_matview(record["name"]):
                entry = catalog.matview(record["name"])
                entry.stale = False
                entry.delta_safe = bool(record.get("delta_safe", False))
                entry.base_tables = tuple(record.get("base_tables", ()))
                entry.base_versions = {
                    str(t): int(v)
                    for t, v in record.get("base_versions", {}).items()
                }
        elif kind == "drop":
            if record["relation"] == "table":
                catalog.drop_table(record["name"], if_exists=True)
            elif record["relation"] == "materialized view":
                catalog.drop_matview(record["name"], if_exists=True)
            else:
                catalog.drop_view(record["name"], if_exists=True)
        elif kind == "provenance":
            catalog.register_provenance_attrs(
                record["name"], tuple(record["attrs"])
            )
        # Unknown kinds are skipped (forward compatibility).

    def _replay_delta(self, table: "HeapTable", delta: dict) -> None:
        rows, _, ids = table._state
        matview = delta.get("matview")
        if matview is not None:
            # Positioned matview delta: drop the removed row ids, then
            # apply the inserts in ascending final-index order (so each
            # ``insert`` lands at its recorded position).
            remove = set(matview["remove"])
            new_rows, new_ids = [], []
            for row, rid in zip(rows, ids):
                if rid in remove:
                    continue
                new_rows.append(row)
                new_ids.append(rid)
            for index, rid, row in matview["insert_at"]:
                new_rows.insert(index, tuple(from_jsonsafe_value(v) for v in row))
                new_ids.insert(index, rid)
            table._state = (new_rows, int(delta["version"]), new_ids)
            return
        if "state" in delta:
            new_rows = _decode_rows(delta["state"]["rows"])
            new_ids = list(delta["state"]["ids"])
        else:
            deleted = set(delta.get("delete", ()))
            updated = {
                rid: tuple(from_jsonsafe_value(v) for v in row)
                for rid, row in delta.get("update", ())
            }
            new_rows, new_ids = [], []
            for row, rid in zip(rows, ids):
                if rid in deleted:
                    continue
                new_rows.append(updated.get(rid, row))
                new_ids.append(rid)
            for rid, row in delta.get("insert", ()):
                new_rows.append(tuple(from_jsonsafe_value(v) for v in row))
                new_ids.append(rid)
        table._state = (new_rows, int(delta["version"]), new_ids)

    def _attach(self, database: "Database") -> None:
        database.catalog.observer = self
        database.manager.on_commit = self._on_commit
        database.manager.on_commit_complete = self._maybe_checkpoint
        for entry in database.catalog.tables + database.catalog.matviews:
            entry.table.on_direct_install = self._on_direct_install

    # ------------------------------------------------------------------
    # Logging hooks
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        with self._lock:
            if self._wal is None:
                raise OperationalError(
                    f"persistent database at {self.path} is closed"
                )
            self._wal.append(record)

    @staticmethod
    def _counter_fields(seq: int) -> dict:
        # Every record carries the counter high-water at append time, so
        # recovery can raise the global counters above anything durable.
        return {
            "seq": seq,
            "stamp": mvcc.current_stamp(),
            "row_id": mvcc.current_row_id(),
        }

    def _on_commit(self, seq: int, changes: list["mvcc.CommitChange"]) -> None:
        """The manager's pre-install hook: one WAL record per commit,
        durable before any table state changes."""
        tables: dict[str, dict] = {}
        for change in changes:
            tables[change.table.name] = self._delta_for(change)
        record = {"kind": "commit", "tables": tables}
        record.update(self._counter_fields(seq))
        self._append(record)

    def _delta_for(self, change: "mvcc.CommitChange") -> dict:
        delta: dict = {"version": change.version}
        wal_delta = getattr(change, "wal_delta", None)
        if wal_delta is not None:
            # Maintainer-generated matview update: the compact positioned
            # delta (plus the base versions it advances to) instead of a
            # full-state dump of the view's contents.
            delta["matview"] = {
                "remove": list(wal_delta["remove"]),
                "insert_at": [
                    [index, rid, [to_jsonsafe_value(v) for v in row]]
                    for index, rid, row in wal_delta["insert_at"]
                ],
                "base_versions": dict(wal_delta.get("base_versions", {})),
            }
            return delta
        if change.appended is not None:
            delta["insert"] = [
                [rid, [to_jsonsafe_value(v) for v in row]]
                for rid, row in zip(change.appended_ids, change.appended)
            ]
            return delta
        if change.coarse:
            # Whole-table writes (TRUNCATE) have no meaningful row
            # delta: log the full replacement state.
            delta["state"] = {
                "rows": _encode_rows(change.rows),
                "ids": list(change.ids),
            }
            return delta
        # Generic exact diff by row identity. Valid because every engine
        # mutator preserves row order: the new state is the old state
        # minus deletes, with updates in place and inserts appended.
        prev_rows, _, prev_ids = change.previous
        prev_by_id = dict(zip(prev_ids, prev_rows))
        inserts, updates = [], []
        new_id_set = set()
        for rid, row in zip(change.ids, change.rows):
            new_id_set.add(rid)
            old = prev_by_id.get(rid)
            if old is None:
                inserts.append([rid, [to_jsonsafe_value(v) for v in row]])
            elif old != row:
                updates.append([rid, [to_jsonsafe_value(v) for v in row]])
        deletes = [rid for rid in prev_ids if rid not in new_id_set]
        if inserts:
            delta["insert"] = inserts
        if updates:
            delta["update"] = updates
        if deletes:
            delta["delete"] = deletes
        return delta

    def _on_direct_install(
        self,
        table: "HeapTable",
        seq: int,
        version: int,
        rows: list["Row"],
        ids: list[int],
    ) -> None:
        """Non-transactional writes carry no write set; log the full
        replacement state."""
        record = {
            "kind": "direct",
            "table": table.name,
            "version": version,
            "rows": _encode_rows(rows),
            "ids": list(ids),
        }
        record.update(self._counter_fields(seq))
        self._append(record)

    # -- catalog observer (DDL is non-transactional) --------------------
    def on_create_table(self, entry: "TableEntry") -> None:
        entry.table.on_direct_install = self._on_direct_install
        record = {
            "kind": "create_table",
            "name": entry.name,
            "columns": [[a.name, a.type.value] for a in entry.schema],
            "provenance": list(entry.provenance_attrs),
            "version": entry.table._state[1],
        }
        record.update(self._counter_fields(mvcc.next_commit_seq()))
        self._append(record)

    def on_drop_relation(self, relation: str, name: str) -> None:
        record = {"kind": "drop", "relation": relation, "name": name}
        record.update(self._counter_fields(mvcc.next_commit_seq()))
        self._append(record)

    def on_create_view(self, entry: "ViewEntry") -> None:
        record = {
            "kind": "create_view",
            "name": entry.name,
            "sql": entry.sql,
            "provenance": list(entry.provenance_attrs),
        }
        record.update(self._counter_fields(mvcc.next_commit_seq()))
        self._append(record)

    def on_create_matview(self, entry) -> None:
        entry.table.on_direct_install = self._on_direct_install
        record = {
            "kind": "create_matview",
            "name": entry.name,
            "sql": entry.sql,
            "with_provenance": entry.with_provenance,
            "columns": [[a.name, a.type.value] for a in entry.schema],
            "provenance": list(entry.provenance_attrs),
            "version": entry.table._state[1],
        }
        record.update(self._counter_fields(mvcc.next_commit_seq()))
        self._append(record)

    def on_matview_stale(self, name: str) -> None:
        record = {"kind": "matview_stale", "name": name}
        record.update(self._counter_fields(mvcc.next_commit_seq()))
        self._append(record)

    def on_matview_fresh(self, name: str) -> None:
        # Fired after CREATE and REFRESH, when the entry's maintenance
        # bookkeeping is final — recording it lets recovery trust the
        # replayed contents without a recompute on first read.
        database = self._database
        if database is None:
            return
        entry = database.catalog.matview(name)
        record = {
            "kind": "matview_fresh",
            "name": name,
            "delta_safe": entry.delta_safe,
            "base_tables": list(entry.base_tables),
            "base_versions": dict(entry.base_versions),
        }
        record.update(self._counter_fields(mvcc.next_commit_seq()))
        self._append(record)

    def on_register_provenance(self, name: str, attrs: tuple[str, ...]) -> None:
        record = {"kind": "provenance", "name": name, "attrs": list(attrs)}
        record.update(self._counter_fields(mvcc.next_commit_seq()))
        self._append(record)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        """Post-commit threshold check (runs with no locks held)."""
        wal = self._wal
        if wal is not None and self.checkpoint_bytes and (
            wal.size_bytes >= self.checkpoint_bytes
        ):
            self.checkpoint()

    def checkpoint(self) -> None:
        """Rewrite the snapshot at the current committed state and
        rotate the log. Crash-safe at every step: heap files are
        generation-numbered (never overwritten while referenced), the
        manifest swaps in atomically, and the WAL resets only after the
        new manifest is durable."""
        database = self._database
        if database is None:
            raise OperationalError("persistent store is not attached")
        # Lock order: manager (stops commits mid-capture) then store
        # (stops concurrent DDL appends and other checkpointers).
        with database.manager.lock, self._lock:
            if self._wal is None:
                raise OperationalError(
                    f"persistent database at {self.path} is closed"
                )
            generation = self._generation + 1
            seq = mvcc.current_commit_seq()
            tables = []
            for index, entry in enumerate(database.catalog.tables):
                rows, version, ids = entry.table._state
                heap_rel = os.path.join(
                    HEAP_DIR, f"g{generation:08d}-t{index:04d}.heap"
                )
                heap_data = json.dumps(
                    {"rows": _encode_rows(rows), "ids": list(ids)},
                    separators=(",", ":"),
                    allow_nan=False,
                ).encode("utf-8")
                _write_atomically(os.path.join(self.path, heap_rel), heap_data)
                tables.append(
                    {
                        "name": entry.name,
                        "columns": [[a.name, a.type.value] for a in entry.schema],
                        "provenance": list(entry.provenance_attrs),
                        "version": version,
                        "heap": heap_rel,
                    }
                )
            matviews = []
            for index, entry in enumerate(database.catalog.matviews):
                rows, version, ids = entry.table._state
                heap_rel = os.path.join(
                    HEAP_DIR, f"g{generation:08d}-m{index:04d}.heap"
                )
                heap_data = json.dumps(
                    {"rows": _encode_rows(rows), "ids": list(ids)},
                    separators=(",", ":"),
                    allow_nan=False,
                ).encode("utf-8")
                _write_atomically(os.path.join(self.path, heap_rel), heap_data)
                matviews.append(
                    {
                        "name": entry.name,
                        "sql": entry.sql,
                        "with_provenance": entry.with_provenance,
                        "columns": [[a.name, a.type.value] for a in entry.schema],
                        "provenance": list(entry.provenance_attrs),
                        "version": version,
                        "heap": heap_rel,
                        "stale": entry.stale,
                        "delta_safe": entry.delta_safe,
                        "base_tables": list(entry.base_tables),
                        "base_versions": dict(entry.base_versions),
                    }
                )
            manifest = {
                "format": FORMAT_VERSION,
                "generation": generation,
                "checkpoint_seq": seq,
                "catalog_version": database.catalog.version,
                "counters": {
                    "stamp": mvcc.current_stamp(),
                    "commit_seq": seq,
                    "row_id": mvcc.current_row_id(),
                },
                "tables": tables,
                "matviews": matviews,
                "views": [
                    {
                        "name": view.name,
                        "sql": view.sql,
                        "provenance": list(view.provenance_attrs),
                    }
                    for view in database.catalog.views
                ],
            }
            _write_atomically(
                os.path.join(self.path, MANIFEST_NAME),
                json.dumps(manifest, separators=(",", ":"), allow_nan=False).encode(
                    "utf-8"
                ),
            )
            # The snapshot now covers every logged record (their seqs
            # are all <= checkpoint_seq): the log can restart empty.
            self._wal.reset()
            self._generation = generation
            self.checkpoint_count += 1
            self.last_checkpoint_seq = seq
            self._prune_heap_files(
                {spec["heap"] for spec in tables}
                | {spec["heap"] for spec in matviews}
            )

    def _prune_heap_files(self, referenced: set) -> None:
        """Drop heap files no manifest references anymore (best-effort:
        a crash here just leaves garbage for the next checkpoint)."""
        heap_dir = os.path.join(self.path, HEAP_DIR)
        keep = {os.path.basename(path) for path in referenced}
        for name in os.listdir(heap_dir):
            if name not in keep:
                try:
                    os.unlink(os.path.join(heap_dir, name))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    # ------------------------------------------------------------------
    # Stats / lifecycle
    # ------------------------------------------------------------------
    def wal_stats(self) -> dict:
        """Durability counters for operators (server STATS includes
        them): log size and append/fsync activity, checkpoint history,
        and what the last recovery replayed/truncated."""
        with self._lock:
            wal = self._wal
            return {
                "enabled": True,
                "path": self.path,
                "durability": self.durability,
                "wal_bytes": wal.size_bytes if wal is not None else 0,
                "records_appended": wal.records_appended if wal is not None else 0,
                "bytes_appended": wal.bytes_appended if wal is not None else 0,
                "fsyncs": wal.fsync_count if wal is not None else 0,
                "checkpoints": self.checkpoint_count,
                "checkpoint_seq": self.last_checkpoint_seq,
                "records_replayed": self.records_replayed,
                "torn_bytes_truncated": self.torn_bytes_truncated,
                "recovery_ms": round(self.recovery_seconds * 1000.0, 3),
            }

    def close(self) -> None:
        """Flush and close the log and detach every hook (the database
        reverts to in-memory behavior; reopen with a new Database)."""
        with self._lock:
            database, self._database = self._database, None
            if database is not None:
                database.catalog.observer = None
                database.manager.on_commit = None
                database.manager.on_commit_complete = None
                for entry in database.catalog.tables + database.catalog.matviews:
                    entry.table.on_direct_install = None
            wal, self._wal = self._wal, None
            if wal is not None:
                wal.close()
