"""The write-ahead log: append-only, CRC-fenced commit records.

Durability in the original Perm comes for free from PostgreSQL's WAL;
this module gives the reproduction the same contract in one file. Each
record is framed as::

    [u32 payload length][u32 CRC-32 of payload][payload JSON][commit marker]

The trailing one-byte commit marker plus the CRC make torn writes
detectable at any byte offset: a record is *durable* iff its full frame
is present, its marker matches and its payload checksums. Recovery
(:func:`read_records`) walks the file from the start and stops at the
first incomplete or corrupt frame — everything before it is the durable
committed prefix, everything after it is a torn tail to truncate.

Three durability modes trade safety for commit latency:

==========  =========================================================
``fsync``   flush + ``os.fsync`` per append: survives OS/power loss.
``os``      flush to the OS page cache: survives process crash (kill
            -9), not power loss.
``off``     buffered in the process: fastest; a crash may lose the
            most recent commits but never corrupts the prefix
            (writes are still sequential and framed).
==========  =========================================================
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Optional

from ..errors import OperationalError

_FRAME = struct.Struct(">II")  # payload length, CRC-32 of payload
FRAME_HEADER_SIZE = _FRAME.size
COMMIT_MARKER = b"\xc5"

DURABILITY_MODES = ("fsync", "os", "off")


def encode_record(record: dict) -> bytes:
    """One durable frame for *record* (strict JSON payload)."""
    payload = json.dumps(
        record, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return (
        _FRAME.pack(len(payload), zlib.crc32(payload)) + payload + COMMIT_MARKER
    )


def read_records(path: str) -> tuple[list[dict], int, int]:
    """Parse the durable prefix of the log at *path*.

    Returns ``(records, durable_length, total_length)``: every complete,
    CRC-valid, marker-fenced record in append order, the byte offset the
    durable prefix ends at, and the file's total length. A torn tail
    (``durable_length < total_length``) is the caller's to truncate.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[dict] = []
    offset = 0
    while True:
        if offset + FRAME_HEADER_SIZE > len(data):
            break
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + FRAME_HEADER_SIZE + length + len(COMMIT_MARKER)
        if end > len(data):
            break
        payload = data[offset + FRAME_HEADER_SIZE : end - 1]
        if data[end - 1 : end] != COMMIT_MARKER or zlib.crc32(payload) != crc:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset, len(data)


def truncate_log(path: str, length: int) -> None:
    """Cut the log back to its durable prefix (drops a torn tail)."""
    with open(path, "r+b") as handle:
        handle.truncate(length)
        handle.flush()
        os.fsync(handle.fileno())


class WriteAheadLog:
    """An open, append-only log file with a configurable durability mode.

    Thread-safe: appends serialize on an internal lock (commits already
    serialize on the transaction-manager lock, but non-transactional
    writes and DDL may race it)."""

    def __init__(self, path: str, durability: str = "fsync"):
        if durability not in DURABILITY_MODES:
            raise OperationalError(
                f"unknown durability mode {durability!r} "
                f"(valid: {', '.join(DURABILITY_MODES)})"
            )
        self.path = path
        self.durability = durability
        self._lock = threading.Lock()
        self._file: Optional = open(path, "ab")
        self._size = self._file.tell()
        # Telemetry (guarded by the lock).
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsync_count = 0

    def _check_open(self) -> None:
        if self._file is None:
            raise OperationalError("write-ahead log is closed")

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._size

    def append(self, record: dict) -> int:
        """Append one record and make it durable per the configured
        mode. Returns the byte offset the log ends at afterwards."""
        frame = encode_record(record)
        with self._lock:
            self._check_open()
            self._file.write(frame)
            if self.durability == "fsync":
                self._file.flush()
                os.fsync(self._file.fileno())
                self.fsync_count += 1
            elif self.durability == "os":
                self._file.flush()
            self._size += len(frame)
            self.records_appended += 1
            self.bytes_appended += len(frame)
            return self._size

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        with self._lock:
            self._check_open()
            self._file.flush()
            os.fsync(self._file.fileno())
            self.fsync_count += 1

    def reset(self) -> None:
        """Empty the log (checkpoint rotation: the snapshot now carries
        everything the log did)."""
        with self._lock:
            self._check_open()
            self._file.flush()
            self._file.truncate(0)
            self._file.seek(0)
            os.fsync(self._file.fileno())
            self._size = 0

    def close(self) -> None:
        with self._lock:
            if self._file is None:
                return
            try:
                self._file.flush()
                if self.durability == "fsync":
                    os.fsync(self._file.fileno())
            finally:
                self._file.close()
                self._file = None
