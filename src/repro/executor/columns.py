"""Typed columnar buffers for the vectorized engine.

A :class:`TypedColumn` stores one batch column in a packed machine
representation — ``int64`` / ``float64`` / ``bool`` buffers with a
separate null mask — instead of a list of PyObjects. The representation
is chosen from the planner's static types: INT/FLOAT/BOOL columns pack,
TEXT and untyped columns stay plain Python lists. numpy is an *optional
accelerator*: when importable (and ``REPRO_NUMPY`` is not ``0``) buffers
are numpy arrays and the kernels below operate on whole buffers; without
numpy the buffers are ``array('q')`` / ``array('d')`` / ``bytearray``
(still compact) and kernels fall back to the per-element object paths,
so results are bit-identical either way.

Exactness is non-negotiable — these kernels must match the row engine's
unbounded-Python-int semantics bit for bit, so every bulk path guards
the places where int64/float64 machine arithmetic and exact Python
arithmetic can disagree, and **spills** to the object representation
instead of wrapping or rounding:

* integer ``+ - * / %`` pre-check the result interval from the operand
  buffers' actual min/max; a possible int64 overflow runs the exact
  Python loop and returns an object column (bignums preserved);
* comparisons mixing int64 buffers with floats (or float buffers with
  big int constants) only run in machine arithmetic when the int side
  is within ±2^53 (exactly representable in float64); otherwise the
  caller falls back to Python's exact int-vs-float comparison;
* every value leaving a buffer is materialized with ``tolist()`` /
  ``item()`` so numpy scalars never leak into result rows, hash keys or
  the wire protocol.

Null slots in a buffer hold a zero fill; because fills flow through
arithmetic, the min/max used by the interval checks can only *widen*,
never narrow — the guards stay conservative.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterator, Optional, Sequence, Union

from ..datatypes import SQLType, Value

_np = None
if os.environ.get("REPRO_NUMPY", "1") != "0":  # optional accelerator
    try:  # pragma: no cover - exercised implicitly everywhere
        import numpy as _np  # type: ignore[no-redef]
    except Exception:  # pragma: no cover - numpy genuinely absent
        _np = None

HAVE_NUMPY = _np is not None

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1
# Integers up to 2^53 convert to float64 exactly; beyond, machine
# comparisons against floats can disagree with Python's exact ones.
FLOAT_EXACT_INT = 2**53

KIND_I64 = "i64"
KIND_F64 = "f64"
KIND_BOOL = "bool"

_KIND_FOR_TYPE = {
    SQLType.INT: KIND_I64,
    SQLType.FLOAT: KIND_F64,
    SQLType.BOOL: KIND_BOOL,
}
_ZERO = {KIND_I64: 0, KIND_F64: 0.0, KIND_BOOL: False}


class TypedColumn:
    """One column of a batch in packed typed form.

    ``data`` is a numpy array (when the accelerator is active) or an
    ``array``/``bytearray``; ``nulls`` is ``None`` (no NULLs) or a
    parallel boolean mask. ``values()`` materializes (and caches) the
    plain-Python list view, which is what row materialization, hash
    keys and the object fallback paths consume.
    """

    __slots__ = ("kind", "data", "nulls", "length", "is_np", "_values")

    def __init__(self, kind: str, data, nulls, length: int, is_np: bool):
        self.kind = kind
        self.data = data
        self.nulls = nulls
        self.length = length
        self.is_np = is_np
        self._values: Optional[list[Value]] = None

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Value]:
        return iter(self.values())

    def __getitem__(self, index: int) -> Value:
        return self.values()[index]

    # -- materialization ----------------------------------------------
    def values(self) -> list[Value]:
        """The column as a plain Python list (``None`` for NULLs).
        Cached; callers must not mutate the returned list."""
        if self._values is None:
            if self.is_np:
                out = self.data.tolist()
            elif self.kind == KIND_BOOL:
                out = [v == 1 for v in self.data]
            else:
                out = self.data.tolist()
            if self.nulls is not None:
                if self.is_np:
                    positions = _np.nonzero(self.nulls)[0].tolist()
                else:
                    positions = [i for i, flag in enumerate(self.nulls) if flag]
                for i in positions:
                    out[i] = None
            self._values = out
        return self._values

    @property
    def null_count(self) -> int:
        if self.nulls is None:
            return 0
        if self.is_np:
            return int(self.nulls.sum())
        return sum(self.nulls)

    # -- reshaping -----------------------------------------------------
    def take(self, indices) -> "TypedColumn":
        """A new column holding the rows at *indices* (in that order)."""
        if self.is_np:
            data = self.data[indices]
            nulls = self.nulls[indices] if self.nulls is not None else None
            return TypedColumn(self.kind, data, nulls, len(data), True)
        index_list = list(indices)
        if self.kind == KIND_BOOL:
            data = bytearray(self.data[i] for i in index_list)
        else:
            data = array(self.data.typecode, (self.data[i] for i in index_list))
        nulls = (
            bytearray(self.nulls[i] for i in index_list)
            if self.nulls is not None
            else None
        )
        return TypedColumn(self.kind, data, nulls, len(index_list), False)

    def slice(self, start: int, stop: int) -> "TypedColumn":
        data = self.data[start:stop]
        nulls = self.nulls[start:stop] if self.nulls is not None else None
        return TypedColumn(self.kind, data, nulls, len(data), self.is_np)

    # -- mask consumption ---------------------------------------------
    def true_indices(self):
        """Indices where this boolean column is non-NULL ``True`` —
        the filter-selection primitive. Returns a numpy index array on
        the accelerated path, else a Python list."""
        assert self.kind == KIND_BOOL
        if self.is_np:
            if self.nulls is None:
                return _np.nonzero(self.data)[0]
            return _np.nonzero(self.data & ~self.nulls)[0]
        return [i for i, v in enumerate(self.values()) if v is True]

    # -- interval bounds ----------------------------------------------
    def int_bounds(self) -> tuple[int, int]:
        """(min, max) over the int64 buffer *including* null fills —
        conservative (possibly wider than the true value range), which
        is the safe direction for overflow/exactness guards."""
        assert self.kind == KIND_I64
        if self.length == 0:
            return (0, 0)
        if self.is_np:
            return (int(self.data.min()), int(self.data.max()))
        return (min(self.data), max(self.data))


# A batch column is either packed or a plain list of Python values.
AnyColumn = Union[TypedColumn, list]


def build_typed_column(
    values: Sequence[Value], sql_type: Optional[SQLType], use_numpy: Optional[bool] = None
) -> Optional[TypedColumn]:
    """Pack *values* into a :class:`TypedColumn`, or return ``None``
    when the static type has no packed form (TEXT, unknown) or a value
    escapes the typed domain (an int outside int64 — the caller keeps
    the object representation; exactness beats packing)."""
    kind = _KIND_FOR_TYPE.get(sql_type)  # type: ignore[arg-type]
    if kind is None:
        return None
    n = len(values)
    numpy_ok = HAVE_NUMPY if use_numpy is None else (use_numpy and HAVE_NUMPY)
    null_count = values.count(None) if isinstance(values, list) else sum(
        1 for v in values if v is None
    )
    if null_count:
        zero = _ZERO[kind]
        filled = [zero if v is None else v for v in values]
        flags = [v is None for v in values]
    else:
        filled = values if isinstance(values, list) else list(values)
        flags = None
    try:
        if numpy_ok:
            if kind == KIND_I64:
                data = _np.array(filled, dtype=_np.int64)
            elif kind == KIND_F64:
                data = _np.array(filled, dtype=_np.float64)
            else:
                data = _np.array(filled, dtype=bool)
            nulls = _np.array(flags, dtype=bool) if flags is not None else None
            return TypedColumn(kind, data, nulls, n, True)
        if kind == KIND_I64:
            data = array("q", filled)
        elif kind == KIND_F64:
            data = array("d", filled)
        else:
            data = bytearray(filled)
        nulls = bytearray(flags) if flags is not None else None
        return TypedColumn(kind, data, nulls, n, False)
    except (OverflowError, ValueError, TypeError):
        # A value escaped the typed domain (int64 overflow, stray type):
        # spill to the object representation.
        return None


def column_values(column: AnyColumn) -> list[Value]:
    """Plain-Python list view of any column representation."""
    if isinstance(column, TypedColumn):
        return column.values()
    return column


def column_slice(column: AnyColumn, start: int, stop: int) -> AnyColumn:
    if isinstance(column, TypedColumn):
        return column.slice(start, stop)
    return column[start:stop]


def _bool_column(mask, nulls) -> TypedColumn:
    return TypedColumn(KIND_BOOL, mask, nulls, len(mask), True)


def _union_nulls(a: Optional[object], b: Optional[object]):
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def concat_any_columns(parts: Sequence[AnyColumn]) -> AnyColumn:
    """Concatenate per-batch columns into one, preserving packing when
    every part is a numpy-backed column of the same kind."""
    if not parts:
        return []
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    if (
        isinstance(first, TypedColumn)
        and first.is_np
        and all(
            isinstance(p, TypedColumn) and p.is_np and p.kind == first.kind
            for p in parts
        )
    ):
        data = _np.concatenate([p.data for p in parts])
        if any(p.nulls is not None for p in parts):
            nulls = _np.concatenate(
                [
                    p.nulls
                    if p.nulls is not None
                    else _np.zeros(p.length, dtype=bool)
                    for p in parts
                ]
            )
        else:
            nulls = None
        return TypedColumn(first.kind, data, nulls, len(data), True)
    out: list[Value] = []
    for part in parts:
        out.extend(column_values(part))
    return out


def f64_has_nan(column: TypedColumn) -> bool:
    """Whether a float64 column contains NaN (NaN breaks total ordering
    and min/max associativity, so bulk paths step aside)."""
    if column.is_np:
        return bool(_np.isnan(column.data).any())
    return any(v != v for v in column.data)


def int_sum_exact(column: TypedColumn) -> int:
    """Exact sum of the non-NULL values of an int64 column: the bulk
    machine sum when the result provably fits int64, else the unbounded
    Python sum (bignums, never wraps)."""
    lo, hi = column.int_bounds()
    if column.is_np and max(abs(lo), abs(hi)) * column.length <= INT64_MAX:
        data = (
            column.data if column.nulls is None else column.data[~column.nulls]
        )
        return int(data.sum())
    return sum(v for v in column.values() if v is not None)


def typed_extreme(column: TypedColumn, want_max: bool) -> Value:
    """min/max over the non-NULL values, or None when there are none.
    NaN-containing float columns use the object path so the (order-
    dependent) Python min/max semantics are preserved exactly."""
    if column.is_np and column.kind in (KIND_I64, KIND_F64):
        data = (
            column.data if column.nulls is None else column.data[~column.nulls]
        )
        if data.size == 0:
            return None
        if not (column.kind == KIND_F64 and bool(_np.isnan(data).any())):
            return (data.max() if want_max else data.min()).item()
    present = [v for v in column.values() if v is not None]
    if not present:
        return None
    return max(present) if want_max else min(present)


# ---------------------------------------------------------------------------
# Bulk kernels (numpy-backed columns only; callers fall back to the
# object paths when these return None)
# ---------------------------------------------------------------------------

_CMP_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _accelerated(column: AnyColumn) -> bool:
    return isinstance(column, TypedColumn) and column.is_np


def vec_cmp_const(column: AnyColumn, op: str, const: Value) -> Optional[TypedColumn]:
    """``column <op> const`` as a bulk boolean mask, or None when no
    exact machine path exists."""
    if not _accelerated(column) or column.kind == KIND_BOOL:
        return None
    if isinstance(const, bool) or not isinstance(const, (int, float)):
        return None
    data, nulls = column.data, column.nulls
    if column.kind == KIND_I64:
        if isinstance(const, int):
            if INT64_MIN <= const <= INT64_MAX:
                mask = _CMP_OPS[op](data, const)
            else:
                # Every in-range int64 relates to an out-of-range
                # constant the same way.
                if const > INT64_MAX:
                    all_true = op in ("<", "<=", "<>")
                else:
                    all_true = op in (">", ">=", "<>")
                mask = _np.full(column.length, all_true, dtype=bool)
        else:  # int64 buffer vs float: exact only within ±2^53
            low, high = column.int_bounds()
            if low < -FLOAT_EXACT_INT or high > FLOAT_EXACT_INT:
                return None
            mask = _CMP_OPS[op](data, const)
    else:  # KIND_F64
        if isinstance(const, int) and not -FLOAT_EXACT_INT <= const <= FLOAT_EXACT_INT:
            return None
        mask = _CMP_OPS[op](data, float(const))
    return _bool_column(mask, nulls)


def vec_cmp(a: AnyColumn, b: AnyColumn, op: str) -> Optional[TypedColumn]:
    """``a <op> b`` column-vs-column as a bulk boolean mask."""
    if not (_accelerated(a) and _accelerated(b)):
        return None
    if a.kind == KIND_BOOL or b.kind == KIND_BOOL:
        return None
    if a.kind != b.kind:
        # int64 promotes to float64 for the machine comparison; exact
        # only while the int side is within ±2^53.
        int_side = a if a.kind == KIND_I64 else b
        low, high = int_side.int_bounds()
        if low < -FLOAT_EXACT_INT or high > FLOAT_EXACT_INT:
            return None
    mask = _CMP_OPS[op](a.data, b.data)
    return _bool_column(mask, _union_nulls(a.nulls, b.nulls))


def vec_isnull(column: AnyColumn, negated: bool) -> Optional[TypedColumn]:
    if not _accelerated(column):
        return None
    if column.nulls is None:
        mask = _np.full(column.length, negated, dtype=bool)
    else:
        mask = ~column.nulls if negated else column.nulls.copy()
    return _bool_column(mask, None)


def vec_and(a: AnyColumn, b: AnyColumn) -> Optional[TypedColumn]:
    """Three-valued AND over boolean columns: false dominates unknown."""
    if not (_accelerated(a) and _accelerated(b)):
        return None
    if a.kind != KIND_BOOL or b.kind != KIND_BOOL:
        return None
    va, vb = a.data, b.data
    if a.nulls is None and b.nulls is None:
        return _bool_column(va & vb, None)
    na = a.nulls if a.nulls is not None else _np.zeros(a.length, dtype=bool)
    nb = b.nulls if b.nulls is not None else _np.zeros(b.length, dtype=bool)
    either_false = (~va & ~na) | (~vb & ~nb)
    nulls = (na | nb) & ~either_false
    return _bool_column(va & vb, nulls if nulls.any() else None)


def vec_or(a: AnyColumn, b: AnyColumn) -> Optional[TypedColumn]:
    """Three-valued OR over boolean columns: true dominates unknown."""
    if not (_accelerated(a) and _accelerated(b)):
        return None
    if a.kind != KIND_BOOL or b.kind != KIND_BOOL:
        return None
    va, vb = a.data, b.data
    if a.nulls is None and b.nulls is None:
        return _bool_column(va | vb, None)
    na = a.nulls if a.nulls is not None else _np.zeros(a.length, dtype=bool)
    nb = b.nulls if b.nulls is not None else _np.zeros(b.length, dtype=bool)
    either_true = (va & ~na) | (vb & ~nb)
    nulls = (na | nb) & ~either_true
    return _bool_column(va | vb, nulls if nulls.any() else None)


def vec_not(a: AnyColumn) -> Optional[TypedColumn]:
    if not _accelerated(a) or a.kind != KIND_BOOL:
        return None
    return _bool_column(~a.data, a.nulls)


def vec_neg(a: AnyColumn) -> Optional[AnyColumn]:
    """Unary minus; spills to the exact object path when negating could
    overflow int64 (only ``-INT64_MIN``)."""
    if not _accelerated(a) or a.kind == KIND_BOOL:
        return None
    if a.kind == KIND_I64:
        low, _ = a.int_bounds()
        if low == INT64_MIN:
            return [None if v is None else -v for v in a.values()]
        return TypedColumn(KIND_I64, -a.data, a.nulls, a.length, True)
    return TypedColumn(KIND_F64, -a.data, a.nulls, a.length, True)


def _operand_info(operand):
    """(is_column, kind, bounds) for a TypedColumn or scalar operand."""
    if isinstance(operand, TypedColumn):
        if operand.kind == KIND_I64:
            return True, KIND_I64, operand.int_bounds()
        if operand.kind == KIND_F64:
            return True, KIND_F64, None
        return True, None, None  # BOOL columns never enter arithmetic
    if isinstance(operand, bool):
        return False, None, None
    if isinstance(operand, int):
        return False, KIND_I64, (operand, operand)
    if isinstance(operand, float):
        return False, KIND_F64, None
    return False, None, None


def _int_interval(op: str, a_bounds, b_bounds) -> tuple[int, int]:
    alo, ahi = a_bounds
    blo, bhi = b_bounds
    if op == "+":
        return alo + blo, ahi + bhi
    if op == "-":
        return alo - bhi, ahi - blo
    products = (alo * blo, alo * bhi, ahi * blo, ahi * bhi)
    return min(products), max(products)


def _spill_arith(op: str, a, b, length: int) -> list[Value]:
    """Exact Python evaluation into an object column (the mandatory
    spill path: int64 overflow promotes to bignums, never wraps)."""
    from ..datatypes import arith

    a_vals = a.values() if isinstance(a, TypedColumn) else [a] * length
    b_vals = b.values() if isinstance(b, TypedColumn) else [b] * length
    if op == "+":
        return [
            None if x is None or y is None else x + y for x, y in zip(a_vals, b_vals)
        ]
    if op == "-":
        return [
            None if x is None or y is None else x - y for x, y in zip(a_vals, b_vals)
        ]
    if op == "*":
        return [
            None if x is None or y is None else x * y for x, y in zip(a_vals, b_vals)
        ]
    return [arith(op, x, y) for x, y in zip(a_vals, b_vals)]


def vec_arith(op: str, a, b, length: int) -> Optional[AnyColumn]:
    """Bulk arithmetic over ``TypedColumn | scalar`` operands.

    Returns a packed column on the machine path, an object list from
    the exact spill path, or None when no bulk path applies (caller
    falls back to the per-element kernels).
    """
    a_col, a_kind, a_bounds = _operand_info(a)
    b_col, b_kind, b_bounds = _operand_info(b)
    if a_kind is None or b_kind is None:
        return None
    if not (a_col or b_col):
        return None
    if (a_col and not a.is_np) or (b_col and not b.is_np):
        return None
    # A scalar int operand beyond int64 cannot enter a numpy kernel at
    # all (the operand conversion itself overflows, even when the
    # *result* interval fits). Exact object evaluation instead.
    for is_col, kind, scalar in ((a_col, a_kind, a), (b_col, b_kind, b)):
        if not is_col and kind == KIND_I64 and not (INT64_MIN <= scalar <= INT64_MAX):
            if op in ("+", "-", "*"):
                return _spill_arith(op, a, b, length)
            return None  # caller's per-element kernel is exact

    a_nulls = a.nulls if a_col else None
    b_nulls = b.nulls if b_col else None
    nulls = _union_nulls(a_nulls, b_nulls)
    both_int = a_kind == KIND_I64 and b_kind == KIND_I64

    if op in ("+", "-", "*"):
        ad = a.data if a_col else a
        bd = b.data if b_col else b
        if both_int:
            low, high = _int_interval(op, a_bounds, b_bounds)
            if low < INT64_MIN or high > INT64_MAX:
                return _spill_arith(op, a, b, length)
            if op == "+":
                data = ad + bd
            elif op == "-":
                data = ad - bd
            else:
                data = ad * bd
            return TypedColumn(KIND_I64, data, nulls, length, True)
        # Mixed or float: float64 result. int64 -> float64 casts round
        # to nearest, exactly as Python's int -> float conversion does,
        # so the machine result matches the row engine bit for bit.
        if op == "+":
            data = ad + bd
        elif op == "-":
            data = ad - bd
        else:
            data = ad * bd
        if data.dtype != _np.float64:  # e.g. int column + float scalar edge
            data = data.astype(_np.float64)
        return TypedColumn(KIND_F64, data, nulls, length, True)

    if op == "/":
        # Any true zero divisor must raise in row order — leave that to
        # the exact per-element kernel.
        if b_col:
            bd = b.data
            valid = ~b.nulls if b.nulls is not None else None
            zeros = (bd == 0) & valid if valid is not None else bd == 0
            if bool(zeros.any()):
                return None
            if b.nulls is not None:
                bd = _np.where(b.nulls, 1, bd)
        else:
            if b == 0:
                return None
            bd = b
        ad = a.data if a_col else a
        if both_int:
            # SQL integer division truncates toward zero; only
            # INT64_MIN / -1 can overflow.
            if a_bounds[0] == INT64_MIN:
                if b_col:
                    minus_one = bd == -1
                    if bool(minus_one.any()):
                        return _spill_arith(op, a, b, length)
                elif b == -1:
                    return _spill_arith(op, a, b, length)
            remainder = _np.fmod(ad, bd)
            data = (ad - remainder) // bd
            return TypedColumn(KIND_I64, data, nulls, length, True)
        data = ad / bd
        if data.dtype != _np.float64:
            data = data.astype(_np.float64)
        return TypedColumn(KIND_F64, data, nulls, length, True)

    if op == "%":
        if not both_int:
            return None  # % requires ints; let the exact kernel raise
        if b_col:
            bd = b.data
            valid = ~b.nulls if b.nulls is not None else None
            zeros = (bd == 0) & valid if valid is not None else bd == 0
            if bool(zeros.any()):
                return None
            if b.nulls is not None:
                bd = _np.where(b.nulls, 1, bd)
            if a_bounds[0] == INT64_MIN and bool((bd == -1).any()):
                return _spill_arith(op, a, b, length)
        else:
            if b == 0:
                return None
            if a_bounds[0] == INT64_MIN and b == -1:
                return _spill_arith(op, a, b, length)
            bd = b
        ad = a.data if a_col else a
        # C-style fmod on int64 is the truncated remainder — exactly
        # SQL's sign-of-the-dividend modulo.
        data = _np.fmod(ad, bd)
        return TypedColumn(KIND_I64, data, nulls, length, True)

    return None
