"""Plan execution: run a physical operator tree into a Relation."""

from __future__ import annotations

from typing import Sequence

from ..storage.table import Relation
from .iterators import PhysicalOp


def execute_plan(plan: PhysicalOp, provenance_attrs: Sequence[str] = ()) -> Relation:
    """Execute *plan* to completion and wrap the rows in a
    :class:`~repro.storage.table.Relation`.

    ``provenance_attrs`` annotates which output columns carry provenance
    (set by the engine when the query went through the provenance
    rewriter), so clients can split original from provenance attributes
    the way Figure 2 of the paper presents them.
    """
    rows = list(plan.rows(()))
    return Relation(plan.schema, rows, provenance_attrs)
