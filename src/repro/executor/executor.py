"""Plan execution: run a physical operator tree into a Relation."""

from __future__ import annotations

from typing import Optional, Sequence

from ..datatypes import Value
from ..storage.table import Relation
from .expr_eval import ParamContext
from .iterators import PhysicalOp
from .vectorized import VectorOp


def execute_plan(
    plan: "PhysicalOp | VectorOp",
    provenance_attrs: Sequence[str] = (),
    params: Sequence[Value] = (),
    context: Optional[ParamContext] = None,
) -> Relation:
    """Execute *plan* to completion and wrap the rows in a
    :class:`~repro.storage.table.Relation`.

    ``provenance_attrs`` annotates which output columns carry provenance
    (set by the engine when the query went through the provenance
    rewriter), so clients can split original from provenance attributes
    the way Figure 2 of the paper presents them.

    ``context`` is the :class:`ParamContext` the plan's expressions were
    compiled against; when given, *params* is bound into it (starting a
    fresh execution epoch) before any row is produced. Plans without
    placeholders may omit both.
    """
    if context is not None:
        context.bind(params)
    if isinstance(plan, VectorOp):
        # Batch fast path: flatten columnar chunks in bulk instead of
        # pulling tuples one at a time through the iterator adapter.
        rows = plan.materialize(())
    else:
        rows = list(plan.rows(()))
    return Relation(plan.schema, rows, provenance_attrs)
