"""Executor: physical operators and expression evaluation.

Two execution engines share this package: the tuple-at-a-time row engine
(:mod:`~repro.executor.iterators`) and the batch-at-a-time vectorized
engine (:mod:`~repro.executor.vectorized`). The third engine — the
SQLite pushdown backend (:mod:`repro.backend`) — satisfies the same
physical-operator contract and reuses this package's row engine for
sublink subplans and fallback fragments. All are compiled by the planner
from the same plan decisions and produce identical results.
"""

from .batch import DEFAULT_BATCH_SIZE, Batch  # noqa: F401
from .executor import execute_plan  # noqa: F401
from .expr_eval import CompiledExpr, ExprCompiler, ParamContext  # noqa: F401
from .vector_expr import VectorExpr, VectorExprCompiler  # noqa: F401
from .vectorized import VectorOp  # noqa: F401
