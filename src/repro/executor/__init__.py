"""Executor: physical volcano-style operators and expression evaluation."""

from .executor import execute_plan  # noqa: F401
from .expr_eval import CompiledExpr, ExprCompiler, ParamContext  # noqa: F401
