"""Columnar batches: the unit of work of the vectorized executor.

A :class:`Batch` holds a fixed number of rows decomposed into columns
(one plain Python list per attribute). Vectorized operators pass batches
of ~:data:`DEFAULT_BATCH_SIZE` rows between each other and vectorized
expressions evaluate whole columns at a time, which amortizes the
Python-interpreter dispatch the row engine pays per tuple per operator.

Zero-width batches are legal (``SELECT`` without ``FROM`` flows a
one-row, zero-column batch through the plan), so the row count is stored
explicitly rather than derived from the columns.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..datatypes import Value

Row = tuple[Value, ...]

# Default rows per batch. Large enough to amortize per-batch overheads,
# small enough to keep intermediate columns cache- and memory-friendly.
DEFAULT_BATCH_SIZE = 1024


class Batch:
    """A chunk of rows in columnar form."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Sequence[list[Value]], length: int):
        self.columns = list(columns)
        self.length = length

    def __len__(self) -> int:
        return self.length

    @staticmethod
    def from_rows(rows: Sequence[Row], width: int) -> "Batch":
        """Columnarize *rows* (``width`` matters when rows is empty or
        zero-width)."""
        if not rows:
            return Batch([[] for _ in range(width)], 0)
        if width == 0:
            return Batch([], len(rows))
        return Batch([list(column) for column in zip(*rows)], len(rows))

    def rows(self) -> list[Row]:
        """Materialize the batch back into row tuples."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def iter_rows(self) -> Iterator[Row]:
        if not self.columns:
            return iter([()] * self.length)
        return zip(*self.columns)

    def take(self, indices: Sequence[int]) -> "Batch":
        """A new batch holding the rows at *indices* (in that order)."""
        return Batch(
            [[column[i] for i in indices] for column in self.columns],
            len(indices),
        )

    def slice(self, start: int, stop: int) -> "Batch":
        start = max(start, 0)
        stop = min(stop, self.length)
        if stop <= start:
            return Batch([[] for _ in self.columns], 0)
        return Batch([column[start:stop] for column in self.columns], stop - start)

    def concat_columns(self, other: "Batch") -> "Batch":
        """Widen this batch with *other*'s columns (same length)."""
        assert self.length == other.length
        return Batch(self.columns + other.columns, self.length)


def batches_from_rows(
    rows: Sequence[Row], width: int, batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[Batch]:
    """Chunk a row list into columnar batches."""
    for start in range(0, len(rows), batch_size):
        yield Batch.from_rows(rows[start : start + batch_size], width)


def rows_from_batches(batches: Iterable[Batch]) -> list[Row]:
    """Flatten a batch stream back into one row list."""
    out: list[Row] = []
    for batch in batches:
        out.extend(batch.rows())
    return out
