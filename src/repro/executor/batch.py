"""Columnar batches: the unit of work of the vectorized executor.

A :class:`Batch` holds a fixed number of rows decomposed into columns.
Each column is either a packed :class:`~repro.executor.columns.TypedColumn`
(int64/float64/bool buffers with a separate null mask, chosen from the
planner's static types) or a plain Python list for TEXT/untyped values
and for values that escaped the typed domain. Vectorized operators pass
batches of ~:data:`DEFAULT_BATCH_SIZE` rows between each other and
vectorized expressions evaluate whole columns at a time, which amortizes
the Python-interpreter dispatch the row engine pays per tuple per
operator — and on packed columns the hot kernels run as single bulk
array operations.

Zero-width batches are legal (``SELECT`` without ``FROM`` flows a
one-row, zero-column batch through the plan), so the row count is stored
explicitly rather than derived from the columns.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..datatypes import Value
from .columns import AnyColumn, TypedColumn, column_slice, column_values

Row = tuple[Value, ...]

# Default rows per batch. Large enough to amortize per-batch overheads,
# small enough to keep intermediate columns cache- and memory-friendly.
DEFAULT_BATCH_SIZE = 1024


class Batch:
    """A chunk of rows in columnar form."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Sequence[AnyColumn], length: int):
        self.columns = list(columns)
        self.length = length

    def __len__(self) -> int:
        return self.length

    @staticmethod
    def from_rows(rows: Sequence[Row], width: int) -> "Batch":
        """Columnarize *rows* (``width`` matters when rows is empty or
        zero-width)."""
        if not rows:
            return Batch([[] for _ in range(width)], 0)
        if width == 0:
            return Batch([], len(rows))
        return Batch([list(column) for column in zip(*rows)], len(rows))

    def value_columns(self) -> list[list[Value]]:
        """Every column as a plain Python list."""
        return [column_values(column) for column in self.columns]

    def rows(self) -> list[Row]:
        """Materialize the batch back into row tuples."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.value_columns()))

    def iter_rows(self) -> Iterator[Row]:
        if not self.columns:
            return iter([()] * self.length)
        return zip(*self.value_columns())

    def take(self, indices) -> "Batch":
        """A new batch holding the rows at *indices* (in that order).
        *indices* may be a Python sequence or a numpy index array."""
        index_list = None
        columns: list[AnyColumn] = []
        for column in self.columns:
            if isinstance(column, TypedColumn):
                columns.append(column.take(indices))
            else:
                if index_list is None:
                    index_list = (
                        indices.tolist() if hasattr(indices, "tolist") else indices
                    )
                columns.append([column[i] for i in index_list])
        return Batch(columns, len(indices))

    def slice(self, start: int, stop: int) -> "Batch":
        start = max(start, 0)
        stop = min(stop, self.length)
        if stop <= start:
            return Batch([[] for _ in self.columns], 0)
        return Batch(
            [column_slice(column, start, stop) for column in self.columns],
            stop - start,
        )

    def concat_columns(self, other: "Batch") -> "Batch":
        """Widen this batch with *other*'s columns (same length)."""
        assert self.length == other.length
        return Batch(self.columns + other.columns, self.length)


def batches_from_rows(
    rows: Sequence[Row], width: int, batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[Batch]:
    """Chunk a row list into columnar batches."""
    for start in range(0, len(rows), batch_size):
        yield Batch.from_rows(rows[start : start + batch_size], width)


def rows_from_batches(batches: Iterable[Batch]) -> list[Row]:
    """Flatten a batch stream back into one row list."""
    out: list[Row] = []
    for batch in batches:
        out.extend(batch.rows())
    return out
