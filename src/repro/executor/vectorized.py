"""The vectorized (batch-at-a-time) execution engine.

Physical operators that process :class:`~repro.executor.batch.Batch`
chunks of ~1024 rows instead of single tuples. The planner builds these
from the *same* physical plan decisions as the row engine (hash vs
nested-loop joins, hash aggregation, stable multi-key sorts), so both
engines produce byte-identical results in identical row order — which is
what the differential harness in ``tests/differential`` asserts.

Coverage: scan, filter, project, hash join, hash aggregate, distinct,
sort and limit run vectorized. Everything else (nested-loop joins, set
operations) and every correlated-sublink expression falls back to the
row engine per-subtree via :class:`VFromRows` / the row-compiler
fallback in :mod:`~repro.executor.vector_expr` — falling back never
changes results, only the execution style.

One intentional deviation: evaluation is *strict* per batch. A query
whose result is identical on both engines can still differ in error
behavior when an expression error hides behind LIMIT — the row engine
stops pulling tuples at the limit, while the vectorized engine has
already evaluated the whole current batch (standard vectorized-engine
semantics). The differential generator therefore only emits queries
free of data-dependent errors.

Speed comes from three places: columnarization happens in bulk
(``zip(*rows)`` chunks), expression kernels run one list comprehension
per column instead of a closure call per row per operator, and
aggregates consume whole columns (``count(*)`` per batch is one
addition). The row engine pays Python-interpreter dispatch for each of
these per tuple.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..catalog.schema import Schema
from ..datatypes import SQLType, Value, is_true, row_identity, sort_key, value_identity
from ..storage.table import HeapTable
from .batch import DEFAULT_BATCH_SIZE, Batch, batches_from_rows, rows_from_batches
from .columns import (
    KIND_F64,
    KIND_I64,
    TypedColumn,
    build_typed_column,
    column_slice,
    column_values,
    concat_any_columns,
    f64_has_nan,
    int_sum_exact,
    typed_extreme,
)
from .expr_eval import AggregateAccumulator, CompiledExpr, Env, Row, count_star_sentinel
from .iterators import AggSpec, PhysicalOp, SortSpec, evaluate_limit_count
from .vector_expr import VectorExpr

Rows = list[Row]


class VectorOp:
    """Base class for vectorized physical operators.

    ``rows(env)`` adapts the batch stream back to tuple-at-a-time pull,
    so a vectorized plan satisfies the same executor contract as a
    :class:`~repro.executor.iterators.PhysicalOp` tree.
    """

    __slots__ = ("schema",)

    schema: Schema

    def batches(self, env: Env) -> Iterator[Batch]:
        raise NotImplementedError

    def rows(self, env: Env) -> Iterator[Row]:
        for batch in self.batches(env):
            yield from batch.iter_rows()

    def materialize(self, env: Env) -> Rows:
        return rows_from_batches(self.batches(env))


class VScan(VectorOp):
    """Sequential scan over the table's packed columnar image.

    The heap hands scans off through ``HeapTable.columnar_cache``: a
    per-version-stamp packed columnarization (typed buffers for
    INT/FLOAT/BOOL columns, object lists otherwise) built on first scan
    and reused until the table's visible version moves — version stamps
    are snapshot identity, so repeated analytical queries pay zero
    re-columnarization and the typed kernels start straight from packed
    buffers.
    """

    __slots__ = ("table", "batch_size")

    def __init__(self, table: HeapTable, schema: Schema, batch_size: int = DEFAULT_BATCH_SIZE):
        self.table = table
        self.schema = schema
        self.batch_size = batch_size

    def _columns(self, rows: Rows, version: int) -> list:
        cached = self.table.columnar_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        schema = self.schema
        raw = list(zip(*rows)) if rows else [() for _ in schema]
        columns = []
        for values, attribute in zip(raw, schema):
            values = list(values)
            typed = build_typed_column(values, attribute.type)
            columns.append(typed if typed is not None else values)
        self.table.columnar_cache = (version, columns)
        return columns

    def batches(self, env: Env) -> Iterator[Batch]:
        table = self.table
        rows = table.rows
        n = len(rows)
        if n == 0:
            return
        width = len(self.schema)
        if width and len(rows[0]) != width:
            # Schema/width drift (shouldn't happen): stay on the safe
            # row-materializing path.
            for start in range(0, n, self.batch_size):
                yield Batch.from_rows(rows[start : start + self.batch_size], width)
            return
        columns = self._columns(rows, table.version)
        batch_size = self.batch_size
        if n <= batch_size:
            yield Batch(columns, n)
            return
        for start in range(0, n, batch_size):
            stop = min(start + batch_size, n)
            yield Batch(
                [column_slice(column, start, stop) for column in columns],
                stop - start,
            )


class VValues(VectorOp):
    """Materialized row source (SingleRow, cached results)."""

    __slots__ = ("data", "batch_size")

    def __init__(self, data: Rows, schema: Schema, batch_size: int = DEFAULT_BATCH_SIZE):
        self.data = data
        self.schema = schema
        self.batch_size = batch_size

    def batches(self, env: Env) -> Iterator[Batch]:
        width = len(self.schema)
        for start in range(0, len(self.data), self.batch_size):
            yield Batch.from_rows(self.data[start : start + self.batch_size], width)


class VFromRows(VectorOp):
    """Adapter: run a row-engine subtree and re-batch its output.

    Used for operators the vectorized engine does not implement natively
    (nested-loop joins, set operations) so a single plan can mix both
    engines per-subtree.
    """

    __slots__ = ("child", "batch_size")

    def __init__(self, child: PhysicalOp, batch_size: int = DEFAULT_BATCH_SIZE):
        self.child = child
        self.schema = child.schema
        self.batch_size = batch_size

    def batches(self, env: Env) -> Iterator[Batch]:
        width = len(self.schema)
        buffer: Rows = []
        for row in self.child.rows(env):
            buffer.append(row)
            if len(buffer) >= self.batch_size:
                yield Batch.from_rows(buffer, width)
                buffer = []
        if buffer:
            yield Batch.from_rows(buffer, width)


class VProject(VectorOp):
    __slots__ = ("child", "items")

    def __init__(self, child: VectorOp, items: list[VectorExpr], schema: Schema):
        self.child = child
        self.items = items
        self.schema = schema

    def batches(self, env: Env) -> Iterator[Batch]:
        items = self.items
        for batch in self.child.batches(env):
            yield Batch([item(batch, env) for item in items], batch.length)


class VFilter(VectorOp):
    __slots__ = ("child", "predicate")

    def __init__(self, child: VectorOp, predicate: VectorExpr):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def batches(self, env: Env) -> Iterator[Batch]:
        predicate = self.predicate
        for batch in self.child.batches(env):
            mask = predicate(batch, env)
            if isinstance(mask, TypedColumn):
                selected = mask.true_indices()
                count = len(selected)
                if count == batch.length:
                    yield batch
                elif count:
                    yield batch.take(selected)
                continue
            selected = [i for i, passed in enumerate(mask) if passed is True]
            if len(selected) == batch.length:
                yield batch
            elif selected:
                yield batch.take(selected)


class VHashJoin(VectorOp):
    """Hash join with vectorized key evaluation.

    Build and probe keys are computed column-at-a-time; the emit loop is
    tuple-wise (combined rows interleave matches with outer padding) and
    reproduces :class:`~repro.executor.iterators.PHashJoin`'s output
    order exactly — including under ``build_side="left"``, the
    planner's estimated-cardinality hash-side choice, which hashes a
    small left input, streams the large right input through it buffering
    only matching rows, and replays the output in left-major order.
    """

    __slots__ = (
        "left",
        "right",
        "kind",
        "left_keys",
        "right_keys",
        "null_safe",
        "residual",
        "left_width",
        "right_width",
        "batch_size",
        "build_side",
    )

    def __init__(
        self,
        left: VectorOp,
        right: VectorOp,
        kind: str,
        left_keys: list[VectorExpr],
        right_keys: list[VectorExpr],
        null_safe: list[bool],
        residual: Optional[CompiledExpr],
        schema: Schema,
        batch_size: int = DEFAULT_BATCH_SIZE,
        build_side: str = "right",
    ):
        if build_side == "left" and kind not in ("inner", "left"):
            raise ValueError(
                f"build-left hash join does not support {kind!r} joins"
            )
        self.left = left
        self.right = right
        self.kind = kind
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.null_safe = null_safe
        self.residual = residual
        self.left_width = len(left.schema)
        self.right_width = len(right.schema)
        self.schema = schema
        self.batch_size = batch_size
        self.build_side = build_side

    def _key_column(
        self, batch: Batch, env: Env, key_fns: list[VectorExpr]
    ) -> list[Optional[tuple]]:
        """One hash key (or None for a never-matching NULL key) per row."""
        key_columns = [column_values(fn(batch, env)) for fn in key_fns]
        null_safe = self.null_safe
        if len(key_columns) == 1:
            # Single-key probe — the dominant shape.
            column = key_columns[0]
            if null_safe[0]:
                return [(value_identity(v),) for v in column]
            return [
                None if v is None else (value_identity(v),) for v in column
            ]
        out: list[Optional[tuple]] = []
        for values in zip(*key_columns):
            key: list = []
            for value, safe in zip(values, null_safe):
                if value is None and not safe:
                    break
                key.append(value_identity(value))
            else:
                out.append(tuple(key))
                continue
            out.append(None)
        return out

    def batches(self, env: Env) -> Iterator[Batch]:
        if self.build_side == "left":
            yield from self._batches_build_left(env)
            return
        right_rows: Rows = []
        table: dict[tuple, list[int]] = {}
        for batch in self.right.batches(env):
            keys = self._key_column(batch, env, self.right_keys)
            base = len(right_rows)
            right_rows.extend(batch.iter_rows())
            for offset, key in enumerate(keys):
                if key is not None:
                    table.setdefault(key, []).append(base + offset)

        right_matched = (
            [False] * len(right_rows) if self.kind in ("right", "full") else None
        )
        left_pad = (None,) * self.left_width
        right_pad = (None,) * self.right_width
        residual = self.residual
        pad_left = self.kind in ("left", "full")

        out: Rows = []
        for batch in self.left.batches(env):
            keys = self._key_column(batch, env, self.left_keys)
            for left_row, key in zip(batch.iter_rows(), keys):
                matched = False
                if key is not None:
                    for index in table.get(key, ()):
                        combined = left_row + right_rows[index]
                        if residual is not None and not is_true(residual(combined, env)):
                            continue
                        matched = True
                        if right_matched is not None:
                            right_matched[index] = True
                        out.append(combined)
                if not matched and pad_left:
                    out.append(left_row + right_pad)
                if len(out) >= self.batch_size:
                    yield Batch.from_rows(out, len(self.schema))
                    out = []

        if right_matched is not None:
            for flag, right_row in zip(right_matched, right_rows):
                if not flag:
                    out.append(left_pad + right_row)
                    if len(out) >= self.batch_size:
                        yield Batch.from_rows(out, len(self.schema))
                        out = []
        if out:
            yield Batch.from_rows(out, len(self.schema))

    def _batches_build_left(self, env: Env) -> Iterator[Batch]:
        left_rows: Rows = []
        table: dict[tuple, list[int]] = {}
        for batch in self.left.batches(env):
            keys = self._key_column(batch, env, self.left_keys)
            base = len(left_rows)
            left_rows.extend(batch.iter_rows())
            for offset, key in enumerate(keys):
                if key is not None:
                    table.setdefault(key, []).append(base + offset)

        # Matching right rows per left row, in right-stream order — the
        # exact per-left-row sequence the build-right probe produces.
        matches: list[Rows] = [[] for _ in left_rows]
        residual = self.residual
        for batch in self.right.batches(env):
            keys = self._key_column(batch, env, self.right_keys)
            for right_row, key in zip(batch.iter_rows(), keys):
                if key is None:
                    continue
                for index in table.get(key, ()):
                    combined = left_rows[index] + right_row
                    if residual is not None and not is_true(residual(combined, env)):
                        continue
                    matches[index].append(right_row)

        right_pad = (None,) * self.right_width
        pad_left = self.kind == "left"
        out: Rows = []
        for index, left_row in enumerate(left_rows):
            matched = matches[index]
            if matched:
                for right_row in matched:
                    out.append(left_row + right_row)
                    if len(out) >= self.batch_size:
                        yield Batch.from_rows(out, len(self.schema))
                        out = []
            elif pad_left:
                out.append(left_row + right_pad)
                if len(out) >= self.batch_size:
                    yield Batch.from_rows(out, len(self.schema))
                    out = []
        if out:
            yield Batch.from_rows(out, len(self.schema))


class _ColumnAccumulator:
    """One aggregate accumulator that can consume whole columns.

    Wraps the row engine's :class:`AggregateAccumulator` (same state,
    same ``result()``) and adds column fast paths for the common
    non-DISTINCT aggregates when the argument's static type guarantees
    the bulk builtins agree with SQL semantics.
    """

    __slots__ = ("inner", "func", "distinct", "fast", "exact_int")

    def __init__(self, spec: AggSpec, static_type: Optional[SQLType]):
        self.inner = AggregateAccumulator(spec.func, spec.distinct)
        self.func = spec.func
        self.distinct = spec.distinct
        numeric = static_type in (SQLType.INT, SQLType.FLOAT)
        text = static_type is SQLType.TEXT
        self.fast = not spec.distinct and (
            (self.func in ("sum", "avg", "count") and numeric)
            or (self.func in ("min", "max") and (numeric or text))
        )
        # Integer sums are associative, so bulk sum() is exact; float
        # sums must accumulate in row order to stay bit-identical with
        # the row engine (floating-point addition is order-sensitive).
        self.exact_int = static_type is SQLType.INT

    def add_count_star(self, count: int) -> None:
        self.inner.count += count

    def add_column(self, column: Sequence[Value]) -> None:
        inner = self.inner
        if self.fast and isinstance(column, TypedColumn):
            self._add_typed(column)
            return
        column = column_values(column)
        if not self.fast:
            add = inner.add
            for value in column:
                add(value)
            return
        present = [v for v in column if v is not None]
        if not present:
            return
        inner.count += len(present)
        if self.func in ("sum", "avg"):
            if self.exact_int:
                inner.total += sum(present)
                return
            total = inner.total
            float_seen = inner.float_seen
            for value in present:
                if not float_seen and type(value) is float:
                    float_seen = True
                total += value
            inner.total = total
            inner.float_seen = float_seen
        elif self.func == "min":
            low = min(present)
            if inner.best is None or low < inner.best:
                inner.best = low
        elif self.func == "max":
            high = max(present)
            if inner.best is None or high > inner.best:
                inner.best = high

    def _add_typed(self, column: TypedColumn) -> None:
        """Bulk accumulation over a packed column. Exactness rules: an
        integer SUM that might exceed int64 runs the unbounded Python
        sum (see :func:`int_sum_exact`); float SUMs accumulate
        sequentially in row order (floating-point addition is
        order-sensitive); NaN-containing min/max keep the object path."""
        inner = self.inner
        present_count = column.length - column.null_count
        if present_count == 0:
            return
        inner.count += present_count
        if self.func in ("sum", "avg"):
            if self.exact_int and column.kind == KIND_I64:
                inner.total += int_sum_exact(column)
                return
            total = inner.total
            float_seen = inner.float_seen
            for value in column.values():
                if value is None:
                    continue
                if not float_seen and type(value) is float:
                    float_seen = True
                total += value
            inner.total = total
            inner.float_seen = float_seen
        elif self.func == "min":
            low = typed_extreme(column, want_max=False)
            if low is not None and (inner.best is None or low < inner.best):
                inner.best = low
        elif self.func == "max":
            high = typed_extreme(column, want_max=True)
            if high is not None and (inner.best is None or high > inner.best):
                inner.best = high

    def result(self) -> Value:
        return self.inner.result()


class VAggSpec:
    """One aggregate of a vectorized Aggregate: spec + vector argument +
    the argument's statically inferred type (enables column fast paths)."""

    __slots__ = ("spec", "arg", "static_type")

    def __init__(
        self, spec: AggSpec, arg: Optional[VectorExpr], static_type: Optional[SQLType]
    ):
        self.spec = spec
        self.arg = arg
        self.static_type = static_type


class VHashAggregate(VectorOp):
    """Hash aggregation over batches.

    Grouped aggregation evaluates group keys and arguments column-wise,
    then updates per-group accumulators row-wise (matching the row
    engine's first-seen group order). The global (no GROUP BY) shape
    skips per-row work entirely and feeds whole columns to the
    accumulators.
    """

    __slots__ = ("child", "group_exprs", "agg_specs", "batch_size")

    def __init__(
        self,
        child: VectorOp,
        group_exprs: list[VectorExpr],
        agg_specs: list[VAggSpec],
        schema: Schema,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.child = child
        self.group_exprs = group_exprs
        self.agg_specs = agg_specs
        self.schema = schema
        self.batch_size = batch_size

    def batches(self, env: Env) -> Iterator[Batch]:
        if not self.group_exprs:
            yield from self._global(env)
            return
        yield from self._grouped(env)

    def _global(self, env: Env) -> Iterator[Batch]:
        accumulators = [
            _ColumnAccumulator(s.spec, s.static_type) for s in self.agg_specs
        ]
        for batch in self.child.batches(env):
            for spec, accumulator in zip(self.agg_specs, accumulators):
                if spec.arg is None:
                    accumulator.add_count_star(batch.length)
                else:
                    accumulator.add_column(spec.arg(batch, env))
        row = tuple(a.result() for a in accumulators)
        yield Batch.from_rows([row], len(self.schema))

    def _grouped(self, env: Env) -> Iterator[Batch]:
        star = count_star_sentinel()
        groups: dict[tuple, tuple[tuple[Value, ...], list[AggregateAccumulator]]] = {}
        specs = self.agg_specs
        for batch in self.child.batches(env):
            key_columns = [
                column_values(g(batch, env)) for g in self.group_exprs
            ]
            arg_columns = [
                column_values(s.arg(batch, env)) if s.arg is not None else None
                for s in specs
            ]
            for i, key_values in enumerate(zip(*key_columns)):
                key = tuple(value_identity(v) for v in key_values)
                state = groups.get(key)
                if state is None:
                    state = (
                        key_values,
                        [
                            AggregateAccumulator(s.spec.func, s.spec.distinct)
                            for s in specs
                        ],
                    )
                    groups[key] = state
                accumulators = state[1]
                for column, accumulator in zip(arg_columns, accumulators):
                    if column is None:
                        accumulator.add(star)
                    else:
                        accumulator.add(column[i])

        rows = [
            key_values + tuple(a.result() for a in accumulators)
            for key_values, accumulators in groups.values()
        ]
        yield from batches_from_rows(rows, len(self.schema), self.batch_size)


class VDistinct(VectorOp):
    __slots__ = ("child",)

    def __init__(self, child: VectorOp):
        self.child = child
        self.schema = child.schema

    def batches(self, env: Env) -> Iterator[Batch]:
        seen: set = set()
        for batch in self.child.batches(env):
            keep: list[int] = []
            for index, row in enumerate(batch.iter_rows()):
                key = row_identity(row)
                if key not in seen:
                    seen.add(key)
                    keep.append(index)
            if len(keep) == batch.length:
                yield batch
            elif keep:
                yield batch.take(keep)


class VSort(VectorOp):
    """Sort: materialize, evaluate each key column once, then apply the
    same least-to-most-significant stable index sorts as the row engine."""

    __slots__ = ("child", "keys", "batch_size")

    def __init__(
        self,
        child: VectorOp,
        keys: Sequence[tuple[VectorExpr, SortSpec]],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema
        self.batch_size = batch_size

    def batches(self, env: Env) -> Iterator[Batch]:
        collected = list(self.child.batches(env))
        total = sum(batch.length for batch in collected)
        if total == 0:
            return
        width = len(self.schema)
        if len(collected) == 1:
            big = collected[0]
        else:
            # Concatenate column-wise so packed columns stay packed —
            # the key evaluation below then runs on typed buffers.
            big = Batch(
                [
                    concat_any_columns([batch.columns[i] for batch in collected])
                    for i in range(width)
                ],
                total,
            )
        order = list(range(total))
        for vector_fn, spec in reversed(self.keys):
            column = vector_fn(big, env)
            if (
                isinstance(column, TypedColumn)
                and column.nulls is None
                and not (column.kind == KIND_F64 and f64_has_nan(column))
            ):
                # No NULLs, total order: the raw values are their own
                # sort keys (bools order False < True like 0 < 1).
                values = column.values()
                order.sort(key=values.__getitem__, reverse=spec.descending)
                continue
            values = column_values(column)
            nulls_first_ascending = spec.nulls_first != spec.descending
            sort_keys = [
                sort_key(value, nulls_first=nulls_first_ascending) for value in values
            ]
            order.sort(key=sort_keys.__getitem__, reverse=spec.descending)
        ordered = big.take(order)
        if total <= self.batch_size:
            yield ordered
            return
        for start in range(0, total, self.batch_size):
            yield ordered.slice(start, min(start + self.batch_size, total))


class VLimit(VectorOp):
    __slots__ = ("child", "limit", "offset")

    def __init__(
        self,
        child: VectorOp,
        limit: Optional[CompiledExpr],
        offset: Optional[CompiledExpr],
    ):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.schema = child.schema

    def batches(self, env: Env) -> Iterator[Batch]:
        limit = evaluate_limit_count(self.limit, env, "LIMIT")
        offset = evaluate_limit_count(self.offset, env, "OFFSET") or 0
        to_skip = offset
        remaining = limit
        if remaining is not None and remaining <= 0:
            return
        for batch in self.child.batches(env):
            if to_skip >= batch.length:
                to_skip -= batch.length
                continue
            start = to_skip
            to_skip = 0
            stop = batch.length
            if remaining is not None:
                stop = min(stop, start + remaining)
            piece = batch if (start == 0 and stop == batch.length) else batch.slice(start, stop)
            if piece.length:
                yield piece
                if remaining is not None:
                    remaining -= piece.length
                    if remaining <= 0:
                        return


