"""Column-at-a-time expression compilation for the vectorized executor.

A vector expression is compiled into a callable ``(batch, env) ->
column`` that produces one output value per batch row — either a packed
:class:`~repro.executor.columns.TypedColumn` or a plain list. The
compiler mirrors :class:`~repro.executor.expr_eval.ExprCompiler`
semantics exactly — it reuses the same scalar kernels
(:func:`~repro.datatypes.eq`, :func:`~repro.datatypes.arith`, the
function table, three-valued logic) — but applies them over whole
columns, and dispatches on the *runtime* column representation: when an
operand arrives as a numpy-backed typed buffer the hot kernels
(comparison-vs-constant filters, numeric arithmetic, AND/OR masks,
IS NULL) run as single bulk array operations with exactness guards (see
:mod:`~repro.executor.columns`); when it arrives as an object column —
because the static type had no packed form, or a value escaped the
typed domain — the same expression runs the per-element object kernel.
Both paths are bit-identical; the typed path is just faster.

Expressions whose row-engine evaluation is *lazy* (CASE branches, IN
list items, sublinks) or that reference enclosing rows are not
vectorized: evaluating all branches eagerly could raise errors the row
engine never would. Those subtrees fall back to the row compiler and are
evaluated tuple-at-a-time within the batch — this is also what runs
correlated sublinks through the row engine per-subtree.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..algebra import expressions as ax
from ..catalog.schema import Schema
from ..datatypes import (
    SQLType,
    Value,
    arith,
    cast_value,
    not_distinct,
    negate,
    tvl_and,
    tvl_not,
    tvl_or,
)
from ..errors import ExecutionError, PlanError
from .batch import Batch
from .columns import (
    AnyColumn,
    TypedColumn,
    column_values,
    vec_and,
    vec_arith,
    vec_cmp,
    vec_cmp_const,
    vec_isnull,
    vec_neg,
    vec_not,
    vec_or,
)
from .expr_eval import (
    _COMPARATORS,
    _FUNCTIONS,
    _FUNCTION_ARITY,
    _as_bool,
    _like_to_regex,
    Env,
    ExprCompiler,
)

# A compiled vector expression: (batch, env) -> one column per call.
VectorExpr = Callable[[Batch, Env], AnyColumn]

# Static types for which the native Python operator agrees with SQL
# comparison/arithmetic semantics on non-NULL values.
_NUMERIC = (SQLType.INT, SQLType.FLOAT)

# Sentinel distinguishing "no constant operand" from a None constant.
_NO_CONST = object()


def _scalar_const(expr: ax.Expr):
    """The non-NULL numeric constant of *expr*, or ``_NO_CONST`` —
    constants feed the bulk kernels as broadcast scalars."""
    if (
        isinstance(expr, ax.Const)
        and expr.value is not None
        and not isinstance(expr.value, bool)
        and isinstance(expr.value, (int, float))
    ):
        return expr.value
    return _NO_CONST


class VectorExprCompiler:
    """Compiles resolved expressions into column-level evaluators.

    ``row_compiler`` must be an :class:`ExprCompiler` over the *same*
    schema, outer scopes and parameter context; it serves the row-wise
    fallback path (lazy constructs, sublinks) so both evaluation modes
    share one set of subplan/parameter mechanics.
    """

    def __init__(self, schema: Schema, row_compiler: ExprCompiler):
        self.schema = schema
        self.positions = {a.name.lower(): i for i, a in enumerate(schema)}
        self.types = {a.name.lower(): a.type for a in schema}
        self.row_compiler = row_compiler

    # ------------------------------------------------------------------
    def compile(self, expr: ax.Expr) -> VectorExpr:
        if isinstance(expr, ax.Column):
            try:
                position = self.positions[expr.name.lower()]
            except KeyError:
                raise PlanError(
                    f"column {expr.name!r} not in schema ({', '.join(self.schema.names)})"
                ) from None
            return lambda batch, env, p=position: batch.columns[p]

        if isinstance(expr, ax.Const):
            value = expr.value
            return lambda batch, env: [value] * batch.length

        if isinstance(expr, ax.Param):
            context = self.row_compiler.params
            index = expr.index
            label = f":{expr.name}" if expr.name is not None else f"${expr.index + 1}"

            def read_param(batch: Batch, env: Env) -> AnyColumn:
                if index >= len(context.values):
                    raise ExecutionError(
                        f"parameter {label} has no bound value "
                        f"({len(context.values)} bound)"
                    )
                return [context.values[index]] * batch.length

            return read_param

        if isinstance(expr, ax.BinOp):
            return self._compile_binop(expr)

        if isinstance(expr, ax.UnOp):
            operand = self.compile(expr.operand)
            if expr.op == "not":

                def run_not(batch: Batch, env: Env) -> AnyColumn:
                    column = operand(batch, env)
                    bulk = vec_not(column)
                    if bulk is not None:
                        return bulk
                    return [tvl_not(_as_bool(v)) for v in column_values(column)]

                return run_not
            if expr.op == "-":

                def run_neg(batch: Batch, env: Env) -> AnyColumn:
                    column = operand(batch, env)
                    bulk = vec_neg(column)
                    if bulk is not None:
                        return bulk
                    return [negate(v) for v in column_values(column)]

                return run_neg
            raise PlanError(f"unknown unary operator {expr.op!r}")

        if isinstance(expr, ax.IsNullTest):
            operand = self.compile(expr.operand)
            negated = expr.negated

            def run_isnull(batch: Batch, env: Env) -> AnyColumn:
                column = operand(batch, env)
                bulk = vec_isnull(column, negated)
                if bulk is not None:
                    return bulk
                values = column_values(column)
                if negated:
                    return [v is not None for v in values]
                return [v is None for v in values]

            return run_isnull

        if isinstance(expr, ax.DistinctTest):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if expr.negated:  # IS NOT DISTINCT FROM
                return lambda batch, env: [
                    not_distinct(a, b)
                    for a, b in zip(
                        column_values(left(batch, env)),
                        column_values(right(batch, env)),
                    )
                ]
            return lambda batch, env: [
                not not_distinct(a, b)
                for a, b in zip(
                    column_values(left(batch, env)),
                    column_values(right(batch, env)),
                )
            ]

        if isinstance(expr, ax.FuncExpr):
            return self._compile_func(expr)

        if isinstance(expr, ax.CastExpr):
            operand = self.compile(expr.operand)
            target = expr.target
            return lambda batch, env: [
                cast_value(v, target) for v in column_values(operand(batch, env))
            ]

        if isinstance(expr, ax.AggExpr):
            raise PlanError("aggregate expression outside an Aggregate operator")

        # Lazily evaluated constructs (CASE, IN lists, sublinks) and
        # correlated references: evaluate tuple-at-a-time through the
        # row compiler so short-circuit and subplan semantics match the
        # row engine exactly.
        return self._fallback(expr)

    # ------------------------------------------------------------------
    def _fallback(self, expr: ax.Expr) -> VectorExpr:
        scalar = self.row_compiler.compile(expr)

        def run(batch: Batch, env: Env) -> AnyColumn:
            return [scalar(row, env) for row in batch.iter_rows()]

        return run

    def _static_type(self, expr: ax.Expr) -> Optional[SQLType]:
        """Static type when cheaply and reliably known (column
        references, typed constants, casts, numeric arithmetic over
        those); None otherwise."""
        if isinstance(expr, ax.Column):
            return self.types.get(expr.name.lower())
        if isinstance(expr, ax.Const):
            return expr.type
        if isinstance(expr, ax.CastExpr):
            return expr.target
        if isinstance(expr, ax.UnOp) and expr.op == "-":
            operand = self._static_type(expr.operand)
            return operand if operand in _NUMERIC else None
        if isinstance(expr, ax.BinOp) and expr.op in ("+", "-", "*", "/", "%"):
            left = self._static_type(expr.left)
            right = self._static_type(expr.right)
            if left in _NUMERIC and right in _NUMERIC:
                if left is SQLType.INT and right is SQLType.INT:
                    return SQLType.INT
                return SQLType.FLOAT
        return None

    def _static_boolean(self, expr: ax.Expr) -> bool:
        """Whether *expr* can only evaluate to True/False/None — lets
        AND/OR skip the per-value boolean type check."""
        if isinstance(expr, ax.BinOp):
            if expr.op in _COMPARATORS or expr.op in ("and", "or", "like", "ilike"):
                return True
            return False
        if isinstance(expr, ax.UnOp) and expr.op == "not":
            return self._static_boolean(expr.operand)
        if isinstance(expr, (ax.IsNullTest, ax.DistinctTest)):
            return True
        if isinstance(expr, ax.Const):
            return expr.type is SQLType.BOOL
        return False

    def _native_ok(self, left: ax.Expr, right: ax.Expr) -> bool:
        """Whether Python's operators match SQL comparison/arithmetic for
        these operands: both statically numeric, or both text."""
        lt, rt = self._static_type(left), self._static_type(right)
        if lt is None or rt is None:
            return False
        if lt in _NUMERIC and rt in _NUMERIC:
            return True
        return lt is SQLType.TEXT and rt is SQLType.TEXT

    # ------------------------------------------------------------------
    def _compile_binop(self, expr: ax.BinOp) -> VectorExpr:
        op = expr.op
        if op in ("and", "or"):
            left, right = self.compile(expr.left), self.compile(expr.right)
            bulk = vec_and if op == "and" else vec_or
            if self._static_boolean(expr.left) and self._static_boolean(expr.right):
                if op == "and":
                    # Inline 3VL kernel: false dominates unknown.
                    def inline(a_vals, b_vals):
                        return [
                            False
                            if (a is False or b is False)
                            else (None if (a is None or b is None) else True)
                            for a, b in zip(a_vals, b_vals)
                        ]

                else:
                    # Inline 3VL kernel: true dominates unknown.
                    def inline(a_vals, b_vals):
                        return [
                            True
                            if (a is True or b is True)
                            else (None if (a is None or b is None) else False)
                            for a, b in zip(a_vals, b_vals)
                        ]

            else:
                checked = tvl_and if op == "and" else tvl_or

                def inline(a_vals, b_vals, _k=checked):
                    return [
                        _k(_as_bool(a), _as_bool(b))
                        for a, b in zip(a_vals, b_vals)
                    ]

            def run_logic(batch: Batch, env: Env) -> AnyColumn:
                a = left(batch, env)
                b = right(batch, env)
                # A packed boolean column guarantees bool/None contents,
                # so the bulk kernel is valid regardless of static types.
                out = bulk(a, b)
                if out is not None:
                    return out
                return inline(column_values(a), column_values(b))

            return run_logic

        if op in _COMPARATORS:
            return self._compile_comparison(expr)

        if op in ("+", "-", "*", "/", "%", "||"):
            return self._compile_arith(expr)

        if op in ("like", "ilike"):
            return self._compile_like(expr)

        raise PlanError(f"unknown binary operator {op!r}")

    def _compile_comparison(self, expr: ax.BinOp) -> VectorExpr:
        comparator = _COMPARATORS[expr.op]
        native = self._native_ok(expr.left, expr.right)
        op = expr.op

        # column <op> constant — the hot filter shape.
        if native and isinstance(expr.right, ax.Const) and expr.right.value is not None:
            operand = self.compile(expr.left)
            constant = expr.right.value
            table = {
                "=": lambda col: [None if v is None else v == constant for v in col],
                "<>": lambda col: [None if v is None else v != constant for v in col],
                "<": lambda col: [None if v is None else v < constant for v in col],
                "<=": lambda col: [None if v is None else v <= constant for v in col],
                ">": lambda col: [None if v is None else v > constant for v in col],
                ">=": lambda col: [None if v is None else v >= constant for v in col],
            }
            kernel = table[op]

            def run_const(batch: Batch, env: Env) -> AnyColumn:
                column = operand(batch, env)
                bulk = vec_cmp_const(column, op, constant)
                if bulk is not None:
                    return bulk
                return kernel(column_values(column))

            return run_const

        left, right = self.compile(expr.left), self.compile(expr.right)
        if native:
            table2 = {
                "=": lambda a, b: None if a is None or b is None else a == b,
                "<>": lambda a, b: None if a is None or b is None else a != b,
                "<": lambda a, b: None if a is None or b is None else a < b,
                "<=": lambda a, b: None if a is None or b is None else a <= b,
                ">": lambda a, b: None if a is None or b is None else a > b,
                ">=": lambda a, b: None if a is None or b is None else a >= b,
            }
            kernel2 = table2[op]

            def run_native(batch: Batch, env: Env) -> AnyColumn:
                a = left(batch, env)
                b = right(batch, env)
                bulk = vec_cmp(a, b, op)
                if bulk is not None:
                    return bulk
                return [
                    kernel2(x, y)
                    for x, y in zip(column_values(a), column_values(b))
                ]

            return run_native
        return lambda batch, env: [
            comparator(a, b)
            for a, b in zip(
                column_values(left(batch, env)), column_values(right(batch, env))
            )
        ]

    def _compile_arith(self, expr: ax.BinOp) -> VectorExpr:
        op = expr.op
        left, right = self.compile(expr.left), self.compile(expr.right)
        lt, rt = self._static_type(expr.left), self._static_type(expr.right)
        numeric = lt in _NUMERIC and rt in _NUMERIC
        if op in ("+", "-", "*", "/", "%") and numeric:
            # Constants broadcast into the bulk kernels as scalars.
            left_const = _scalar_const(expr.left)
            right_const = _scalar_const(expr.right)
            if op == "+":
                scalar_kernel = lambda a, b: None if a is None or b is None else a + b
            elif op == "-":
                scalar_kernel = lambda a, b: None if a is None or b is None else a - b
            elif op == "*":
                scalar_kernel = lambda a, b: None if a is None or b is None else a * b
            else:
                # "/" and "%" keep the exact kernel outside the bulk
                # path: SQL integer-division and division-by-zero
                # semantics differ from Python's.
                scalar_kernel = lambda a, b, _op=op: arith(_op, a, b)

            def run_arith(batch: Batch, env: Env) -> AnyColumn:
                a = left(batch, env) if left_const is _NO_CONST else left_const
                b = right(batch, env) if right_const is _NO_CONST else right_const
                bulk = vec_arith(op, a, b, batch.length)
                if bulk is not None:
                    return bulk
                a_vals = (
                    column_values(a)
                    if left_const is _NO_CONST
                    else [left_const] * batch.length
                )
                b_vals = (
                    column_values(b)
                    if right_const is _NO_CONST
                    else [right_const] * batch.length
                )
                return [scalar_kernel(x, y) for x, y in zip(a_vals, b_vals)]

            return run_arith
        return lambda batch, env: [
            arith(op, a, b)
            for a, b in zip(
                column_values(left(batch, env)), column_values(right(batch, env))
            )
        ]

    def _compile_like(self, expr: ax.BinOp) -> VectorExpr:
        case_insensitive = expr.op == "ilike"
        operand = self.compile(expr.left)

        if isinstance(expr.right, ax.Const) and isinstance(expr.right.value, str):
            pattern = expr.right.value
            regex = _like_to_regex(
                pattern.lower() if case_insensitive else pattern
            )

            def run_const(batch: Batch, env: Env) -> list[Value]:
                out: list[Value] = []
                for value in column_values(operand(batch, env)):
                    if value is None:
                        out.append(None)
                        continue
                    if not isinstance(value, str):
                        raise ExecutionError("LIKE requires text operands")
                    target = value.lower() if case_insensitive else value
                    out.append(regex.match(target) is not None)
                return out

            return run_const

        pattern_fn = self.compile(expr.right)

        def run(batch: Batch, env: Env) -> list[Value]:
            out: list[Value] = []
            for value, pattern in zip(
                column_values(operand(batch, env)),
                column_values(pattern_fn(batch, env)),
            ):
                if value is None or pattern is None:
                    out.append(None)
                    continue
                if not isinstance(value, str) or not isinstance(pattern, str):
                    raise ExecutionError("LIKE requires text operands")
                regex = _like_to_regex(pattern.lower() if case_insensitive else pattern)
                target = value.lower() if case_insensitive else value
                out.append(regex.match(target) is not None)
            return out

        return run

    # ------------------------------------------------------------------
    def _compile_func(self, expr: ax.FuncExpr) -> VectorExpr:
        args = [self.compile(a) for a in expr.args]
        name = expr.name
        try:
            impl = _FUNCTIONS[name]
        except KeyError:
            raise PlanError(f"unknown function {name!r}") from None
        expected = _FUNCTION_ARITY.get(name)
        if expected is not None and len(args) not in expected:
            raise PlanError(f"function {name} called with {len(args)} arguments")

        if not args:
            return lambda batch, env: [impl([]) for _ in range(batch.length)]
        if len(args) == 1:
            arg = args[0]
            return lambda batch, env: [
                impl([v]) for v in column_values(arg(batch, env))
            ]

        def run(batch: Batch, env: Env) -> list[Value]:
            columns = [column_values(a(batch, env)) for a in args]
            return [impl(list(values)) for values in zip(*columns)]

        return run
