"""Expression compilation and evaluation.

Expressions are compiled once per plan into Python closures over column
positions, then evaluated per row. Correlated sublinks receive an
*environment*: a chain of (name -> position, row) frames, innermost
first, that :class:`~repro.algebra.expressions.OuterColumn` references
index into. Uncorrelated subplans are executed once and cached.
"""

from __future__ import annotations

import re
from typing import Callable, Optional, Sequence

from ..algebra import expressions as ax
from ..catalog.schema import Schema
from ..datatypes import (
    SQLType,
    Value,
    arith,
    cast_value,
    compare,
    eq,
    ge,
    gt,
    is_true,
    le,
    lt,
    ne,
    negate,
    not_distinct,
    tvl_and,
    tvl_not,
    tvl_or,
    type_of_value,
    value_identity,
)
from ..errors import ExecutionError, PlanError

Row = tuple[Value, ...]
# Environment frame: name->position mapping plus the current row.
Frame = tuple[dict[str, int], Row]
Env = tuple[Frame, ...]

# A compiled expression: (row, env) -> value.
CompiledExpr = Callable[[Row, Env], Value]


class ParamContext:
    """Per-execution binding environment shared by every compiled
    expression of one plan.

    Compiled :class:`~repro.algebra.expressions.Param` references read
    their value from here at evaluation time, which is what lets a
    prepared physical plan be re-executed with fresh parameter values and
    no recompilation. ``epoch`` increments on every :meth:`bind`; the
    uncorrelated-subquery result cache is keyed on it so cached rows never
    leak across executions (they could be stale after DML, or wrong for a
    subquery that mentions a parameter).
    """

    __slots__ = ("values", "epoch")

    def __init__(self) -> None:
        self.values: tuple[Value, ...] = ()
        self.epoch = 0

    def bind(self, values: Sequence[Value] = ()) -> None:
        """Install the values for one execution and start a new epoch."""
        self.values = tuple(values)
        self.epoch += 1

_COMPARATORS: dict[str, Callable[[Value, Value], Optional[bool]]] = {
    "=": eq,
    "<>": ne,
    "<": lt,
    "<=": le,
    ">": gt,
    ">=": ge,
}


def _schema_map(schema: Schema) -> dict[str, int]:
    return {attribute.name.lower(): i for i, attribute in enumerate(schema)}


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("".join(out) + r"\Z", re.DOTALL)


class ExprCompiler:
    """Compiles resolved expressions against a schema.

    ``plan_compiler`` turns an algebra subplan into an executable
    callable ``run(env) -> list[Row]`` — injected by the planner so this
    module stays independent of physical operator classes.
    """

    def __init__(
        self,
        schema: Schema,
        outer_schemas: Sequence[Schema] = (),
        plan_compiler: Optional[Callable[..., Callable[[Env], list[Row]]]] = None,
        params: Optional[ParamContext] = None,
    ):
        self.schema = schema
        self.positions = _schema_map(schema)
        self.outer_schemas = tuple(outer_schemas)
        self.plan_compiler = plan_compiler
        self.params = params if params is not None else ParamContext()

    # ------------------------------------------------------------------
    def compile(self, expr: ax.Expr) -> CompiledExpr:
        if isinstance(expr, ax.Column):
            try:
                position = self.positions[expr.name.lower()]
            except KeyError:
                raise PlanError(
                    f"column {expr.name!r} not in schema ({', '.join(self.schema.names)})"
                ) from None
            return lambda row, env, p=position: row[p]

        if isinstance(expr, ax.OuterColumn):
            level = expr.level
            key = expr.name.lower()
            def outer_ref(row: Row, env: Env, level=level, key=key) -> Value:
                if level > len(env):
                    raise ExecutionError(
                        f"correlated reference {expr.name!r} has no enclosing row"
                    )
                frame_positions, frame_row = env[level - 1]
                try:
                    return frame_row[frame_positions[key]]
                except KeyError:
                    raise ExecutionError(
                        f"correlated reference {expr.name!r} not found in outer scope"
                    ) from None
            return outer_ref

        if isinstance(expr, ax.Const):
            value = expr.value
            return lambda row, env: value

        if isinstance(expr, ax.Param):
            context = self.params
            index = expr.index
            label = f":{expr.name}" if expr.name is not None else f"${expr.index + 1}"

            def read_param(row: Row, env: Env) -> Value:
                if index >= len(context.values):
                    raise ExecutionError(
                        f"parameter {label} has no bound value "
                        f"({len(context.values)} bound)"
                    )
                return context.values[index]

            return read_param

        if isinstance(expr, ax.BinOp):
            return self._compile_binop(expr)

        if isinstance(expr, ax.UnOp):
            operand = self.compile(expr.operand)
            if expr.op == "not":
                return lambda row, env: tvl_not(_as_bool(operand(row, env)))
            if expr.op == "-":
                return lambda row, env: negate(operand(row, env))
            raise PlanError(f"unknown unary operator {expr.op!r}")

        if isinstance(expr, ax.IsNullTest):
            operand = self.compile(expr.operand)
            if expr.negated:
                return lambda row, env: operand(row, env) is not None
            return lambda row, env: operand(row, env) is None

        if isinstance(expr, ax.DistinctTest):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if expr.negated:  # IS NOT DISTINCT FROM (null-safe equality)
                return lambda row, env: not_distinct(left(row, env), right(row, env))
            return lambda row, env: not not_distinct(left(row, env), right(row, env))

        if isinstance(expr, ax.CaseExpr):
            return self._compile_case(expr)

        if isinstance(expr, ax.FuncExpr):
            return self._compile_func(expr)

        if isinstance(expr, ax.CastExpr):
            operand = self.compile(expr.operand)
            target = expr.target
            return lambda row, env: cast_value(operand(row, env), target)

        if isinstance(expr, ax.InListExpr):
            return self._compile_in_list(expr)

        if isinstance(expr, ax.SubqueryExpr):
            return self._compile_subquery(expr)

        if isinstance(expr, ax.AggExpr):
            raise PlanError("aggregate expression outside an Aggregate operator")

        raise PlanError(f"cannot compile expression {type(expr).__name__}")

    # ------------------------------------------------------------------
    def _compile_binop(self, expr: ax.BinOp) -> CompiledExpr:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        op = expr.op

        if op == "and":
            return lambda row, env: tvl_and(_as_bool(left(row, env)), _as_bool(right(row, env)))
        if op == "or":
            return lambda row, env: tvl_or(_as_bool(left(row, env)), _as_bool(right(row, env)))
        if op in _COMPARATORS:
            comparator = _COMPARATORS[op]
            return lambda row, env: comparator(left(row, env), right(row, env))
        if op in ("+", "-", "*", "/", "%", "||"):
            return lambda row, env: arith(op, left(row, env), right(row, env))
        if op in ("like", "ilike"):
            case_insensitive = op == "ilike"

            def run_like(row: Row, env: Env) -> Optional[bool]:
                value = left(row, env)
                pattern = right(row, env)
                if value is None or pattern is None:
                    return None
                if not isinstance(value, str) or not isinstance(pattern, str):
                    raise ExecutionError("LIKE requires text operands")
                regex = _like_to_regex(pattern.lower() if case_insensitive else pattern)
                target = value.lower() if case_insensitive else value
                return regex.match(target) is not None

            return run_like
        raise PlanError(f"unknown binary operator {op!r}")

    def _compile_case(self, expr: ax.CaseExpr) -> CompiledExpr:
        whens = [(self.compile(c), self.compile(r)) for c, r in expr.whens]
        else_fn = self.compile(expr.else_result) if expr.else_result is not None else None
        if expr.operand is None:

            def searched(row: Row, env: Env) -> Value:
                for condition, result in whens:
                    if is_true(_as_bool(condition(row, env))):
                        return result(row, env)
                return else_fn(row, env) if else_fn is not None else None

            return searched
        operand_fn = self.compile(expr.operand)

        def simple(row: Row, env: Env) -> Value:
            subject = operand_fn(row, env)
            for condition, result in whens:
                if is_true(eq(subject, condition(row, env))):
                    return result(row, env)
            return else_fn(row, env) if else_fn is not None else None

        return simple

    def _compile_in_list(self, expr: ax.InListExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)
        items = [self.compile(i) for i in expr.items]
        negated = expr.negated

        def run(row: Row, env: Env) -> Optional[bool]:
            subject = operand(row, env)
            saw_null = False
            for item in items:
                result = eq(subject, item(row, env))
                if result is True:
                    return False if negated else True
                if result is None:
                    saw_null = True
            if saw_null:
                return None
            return True if negated else False

        return run

    def _compile_subquery(self, expr: ax.SubqueryExpr) -> CompiledExpr:
        if self.plan_compiler is None:
            raise PlanError("subquery in a context without a plan compiler")
        run_plan = self.plan_compiler(expr.plan, (self.schema, *self.outer_schemas))
        correlated = ax.plan_is_correlated(expr.plan)
        my_positions = self.positions
        context = self.params
        # Uncorrelated subplans run once *per execution epoch*: re-binding
        # parameters (or any fresh execution of a cached plan) starts a
        # new epoch, so stale rows are never reused.
        cache: dict[str, object] = {}

        def rows_for(row: Row, env: Env) -> list[Row]:
            if not correlated and cache.get("epoch") == context.epoch:
                return cache["rows"]  # type: ignore[return-value]
            inner_env: Env = ((my_positions, row), *env)
            result = run_plan(inner_env)
            if not correlated:
                cache["rows"] = result
                cache["epoch"] = context.epoch
            return result

        kind = expr.kind
        if kind == "scalar":

            def scalar(row: Row, env: Env) -> Value:
                rows = rows_for(row, env)
                if not rows:
                    return None
                if len(rows) > 1:
                    raise ExecutionError("scalar subquery returned more than one row")
                return rows[0][0]

            return scalar

        if kind == "exists":
            negated = expr.negated

            def exists(row: Row, env: Env) -> bool:
                found = bool(rows_for(row, env))
                return (not found) if negated else found

            return exists

        if kind == "in":
            assert expr.operand is not None
            operand = self.compile(expr.operand)
            negated = expr.negated

            def in_sub(row: Row, env: Env) -> Optional[bool]:
                subject = operand(row, env)
                saw_null = False
                for inner in rows_for(row, env):
                    result = eq(subject, inner[0])
                    if result is True:
                        return False if negated else True
                    if result is None:
                        saw_null = True
                if saw_null:
                    return None
                return True if negated else False

            return in_sub

        if kind == "quant":
            assert expr.operand is not None and expr.op is not None
            operand = self.compile(expr.operand)
            comparator = _COMPARATORS[expr.op]
            want_all = expr.quantifier == "all"

            def quant(row: Row, env: Env) -> Optional[bool]:
                subject = operand(row, env)
                saw_null = False
                matched = False
                for inner in rows_for(row, env):
                    result = comparator(subject, inner[0])
                    if result is None:
                        saw_null = True
                    elif result:
                        matched = True
                        if not want_all:
                            return True
                    elif want_all:
                        return False
                if want_all:
                    return None if saw_null else True
                return None if saw_null else matched

            return quant

        raise PlanError(f"unknown sublink kind {kind!r}")

    # ------------------------------------------------------------------
    def _compile_func(self, expr: ax.FuncExpr) -> CompiledExpr:
        args = [self.compile(a) for a in expr.args]
        name = expr.name
        try:
            impl = _FUNCTIONS[name]
        except KeyError:
            raise PlanError(f"unknown function {name!r}") from None
        expected = _FUNCTION_ARITY.get(name)
        if expected is not None and len(args) not in expected:
            raise PlanError(f"function {name} called with {len(args)} arguments")

        def run(row: Row, env: Env) -> Value:
            return impl([a(row, env) for a in args])

        return run


def _as_bool(value: Value) -> Optional[bool]:
    if value is None or isinstance(value, bool):
        return value
    raise ExecutionError(f"expected a boolean, got {type_of_value(value)}")


# ---------------------------------------------------------------------------
# Scalar function implementations (NULL-propagating unless noted)
# ---------------------------------------------------------------------------

def _strict(fn: Callable[..., Value]) -> Callable[[list[Value]], Value]:
    def wrapped(args: list[Value]) -> Value:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapped


def _num(value: Value, func: str) -> float | int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"{func}() requires a numeric argument")
    return value


def _text(value: Value, func: str) -> str:
    if not isinstance(value, str):
        raise ExecutionError(f"{func}() requires a text argument")
    return value


def _coalesce(args: list[Value]) -> Value:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(args: list[Value]) -> Value:
    if len(args) != 2:
        raise ExecutionError("nullif() takes two arguments")
    return None if is_true(eq(args[0], args[1])) else args[0]


def _greatest(args: list[Value]) -> Value:
    present = [a for a in args if a is not None]
    if not present:
        return None
    best = present[0]
    for candidate in present[1:]:
        if compare(candidate, best) == 1:
            best = candidate
    return best


def _least(args: list[Value]) -> Value:
    present = [a for a in args if a is not None]
    if not present:
        return None
    best = present[0]
    for candidate in present[1:]:
        if compare(candidate, best) == -1:
            best = candidate
    return best


def _concat(args: list[Value]) -> Value:
    # PostgreSQL concat() skips NULLs.
    return "".join(cast_value(a, SQLType.TEXT) for a in args if a is not None)  # type: ignore[misc]


def _substring(args: list[Value]) -> Value:
    if any(a is None for a in args):
        return None
    text = _text(args[0], "substring")
    start = int(_num(args[1], "substring"))
    # SQL substring is 1-based; handle start < 1 like PostgreSQL.
    if len(args) == 3:
        length = int(_num(args[2], "substring"))
        if length < 0:
            raise ExecutionError("negative substring length not allowed")
        end = start + length
        begin = max(start, 1)
        return text[begin - 1 : max(end - 1, 0)]
    return text[max(start, 1) - 1 :]


def _round(args: list[Value]) -> Value:
    if args[0] is None:
        return None
    value = _num(args[0], "round")
    digits = 0
    if len(args) == 2:
        if args[1] is None:
            return None
        digits = int(_num(args[1], "round"))
    result = round(float(value) + 0.0, digits)
    return result if digits > 0 else (int(result) if float(result).is_integer() else result)


_FUNCTIONS: dict[str, Callable[[list[Value]], Value]] = {
    "abs": _strict(lambda v: abs(_num(v, "abs"))),
    "round": _round,
    "floor": _strict(lambda v: int(__import__("math").floor(_num(v, "floor")))),
    "ceil": _strict(lambda v: int(__import__("math").ceil(_num(v, "ceil")))),
    "sqrt": _strict(lambda v: __import__("math").sqrt(_num(v, "sqrt"))),
    "power": _strict(lambda a, b: float(_num(a, "power")) ** float(_num(b, "power"))),
    "mod": _strict(lambda a, b: arith("%", a, b)),
    "upper": _strict(lambda v: _text(v, "upper").upper()),
    "lower": _strict(lambda v: _text(v, "lower").lower()),
    "length": _strict(lambda v: len(_text(v, "length"))),
    "char_length": _strict(lambda v: len(_text(v, "char_length"))),
    "substring": _substring,
    "substr": _substring,
    "trim": _strict(lambda v: _text(v, "trim").strip()),
    "ltrim": _strict(lambda v: _text(v, "ltrim").lstrip()),
    "rtrim": _strict(lambda v: _text(v, "rtrim").rstrip()),
    "replace": _strict(
        lambda s, old, new: _text(s, "replace").replace(_text(old, "replace"), _text(new, "replace"))
    ),
    "concat": _concat,
    "coalesce": _coalesce,
    "nullif": _nullif,
    "greatest": _greatest,
    "least": _least,
}

_FUNCTION_ARITY: dict[str, tuple[int, ...]] = {
    "abs": (1,),
    "round": (1, 2),
    "floor": (1,),
    "ceil": (1,),
    "sqrt": (1,),
    "power": (2,),
    "mod": (2,),
    "upper": (1,),
    "lower": (1,),
    "length": (1,),
    "char_length": (1,),
    "substring": (2, 3),
    "substr": (2, 3),
    "trim": (1,),
    "ltrim": (1,),
    "rtrim": (1,),
    "replace": (3,),
    "nullif": (2,),
}


class AggregateAccumulator:
    """Accumulator for one aggregate over one group."""

    __slots__ = ("func", "distinct", "count", "total", "best", "seen", "float_seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total: float | int = 0
        self.best: Value = None
        self.seen: set = set()
        self.float_seen = False

    def add(self, value: Value) -> None:
        if self.func == "count" and value is _COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            key = value_identity(value)
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1
        if self.func in ("sum", "avg"):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ExecutionError(f"{self.func}() requires numeric input")
            if isinstance(value, float):
                self.float_seen = True
            self.total += value
        elif self.func in ("min", "max"):
            if self.best is None:
                self.best = value
            else:
                relation = compare(value, self.best)
                if relation is not None and (
                    (self.func == "min" and relation < 0) or (self.func == "max" and relation > 0)
                ):
                    self.best = value

    def result(self) -> Value:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            if self.count == 0:
                return None
            return float(self.total) if self.float_seen else self.total
        if self.func == "avg":
            if self.count == 0:
                return None
            return self.total / self.count
        if self.func in ("min", "max"):
            return self.best
        raise ExecutionError(f"unknown aggregate {self.func!r}")


class _CountStar:
    """Sentinel handed to count(*) accumulators for every input row."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<count(*)>"


_COUNT_STAR = _CountStar()


def count_star_sentinel() -> "_CountStar":
    return _COUNT_STAR
