"""Physical volcano-style operators.

Each operator exposes ``rows(env)`` yielding tuples; *env* is the chain
of enclosing-row frames used by correlated sublinks (threaded down to
every compiled expression). The planner chooses between hash-based and
nested-loop implementations (see :mod:`repro.planner.planner`), the same
role PostgreSQL's planner plays below the Perm rewriter in Figure 3 of
the paper.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from ..catalog.schema import Schema
from ..datatypes import Value, is_true, row_identity, sort_key, value_identity
from ..errors import ExecutionError
from ..storage.table import HeapTable
from .expr_eval import AggregateAccumulator, CompiledExpr, Env, Row, count_star_sentinel


class PhysicalOp:
    """Base class for physical operators."""

    __slots__ = ("schema",)

    schema: Schema

    def rows(self, env: Env) -> Iterator[Row]:
        raise NotImplementedError


class PScan(PhysicalOp):
    """Sequential scan over a heap table."""

    __slots__ = ("table",)

    def __init__(self, table: HeapTable, schema: Schema):
        self.table = table
        self.schema = schema

    def rows(self, env: Env) -> Iterator[Row]:
        return iter(self.table.rows)


class PValues(PhysicalOp):
    """Materialized row source (used for SingleRow and cached results)."""

    __slots__ = ("data",)

    def __init__(self, data: list[Row], schema: Schema):
        self.data = data
        self.schema = schema

    def rows(self, env: Env) -> Iterator[Row]:
        return iter(self.data)


class PProject(PhysicalOp):
    __slots__ = ("child", "items")

    def __init__(self, child: PhysicalOp, items: list[CompiledExpr], schema: Schema):
        self.child = child
        self.items = items
        self.schema = schema

    def rows(self, env: Env) -> Iterator[Row]:
        items = self.items
        for row in self.child.rows(env):
            yield tuple(item(row, env) for item in items)


class PFilter(PhysicalOp):
    __slots__ = ("child", "predicate")

    def __init__(self, child: PhysicalOp, predicate: CompiledExpr):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def rows(self, env: Env) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.rows(env):
            if is_true(predicate(row, env)):
                yield row


class PNestedLoopJoin(PhysicalOp):
    """Nested-loop join supporting every join kind and arbitrary
    conditions (evaluated over the concatenated row)."""

    __slots__ = ("left", "right", "kind", "condition", "left_width", "right_width")

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        kind: str,
        condition: Optional[CompiledExpr],
        schema: Schema,
    ):
        self.left = left
        self.right = right
        self.kind = kind
        self.condition = condition
        self.left_width = len(left.schema)
        self.right_width = len(right.schema)
        self.schema = schema

    def rows(self, env: Env) -> Iterator[Row]:
        condition = self.condition
        right_rows = list(self.right.rows(env))
        left_pad = (None,) * self.left_width
        right_pad = (None,) * self.right_width
        right_matched = [False] * len(right_rows) if self.kind in ("right", "full") else None

        for left_row in self.left.rows(env):
            matched = False
            for index, right_row in enumerate(right_rows):
                combined = left_row + right_row
                if condition is None or is_true(condition(combined, env)):
                    matched = True
                    if right_matched is not None:
                        right_matched[index] = True
                    yield combined
            if not matched and self.kind in ("left", "full"):
                yield left_row + right_pad

        if right_matched is not None:
            for flag, right_row in zip(right_matched, right_rows):
                if not flag:
                    yield left_pad + right_row


class PHashJoin(PhysicalOp):
    """Hash join on equi-key conjuncts, with optional null-safe keys
    (``IS NOT DISTINCT FROM``) — the join form the provenance rewrite
    rules generate — and a residual condition for the rest.

    ``build_side`` picks which input the hash table is built on. The
    default builds on the right and streams the left (probe-major
    emission). ``build_side="left"`` — chosen by the planner when the
    left input's estimated cardinality is much smaller — hashes the left
    instead and streams the (large) right input through it, buffering
    only the *matching* right rows; emission then replays the left rows
    in their own order, so the output sequence is bit-identical to the
    build-right path. Only inner and left joins support it (right/full
    joins would have to buffer every unmatched right row anyway).
    """

    __slots__ = (
        "left",
        "right",
        "kind",
        "left_keys",
        "right_keys",
        "null_safe",
        "residual",
        "left_width",
        "right_width",
        "build_side",
    )

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        kind: str,
        left_keys: list[CompiledExpr],
        right_keys: list[CompiledExpr],
        null_safe: list[bool],
        residual: Optional[CompiledExpr],
        schema: Schema,
        build_side: str = "right",
    ):
        if build_side == "left" and kind not in ("inner", "left"):
            raise ExecutionError(
                f"build-left hash join does not support {kind!r} joins"
            )
        self.left = left
        self.right = right
        self.kind = kind
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.null_safe = null_safe
        self.residual = residual
        self.left_width = len(left.schema)
        self.right_width = len(right.schema)
        self.schema = schema
        self.build_side = build_side

    def _key(self, values: list[Value]) -> Optional[tuple]:
        """Hash key, or None when a non-null-safe key is NULL (such rows
        can never match under SQL equality)."""
        out = []
        for value, safe in zip(values, self.null_safe):
            if value is None and not safe:
                return None
            out.append(value_identity(value))
        return tuple(out)

    def rows(self, env: Env) -> Iterator[Row]:
        if self.build_side == "left":
            yield from self._rows_build_left(env)
            return
        right_rows = list(self.right.rows(env))
        table: dict[tuple, list[int]] = {}
        for index, right_row in enumerate(right_rows):
            key = self._key([k(right_row, env) for k in self.right_keys])
            if key is not None:
                table.setdefault(key, []).append(index)

        right_matched = [False] * len(right_rows) if self.kind in ("right", "full") else None
        left_pad = (None,) * self.left_width
        right_pad = (None,) * self.right_width
        residual = self.residual

        for left_row in self.left.rows(env):
            key = self._key([k(left_row, env) for k in self.left_keys])
            matched = False
            if key is not None:
                for index in table.get(key, ()):
                    combined = left_row + right_rows[index]
                    if residual is not None and not is_true(residual(combined, env)):
                        continue
                    matched = True
                    if right_matched is not None:
                        right_matched[index] = True
                    yield combined
            if not matched and self.kind in ("left", "full"):
                yield left_row + right_pad

        if right_matched is not None:
            for flag, right_row in zip(right_matched, right_rows):
                if not flag:
                    yield left_pad + right_row

    def _rows_build_left(self, env: Env) -> Iterator[Row]:
        left_rows = list(self.left.rows(env))
        table: dict[tuple, list[int]] = {}
        for index, left_row in enumerate(left_rows):
            key = self._key([k(left_row, env) for k in self.left_keys])
            if key is not None:
                table.setdefault(key, []).append(index)

        # Matching right rows per left row, in right-stream order — the
        # same per-left-row sequence the build-right probe produces.
        matches: list[list[Row]] = [[] for _ in left_rows]
        residual = self.residual
        for right_row in self.right.rows(env):
            key = self._key([k(right_row, env) for k in self.right_keys])
            if key is None:
                continue
            for index in table.get(key, ()):
                combined = left_rows[index] + right_row
                if residual is not None and not is_true(residual(combined, env)):
                    continue
                matches[index].append(right_row)

        right_pad = (None,) * self.right_width
        pad_left = self.kind == "left"
        for index, left_row in enumerate(left_rows):
            matched = matches[index]
            if matched:
                for right_row in matched:
                    yield left_row + right_row
            elif pad_left:
                yield left_row + right_pad


class AggSpec:
    """One aggregate to compute: function, compiled argument, distinct."""

    __slots__ = ("func", "arg", "distinct")

    def __init__(self, func: str, arg: Optional[CompiledExpr], distinct: bool):
        self.func = func
        self.arg = arg
        self.distinct = distinct


class PHashAggregate(PhysicalOp):
    """Hash aggregation. With no group keys, always emits one row (the
    SQL global aggregate, e.g. ``count(*)`` over an empty table is 0)."""

    __slots__ = ("child", "group_exprs", "agg_specs")

    def __init__(
        self,
        child: PhysicalOp,
        group_exprs: list[CompiledExpr],
        agg_specs: list[AggSpec],
        schema: Schema,
    ):
        self.child = child
        self.group_exprs = group_exprs
        self.agg_specs = agg_specs
        self.schema = schema

    def rows(self, env: Env) -> Iterator[Row]:
        star = count_star_sentinel()
        groups: dict[tuple, tuple[tuple[Value, ...], list[AggregateAccumulator]]] = {}
        for row in self.child.rows(env):
            key_values = tuple(g(row, env) for g in self.group_exprs)
            key = tuple(value_identity(v) for v in key_values)
            state = groups.get(key)
            if state is None:
                state = (
                    key_values,
                    [AggregateAccumulator(s.func, s.distinct) for s in self.agg_specs],
                )
                groups[key] = state
            for spec, accumulator in zip(self.agg_specs, state[1]):
                if spec.arg is None:
                    accumulator.add(star)
                else:
                    accumulator.add(spec.arg(row, env))

        if not groups and not self.group_exprs:
            accumulators = [AggregateAccumulator(s.func, s.distinct) for s in self.agg_specs]
            yield tuple(a.result() for a in accumulators)
            return
        for key_values, accumulators in groups.values():
            yield key_values + tuple(a.result() for a in accumulators)


class PHashDistinct(PhysicalOp):
    __slots__ = ("child",)

    def __init__(self, child: PhysicalOp):
        self.child = child
        self.schema = child.schema

    def rows(self, env: Env) -> Iterator[Row]:
        seen: set = set()
        for row in self.child.rows(env):
            key = row_identity(row)
            if key not in seen:
                seen.add(key)
                yield row


class PSetOp(PhysicalOp):
    """UNION / INTERSECT / EXCEPT with set or bag (ALL) semantics."""

    __slots__ = ("left", "right", "kind", "all")

    def __init__(self, left: PhysicalOp, right: PhysicalOp, kind: str, all_: bool, schema: Schema):
        self.left = left
        self.right = right
        self.kind = kind
        self.all = all_
        self.schema = schema

    def rows(self, env: Env) -> Iterator[Row]:
        if self.kind == "union":
            if self.all:
                yield from self.left.rows(env)
                yield from self.right.rows(env)
                return
            seen: set = set()
            for source in (self.left, self.right):
                for row in source.rows(env):
                    key = row_identity(row)
                    if key not in seen:
                        seen.add(key)
                        yield row
            return

        right_counts: dict[tuple, int] = {}
        for row in self.right.rows(env):
            key = row_identity(row)
            right_counts[key] = right_counts.get(key, 0) + 1

        if self.kind == "intersect":
            emitted: dict[tuple, int] = {}
            for row in self.left.rows(env):
                key = row_identity(row)
                available = right_counts.get(key, 0)
                if available == 0:
                    continue
                if self.all:
                    used = emitted.get(key, 0)
                    if used < available:
                        emitted[key] = used + 1
                        yield row
                else:
                    if key not in emitted:
                        emitted[key] = 1
                        yield row
            return

        if self.kind == "except":
            if self.all:
                consumed: dict[tuple, int] = {}
                for row in self.left.rows(env):
                    key = row_identity(row)
                    used = consumed.get(key, 0)
                    if used < right_counts.get(key, 0):
                        consumed[key] = used + 1
                        continue
                    yield row
            else:
                emitted_set: set = set()
                for row in self.left.rows(env):
                    key = row_identity(row)
                    if key in right_counts or key in emitted_set:
                        continue
                    emitted_set.add(key)
                    yield row
            return
        raise ExecutionError(f"unknown set operation {self.kind!r}")


class SortSpec:
    """One compiled sort key with direction and NULL placement."""

    __slots__ = ("expr", "descending", "nulls_first")

    def __init__(self, expr: CompiledExpr, descending: bool, nulls_first: Optional[bool]):
        self.expr = expr
        self.descending = descending
        # PostgreSQL default: NULLS LAST for ASC, NULLS FIRST for DESC.
        self.nulls_first = descending if nulls_first is None else nulls_first


class PSort(PhysicalOp):
    __slots__ = ("child", "keys")

    def __init__(self, child: PhysicalOp, keys: Sequence[SortSpec]):
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    def rows(self, env: Env) -> Iterator[Row]:
        data = list(self.child.rows(env))
        # Stable multi-key sort: apply keys from least to most significant.
        for key in reversed(self.keys):
            expr = key.expr
            # When sorting in reverse, pre-reversal NULL placement flips.
            nulls_first_ascending = key.nulls_first != key.descending
            data.sort(
                key=lambda row: sort_key(expr(row, env), nulls_first=nulls_first_ascending),
                reverse=key.descending,
            )
        return iter(data)


def evaluate_limit_count(
    compiled: Optional[CompiledExpr], env: Env, what: str
) -> Optional[int]:
    """Evaluate a LIMIT/OFFSET expression to a non-negative int (or None
    for absent / NULL). Shared by the row and vectorized engines."""
    if compiled is None:
        return None
    value = compiled((), env)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        else:
            raise ExecutionError(f"{what} must be an integer, got {value!r}")
    if value < 0:
        raise ExecutionError(f"{what} must not be negative")
    return value


class PLimit(PhysicalOp):
    __slots__ = ("child", "limit", "offset")

    def __init__(
        self, child: PhysicalOp, limit: Optional[CompiledExpr], offset: Optional[CompiledExpr]
    ):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.schema = child.schema

    def rows(self, env: Env) -> Iterator[Row]:
        limit = evaluate_limit_count(self.limit, env, "LIMIT")
        offset = evaluate_limit_count(self.offset, env, "OFFSET") or 0
        emitted = 0
        for index, row in enumerate(self.child.rows(env)):
            if index < offset:
                continue
            if limit is not None and emitted >= limit:
                return
            emitted += 1
            yield row
