"""Provenance attribute naming.

The paper (§2.1): "all attributes from the relevant base relations are
appended to the result schema of the original query. To distinguish
between original attributes and provenance attributes, provenance
attributes are identified by a prefix and the name of the relation they
are derived from" — i.e. ``prov_<relation>_<attribute>``.

When the same relation is accessed more than once in a query (self
joins, a relation on both sides of a UNION), Perm numbers the repeated
accesses; we do the same: the second access to ``r`` yields
``prov_r_1_<attribute>``, the third ``prov_r_2_<attribute>``, and so on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..datatypes import SQLType


@dataclass(frozen=True)
class ProvAttr:
    """One provenance attribute of a rewritten query.

    ``name`` is the output column name (``prov_messages_mid``);
    ``relation``/``attribute`` identify the base relation attribute the
    column witnesses; ``type`` is its SQL type (used for typed NULL
    padding in the union rule and Figure 2's NULL cells); ``access``
    groups the attributes of one relation *access* together (self joins
    access a relation twice), which the COPY COMPLETE semantics needs to
    keep whole contributing tuples.
    """

    name: str
    relation: str
    attribute: str
    type: SQLType
    access: str = ""


_SANITIZE = re.compile(r"[^a-z0-9_]+")


def sanitize(part: str) -> str:
    """Lower-case and strip characters that would make an awkward
    identifier (Perm folds names the way PostgreSQL folds unquoted
    identifiers)."""
    cleaned = _SANITIZE.sub("_", part.lower()).strip("_")
    return cleaned or "x"


class ProvNameGenerator:
    """Generates unique provenance attribute names for one rewrite.

    One instance lives for the duration of a provenance rewrite, so
    numbering of repeated relation accesses is consistent across the
    whole query tree.
    """

    def __init__(self) -> None:
        self._relation_uses: dict[str, int] = {}
        self._taken: set[str] = set()

    def relation_prefix(self, relation: str) -> str:
        """Reserve the next access number for *relation* and return the
        name prefix for its attributes."""
        key = sanitize(relation)
        use = self._relation_uses.get(key, 0)
        self._relation_uses[key] = use + 1
        if use == 0:
            return f"prov_{key}"
        return f"prov_{key}_{use}"

    def attribute_name(self, prefix: str, attribute: str) -> str:
        """Unique column name for one attribute under a relation prefix."""
        base = f"{prefix}_{sanitize(attribute)}"
        candidate = base
        suffix = 0
        while candidate in self._taken:
            suffix += 1
            candidate = f"{base}_{suffix}"
        self._taken.add(candidate)
        return candidate

    def claim(self, name: str) -> None:
        """Mark an externally supplied provenance column name as taken."""
        self._taken.add(name)
