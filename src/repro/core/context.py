"""Shared state for one provenance rewrite."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Optional

from ..catalog.catalog import Catalog
from ..optimizer.cost import CostModel
from .naming import ProvNameGenerator

if TYPE_CHECKING:  # pragma: no cover
    from ..algebra.nodes import Node


@dataclass
class RewriteOptions:
    """Tunable behaviour of the provenance rewriter.

    ``union_strategy``
        ``"pad"`` — rewrite both UNION branches and pad each with typed
        NULLs for the other's provenance attributes (the rule shown for
        Figure 2 of the paper); ``"joinback"`` — compute the original
        union and left-outer-join it back to the padded union of the
        rewritten inputs; ``"heuristic"`` / ``"cost"`` — let
        :mod:`repro.core.strategies` choose (the paper's §2.2 choice).
    ``sublink_strategy``
        ``"gen"`` — unnest sublinks into joins where valid; ``"left"`` —
        decorrelate and join; ``"keep"`` — never trace provenance into
        sublinks; ``"heuristic"`` / ``"cost"`` — choose automatically.
    ``difference_semantics``
        ``"lineage"`` — the provenance of ``t ∈ T1 − T2`` is the witness
        of ``t`` in ``T1`` plus *all* of ``T2`` (Cui–Widom lineage, and
        Perm's PI-CS for difference); ``"left-only"`` — only the ``T1``
        witness (cheaper, sometimes preferable; kept as an option).
    """

    union_strategy: str = "pad"
    sublink_strategy: str = "heuristic"
    difference_semantics: str = "lineage"

    def __post_init__(self) -> None:
        valid_union = ("pad", "joinback", "heuristic", "cost")
        valid_sublink = ("gen", "left", "keep", "heuristic", "cost")
        valid_difference = ("lineage", "left-only")
        if self.union_strategy not in valid_union:
            raise ValueError(f"union_strategy must be one of {valid_union}")
        if self.sublink_strategy not in valid_sublink:
            raise ValueError(f"sublink_strategy must be one of {valid_sublink}")
        if self.difference_semantics not in valid_difference:
            raise ValueError(f"difference_semantics must be one of {valid_difference}")


@dataclass
class RewriteContext:
    """Per-rewrite state: catalog access, naming, options, cost model and
    a counter for fresh intermediate attribute names."""

    catalog: Catalog
    options: RewriteOptions = field(default_factory=RewriteOptions)
    naming: ProvNameGenerator = field(default_factory=ProvNameGenerator)
    cost_model: Optional[CostModel] = None
    _ids: "count[int]" = field(default_factory=count)

    def fresh_prefix(self) -> str:
        """A unique prefix for renamed intermediate attributes."""
        return f"_rw{next(self._ids)}"

    def costs(self) -> CostModel:
        if self.cost_model is None:
            self.cost_model = CostModel(self.catalog)
        return self.cost_model
