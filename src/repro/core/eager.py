"""Eager (materialized) provenance.

The paper (§1): a user can "decide whether he will store the provenance
of a query for later reuse or let the system compute it on the fly".
*Lazy* provenance is just running ``SELECT PROVENANCE ...``; *eager*
provenance materializes that result once:

* ``CREATE TABLE p AS SELECT PROVENANCE ...`` stores the provenance
  relation; the engine registers which of its columns are provenance in
  the catalog.
* A later query over ``p`` — optionally with an explicit
  ``PROVENANCE (attrs)`` annotation, or relying on the catalog
  registration — resumes the rewrite from the stored columns instead of
  recomputing them (incremental provenance computation, §2.4).

This module provides the convenience API used by examples and
benchmarks; the SQL path works without it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import RewriteError

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.connection import Connection
    from ..storage.table import Relation


def materialize_provenance(db: "Connection", name: str, provenance_sql: str) -> "Relation":
    """Store the result of *provenance_sql* as table *name* and register
    its provenance columns for later reuse.

    Equivalent to ``CREATE TABLE <name> AS <provenance_sql>`` — provided
    as an explicit API so applications can manage eager provenance
    programmatically.
    """
    result = db.run(provenance_sql)
    if not result.provenance_attrs:
        raise RewriteError(
            "materialize_provenance() expects a SELECT PROVENANCE query "
            "(the result carries no provenance attributes)"
        )
    db.create_table_from_relation(name, result)
    return result


def stored_provenance_attrs(db: "Connection", name: str) -> tuple[str, ...]:
    """The registered provenance columns of a stored relation."""
    return db.catalog.provenance_attrs(name)
