"""Rewrite-strategy selection.

Paper §2.2: "For some operators there is more than one rewrite rule that
produces the provenance of the operator. For this type of operator the
choice of rewrite rule influences the performance of the provenance
computation. We provide a heuristic and a cost-based solution for
choosing the best rewrite strategy."

Concretely, for set UNION two rules exist (pad-union and join-back; see
:mod:`repro.core.influence`), and for sublinks GEN/LEFT/KEEP (see
:mod:`repro.core.sublinks`). This module implements the chooser:

* ``heuristic`` — pad-union always (it avoids the extra join and wins
  unless deduplication is extreme); GEN/LEFT by correlation shape.
* ``cost`` — build every applicable candidate, estimate each with the
  optimizer's cost model (:class:`repro.optimizer.cost.CostModel`) and
  keep the cheapest, mirroring how Perm reuses PostgreSQL's costing.
"""

from __future__ import annotations

from ..algebra import nodes as an
from ..errors import RewriteError
from .context import RewriteContext
from .influence import RewriteResult, union_joinback_strategy, union_pad_strategy

__all__ = ["choose_union_strategy", "union_strategy_candidates"]


def union_strategy_candidates(
    node: an.SetOpNode,
    left: RewriteResult,
    right: RewriteResult,
    ctx: RewriteContext,
) -> dict[str, RewriteResult]:
    """All valid union rewrites for this operator, keyed by strategy name.

    Join-back is only valid for set union (it would over-replicate under
    UNION ALL, where equal tuples are distinct witnesses).
    """
    candidates = {"pad": union_pad_strategy(node, left, right, ctx)}
    if not node.all:
        candidates["joinback"] = union_joinback_strategy(node, left, right, ctx)
    return candidates


def choose_union_strategy(
    node: an.SetOpNode,
    left: RewriteResult,
    right: RewriteResult,
    ctx: RewriteContext,
) -> RewriteResult:
    """Pick the union rewrite according to ``ctx.options.union_strategy``."""
    option = ctx.options.union_strategy
    if option == "pad":
        return union_pad_strategy(node, left, right, ctx)
    if option == "joinback":
        if node.all:
            raise RewriteError(
                "the join-back union strategy is not valid for UNION ALL; "
                "use union_strategy='pad' (or 'heuristic'/'cost')"
            )
        return union_joinback_strategy(node, left, right, ctx)
    candidates = union_strategy_candidates(node, left, right, ctx)
    if option == "heuristic" or len(candidates) == 1:
        # Heuristic: pad-union avoids the extra join over the (usually
        # dominant) rewritten inputs.
        return candidates["pad"]
    assert option == "cost"
    costs = {name: ctx.costs().cost(result.node) for name, result in candidates.items()}
    best = min(costs, key=costs.__getitem__)
    return candidates[best]
