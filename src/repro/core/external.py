"""External provenance.

The paper (§2.2): "the rewrite rules are unaware of how the provenance
attributes of their input were produced. This is a huge advantage,
because it enables us to use the rewrite rules to propagate provenance
information that was not produced by Perm" — e.g. manual annotations or
columns imported from another provenance management system.

Two mechanisms expose external provenance to the rewriter:

* per-query: the SQL-PLE ``PROVENANCE (attr, ...)`` modifier on a FROM
  item (parsed into ``provenance_attrs`` on the FROM item, turned into a
  :class:`~repro.algebra.nodes.BaseRelationNode` by the analyzer, and
  consumed by the rewrite rules);
* persistent: registering the provenance columns of a stored relation in
  the catalog with :func:`attach_external_provenance`, after which every
  provenance query over that relation picks them up automatically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.connection import Connection


def attach_external_provenance(db: "Connection", relation: str, attrs: Sequence[str]) -> None:
    """Register *attrs* of *relation* as provenance columns.

    Validates that every attribute exists. Subsequent provenance queries
    over *relation* treat these columns as its provenance instead of
    rewriting below it.
    """
    catalog = db.catalog
    if catalog.has_table(relation):
        schema = catalog.table(relation).schema
    elif catalog.has_matview(relation):
        schema = catalog.matview(relation).schema
    elif catalog.has_view(relation):
        # Validate against the view's analyzed output schema.
        schema = db.analyze_relation_schema(relation)
    else:
        raise CatalogError(f"relation {relation!r} does not exist")
    for attr in attrs:
        if not schema.has(attr):
            raise CatalogError(
                f"relation {relation!r} has no attribute {attr!r} "
                f"(have: {', '.join(schema.names)})"
            )
    catalog.register_provenance_attrs(relation, tuple(attrs))


def detach_external_provenance(db: "Connection", relation: str) -> None:
    """Remove any provenance registration from *relation*."""
    db.catalog.register_provenance_attrs(relation, ())
