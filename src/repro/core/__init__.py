"""The paper's primary contribution: provenance computation by query
rewriting.

Given an algebra tree for a query ``q``, this package produces the tree
of the provenance query ``q+`` whose result is the original result of
``q`` augmented with ``prov_<relation>_<attribute>`` columns holding the
contributing base tuples (paper §2.1–§2.2). Supported contribution
semantics: influence (PI-CS, why-provenance) and copy (C-CS,
where-provenance, PARTIAL and COMPLETE variants); supported SQL-PLE
controls: ``BASERELATION``, external ``PROVENANCE (attrs)``, nested
``SELECT PROVENANCE``; rewrite strategies are chosen heuristically or by
cost (§2.2).
"""

from .naming import ProvAttr, ProvNameGenerator  # noqa: F401
from .provenance import ProvenanceRewriter, RewriteOptions  # noqa: F401
