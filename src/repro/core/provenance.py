"""The provenance rewrite driver.

Finds every :class:`~repro.algebra.nodes.ProvenanceNode` marker the
analyzer planted (``SELECT PROVENANCE ...``), rewrites the subtree below
it under the requested contribution semantics, and replaces the marker
with the rewritten tree whose schema is the original result attributes
followed by the ``prov_*`` attributes — the paper's provenance
representation (§2.1). Markers nested inside derived tables or sublinks
are expanded innermost-first, so a provenance query over a provenance
query rewrites the already-rewritten form, exactly as Perm does on
PostgreSQL query trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..algebra.tree import transform_subplans, transform_tree, walk_tree_with_subplans
from ..catalog.catalog import Catalog
from ..catalog.schema import Schema
from ..errors import RewriteError
from .context import RewriteContext, RewriteOptions
from .copy import rewrite_copy
from .influence import RewriteResult, rewrite_influence
from .naming import ProvAttr

__all__ = ["ProvenanceRewriter", "RewriteOptions", "contains_provenance_marker"]


def contains_provenance_marker(node: an.Node) -> bool:
    """Whether any ``SELECT PROVENANCE`` marker remains in the tree."""
    return any(
        isinstance(sub, an.ProvenanceNode) for sub in walk_tree_with_subplans(node)
    )


@dataclass
class ExpandedQuery:
    """Result of marker expansion for one query tree."""

    node: an.Node
    # Provenance attributes of the *root* marker (empty if the root was
    # not a provenance query; nested markers' attributes become ordinary
    # columns of their subtrees).
    prov: list[ProvAttr] = field(default_factory=list)

    @property
    def provenance_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.prov)


class ProvenanceRewriter:
    """Rewrites queries with ``SELECT PROVENANCE`` markers.

    This is the "Provenance Rewriter" box in the paper's Figure 3 —
    sitting between the analyzer and the optimizer/planner.
    """

    def __init__(self, catalog: Catalog, options: Optional[RewriteOptions] = None):
        self.catalog = catalog
        self.options = options or RewriteOptions()

    # ------------------------------------------------------------------
    def expand(self, root: an.Node) -> ExpandedQuery:
        """Expand every marker in *root*; report the root marker's
        provenance attributes so the engine can annotate the result."""
        ctx = self._context()
        return self._expand_root(root, ctx)

    def _expand_root(self, root: an.Node, ctx: RewriteContext) -> ExpandedQuery:
        if isinstance(root, an.ProvenanceNode):
            inner = self._expand_nested(root.child, ctx)
            result = self._rewrite_block(inner, root.contribution, ctx)
            node, prov = self._normalize(inner.schema, result)
            return ExpandedQuery(node, prov)
        if isinstance(root, (an.Sort, an.Limit)):
            # ORDER BY / LIMIT above the provenance marker (e.g. a sorted
            # provenance union): rewrite below, keep the wrapper, and
            # still report the provenance attributes.
            inner = self._expand_root(root.children[0], ctx)
            return ExpandedQuery(root.with_children([inner.node]), inner.prov)
        return ExpandedQuery(self._expand_nested(root, ctx), [])

    def rewrite_tree(
        self, node: an.Node, contribution: str = "influence"
    ) -> tuple[an.Node, list[ProvAttr]]:
        """Rewrite a marker-free tree directly (library-level API used by
        benchmarks and tests to compare strategies)."""
        ctx = self._context()
        inner = self._expand_nested(node, ctx)
        result = self._rewrite_block(inner, contribution, ctx)
        return self._normalize(inner.schema, result)

    # ------------------------------------------------------------------
    def _context(self) -> RewriteContext:
        return RewriteContext(catalog=self.catalog, options=self.options)

    def _expand_nested(self, node: an.Node, ctx: RewriteContext) -> an.Node:
        """Replace markers strictly below the root, innermost-first, in
        both the operator tree and sublink subplans."""
        node = transform_subplans(node, lambda plan: self._expand_nested(plan, ctx))

        def replace_marker(candidate: an.Node) -> Optional[an.Node]:
            if isinstance(candidate, an.ProvenanceNode):
                result = self._rewrite_block(candidate.child, candidate.contribution, ctx)
                rewritten, _ = self._normalize(candidate.child.schema, result)
                return rewritten
            return None

        return transform_tree(node, replace_marker)

    def _rewrite_block(
        self, node: an.Node, contribution: str, ctx: RewriteContext
    ) -> RewriteResult:
        if contribution == "influence":
            return rewrite_influence(node, ctx)
        if contribution == "copy partial":
            result = rewrite_copy(node, ctx, "partial")
            return RewriteResult(result.node, result.prov)
        if contribution == "copy complete":
            result = rewrite_copy(node, ctx, "complete")
            return RewriteResult(result.node, result.prov)
        raise RewriteError(f"unknown contribution semantics {contribution!r}")

    def _normalize(
        self, original_schema: Schema, result: RewriteResult
    ) -> tuple[an.Node, list[ProvAttr]]:
        """Final projection: original result attributes first (in their
        original order), then every provenance attribute — the schema
        shape of Figure 2. Provenance names colliding with original
        output names (possible when a user selects a stored provenance
        column) are disambiguated here."""
        taken = {a.name.lower() for a in original_schema}
        items: list[tuple[str, ax.Expr]] = [
            (attribute.name, ax.Column(attribute.name)) for attribute in original_schema
        ]
        final_prov: list[ProvAttr] = []
        for p in result.prov:
            name = p.name
            while name.lower() in taken:
                name = name + "_"
            taken.add(name.lower())
            items.append((name, ax.Column(p.name)))
            final_prov.append(
                ProvAttr(name, p.relation, p.attribute, p.type, p.access)
            )
        return an.Project(result.node, items), final_prov
