"""Influence contribution semantics (PI-CS / why-provenance) rewrite rules.

Implements the algebraic rules of the paper's §2.2 (full definitions in
its companion paper, Glavic & Alonso, ICDE 2009). Every rule consumes a
rewritten input ``T+`` together with its provenance attribute list
``P(T+)`` and produces the rewritten operator — the rules are
compositional and "unaware of how the provenance attributes of their
input were produced", which is what enables external provenance and
incremental (eager) provenance to flow through unchanged.

Rule summary (``A`` = original attributes, ``P`` = provenance
attributes, ``≐`` = null-safe equality / IS NOT DISTINCT FROM):

====================  ====================================================
operator              rewrite
====================  ====================================================
base access R         ``Π_{A, A→prov_R_A}(R)``
σ_C(T)                ``σ_C(T+)``
Π_A(T)                ``Π_{A,P}(T+)``
T1 ⋈_C T2 (any kind)  ``T1+ ⋈_C T2+``
α_{G,agg}(T)          ``Π_{G,agg,P}(α_{G,agg}(T) ⟕_{G ≐ G'} ren(T+))``
T1 ∪ T2               ``Π_{A,P1,null(P2)}(T1+) ⊎ Π_{A,null(P1),P2}(T2+)``
                      (alternative join-back strategy available)
T1 ∩ T2               ``Π((T1 ∩ T2) ⋈_{A≐A1} ren(T1+) ⋈_{A≐A2} ren(T2+))``
T1 − T2               ``Π((T1 − T2) ⋈_{A≐A1} ren(T1+) ⟕_true ren(T2+))``
                      (Cui–Widom lineage: all of T2 contributes; a
                      left-only option drops the T2 side)
δ(T)                  ``δ(T+)``
sort                  rewrite below, keys unchanged
limit                 join the limited original back to ``T+``
====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..catalog.schema import Schema
from ..datatypes import SQLType
from ..errors import RewriteError
from .context import RewriteContext
from .naming import ProvAttr

__all__ = ["RewriteResult", "rewrite_influence"]


@dataclass
class RewriteResult:
    """A rewritten subtree plus its provenance attribute list P(T+)."""

    node: an.Node
    prov: list[ProvAttr]


# ---------------------------------------------------------------------------
# Shared helpers (also used by the copy-semantics rules)
# ---------------------------------------------------------------------------

def identity_items(schema: Schema) -> list[tuple[str, ax.Expr]]:
    return [(attribute.name, ax.Column(attribute.name)) for attribute in schema]


def prov_items(provs: list[ProvAttr]) -> list[tuple[str, ax.Expr]]:
    return [(p.name, ax.Column(p.name)) for p in provs]


def null_items(provs: list[ProvAttr]) -> list[tuple[str, ax.Expr]]:
    return [(p.name, ax.Const(None, p.type)) for p in provs]


def prov_output_items(
    ctx: RewriteContext,
    base_names: list[str],
    provs: list[ProvAttr],
    value_expr=None,
) -> tuple[list[tuple[str, ax.Expr]], list[ProvAttr]]:
    """Projection items exposing the provenance attributes next to
    *base_names*, renaming any provenance attribute whose name collides
    with a user-visible output column (e.g. a stored column that happens
    to be called ``prov_r_a``). ``value_expr(p)`` supplies the expression
    for each attribute (default: a reference to its current column).

    Deterministic for a given (base_names, provs) pair, so the union rule
    can call it once per branch and obtain identical output names.
    """
    if value_expr is None:
        value_expr = lambda p: ax.Column(p.name)  # noqa: E731
    taken = {name.lower() for name in base_names}
    items: list[tuple[str, ax.Expr]] = []
    final: list[ProvAttr] = []
    for p in provs:
        name = p.name
        while name.lower() in taken:
            name += "_"
        if name != p.name:
            ctx.naming.claim(name)
            final.append(ProvAttr(name, p.relation, p.attribute, p.type, p.access))
        else:
            final.append(p)
        taken.add(name.lower())
        items.append((name, value_expr(p)))
    return items, final


def rename_originals(
    ctx: RewriteContext, result: "RewriteResult"
) -> tuple[an.Node, dict[str, str]]:
    """Rename the *original* attributes of a rewritten subtree with a
    fresh prefix (keeping provenance attribute names), so it can be
    joined to a copy of the original query without name collisions.

    Returns the projected node and the old -> new name mapping.
    """
    prefix = ctx.fresh_prefix()
    mapping: dict[str, str] = {}
    items: list[tuple[str, ax.Expr]] = []
    prov_names = {p.name for p in result.prov}
    for attribute in result.node.schema:
        if attribute.name in prov_names:
            items.append((attribute.name, ax.Column(attribute.name)))
        else:
            new_name = f"{prefix}.{attribute.name}"
            mapping[attribute.name] = new_name
            items.append((new_name, ax.Column(attribute.name)))
    return an.Project(result.node, items), mapping


def join_back_condition(
    original_names: list[str], renamed_names: list[str]
) -> ax.Expr:
    """``AND_i original_i ≐ renamed_i`` — the null-safe equality join the
    aggregation / set-operation / limit rules re-attach provenance with."""
    parts: list[ax.Expr] = [
        ax.DistinctTest(ax.Column(o), ax.Column(r), negated=True)
        for o, r in zip(original_names, renamed_names)
    ]
    combined = ax.combine_conjuncts(parts)
    return combined if combined is not None else ax.Const(True, SQLType.BOOL)


def _expr_has_subquery(expr: ax.Expr) -> bool:
    return any(isinstance(sub, ax.SubqueryExpr) for sub in ax.walk_expr(expr))


def prepare_aggregate_rewrite(node: an.Aggregate, ctx: RewriteContext) -> an.Aggregate:
    """Make an aggregate rewritable when GROUP BY expressions contain
    subqueries (shared by the PI-CS and C-CS rules).

    The aggregation rules join the original aggregate back to the
    rewritten input on the group-by expressions; duplicating a sublink
    expression into that join condition would re-plan and re-run the
    subquery against the *renamed* input, where its correlated
    references no longer resolve. Instead, pre-project each
    sublink-bearing group expression below the aggregate under a fresh
    name and group by that column: the subquery is evaluated exactly
    once per input row, in the same scope as before (the projection sees
    the same input schema the aggregate did), and the join-back
    condition only ever copies a plain column reference. Output schema
    (names and types) is unchanged.
    """
    if not any(_expr_has_subquery(expr) for _, expr in node.group_items):
        return node
    items = identity_items(node.child.schema)
    group_items: list[tuple[str, ax.Expr]] = []
    for name, expr in node.group_items:
        if _expr_has_subquery(expr):
            fresh = f"{ctx.fresh_prefix()}.{name}"
            items.append((fresh, expr))
            group_items.append((name, ax.Column(fresh)))
        else:
            group_items.append((name, expr))
    return an.Aggregate(an.Project(node.child, items), group_items, node.agg_items)


# ---------------------------------------------------------------------------
# The rewriter
# ---------------------------------------------------------------------------

def rewrite_influence(node: an.Node, ctx: RewriteContext) -> RewriteResult:
    """Rewrite *node* under influence contribution semantics."""
    if isinstance(node, an.Scan):
        return _rewrite_scan(node, ctx)
    if isinstance(node, an.SingleRow):
        return RewriteResult(node, [])
    if isinstance(node, an.BaseRelationNode):
        return _rewrite_base_relation(node, ctx)
    if isinstance(node, an.Project):
        child = rewrite_influence(node.child, ctx)
        extra, provs = prov_output_items(
            ctx, [name for name, _ in node.items], child.prov
        )
        return RewriteResult(an.Project(child.node, list(node.items) + extra), provs)
    if isinstance(node, an.Select):
        from .sublinks import rewrite_select_with_sublinks

        return rewrite_select_with_sublinks(node, ctx, rewrite_influence)
    if isinstance(node, an.Join):
        left = rewrite_influence(node.left, ctx)
        right = rewrite_influence(node.right, ctx)
        joined = an.Join(left.node, right.node, node.kind, node.condition)
        return RewriteResult(joined, left.prov + right.prov)
    if isinstance(node, an.Aggregate):
        return _rewrite_aggregate(node, ctx, rewrite_influence)
    if isinstance(node, an.SetOpNode):
        return _rewrite_setop(node, ctx, rewrite_influence)
    if isinstance(node, an.Distinct):
        child = rewrite_influence(node.child, ctx)
        return RewriteResult(an.Distinct(child.node), child.prov)
    if isinstance(node, an.Sort):
        child = rewrite_influence(node.child, ctx)
        return RewriteResult(an.Sort(child.node, node.keys), child.prov)
    if isinstance(node, an.Limit):
        return _rewrite_limit(node, ctx, rewrite_influence)
    if isinstance(node, an.ProvenanceNode):
        raise RewriteError(
            "nested ProvenanceNode must be expanded before the influence "
            "rewrite (driver bug)"
        )
    raise RewriteError(f"no influence rewrite rule for {type(node).__name__}")


# ---------------------------------------------------------------------------
# Per-operator rules
# ---------------------------------------------------------------------------

def _rewrite_scan(node: an.Scan, ctx: RewriteContext) -> RewriteResult:
    """Base relation access: duplicate every attribute under its
    ``prov_<rel>_<attr>`` name."""
    prefix = ctx.naming.relation_prefix(node.table_name)
    provs: list[ProvAttr] = []
    items = identity_items(node.schema)
    for column, attribute in zip(node.columns, node.schema):
        prov_name = ctx.naming.attribute_name(prefix, column)
        provs.append(ProvAttr(prov_name, node.table_name, column, attribute.type, prefix))
        items.append((prov_name, ax.Column(attribute.name)))
    return RewriteResult(an.Project(node, items), provs)


def _rewrite_base_relation(node: an.BaseRelationNode, ctx: RewriteContext) -> RewriteResult:
    """``BASERELATION`` / external ``PROVENANCE (attrs)`` (paper §2.4).

    Without an attribute list, the subtree is treated like a base
    relation: every output attribute is duplicated under a provenance
    name derived from the relation label. With a list, the named
    attributes *already are* provenance (produced manually, by another
    PMS, or by an earlier eager Perm run) and are re-exposed under their
    stored names — the rewrite rules above this node cannot tell the
    difference, which is the paper's point about external provenance.
    """
    child = node.child  # not rewritten: the rewrite stops here
    items = identity_items(child.schema)
    provs: list[ProvAttr] = []
    if node.provenance_attrs is None:
        prefix = ctx.naming.relation_prefix(node.relation_label)
        for attribute in child.schema:
            base = attribute.name.rsplit(".", 1)[-1]
            prov_name = ctx.naming.attribute_name(prefix, base)
            provs.append(ProvAttr(prov_name, node.relation_label, base, attribute.type, prefix))
            items.append((prov_name, ax.Column(attribute.name)))
    else:
        for unique_name in node.provenance_attrs:
            attribute = child.schema.attribute(unique_name)
            base = attribute.name.rsplit(".", 1)[-1]
            prov_name = base
            # Stored provenance columns keep their stored names unless
            # that name is already taken in this rewrite.
            if prov_name in {p.name for p in provs}:
                prov_name = ctx.naming.attribute_name("prov", base)
            ctx.naming.claim(prov_name)
            provs.append(
                ProvAttr(prov_name, node.relation_label, base, attribute.type, f"ext_{node.relation_label}")
            )
            items.append((prov_name, ax.Column(unique_name)))
    return RewriteResult(an.Project(child, items), provs)


def _rewrite_aggregate(node: an.Aggregate, ctx: RewriteContext, rewrite) -> RewriteResult:
    """``(α_{G,agg}(T))+ = Π_{G,agg,P}(α_{G,agg}(T) ⟕_{G ≐ G'} ren(T+))``.

    The original aggregation runs untouched (so aggregate values are
    exactly those of the original query) and is joined back to the
    rewritten input on the group-by expressions under null-safe
    equality; with no GROUP BY the join condition is TRUE, so the single
    aggregate row picks up every input tuple as provenance — and
    survives with NULL provenance when the input is empty.

    GROUP BY expressions containing subqueries are pre-projected below
    the aggregate first (:func:`prepare_aggregate_rewrite`), so the
    join-back never duplicates a sublink.
    """
    node = prepare_aggregate_rewrite(node, ctx)
    child = rewrite(node.child, ctx)
    renamed, mapping = rename_originals(ctx, child)

    conditions: list[ax.Expr] = []
    for group_name, group_expr in node.group_items:
        renamed_expr = ax.rename_columns(group_expr, mapping)
        conditions.append(
            ax.DistinctTest(ax.Column(group_name), renamed_expr, negated=True)
        )
    condition = ax.combine_conjuncts(conditions)
    if condition is None:
        condition = ax.Const(True, SQLType.BOOL)

    joined = an.Join(node, renamed, "left", condition)
    extra, provs = prov_output_items(ctx, node.schema.names, child.prov)
    items = identity_items(node.schema) + extra
    return RewriteResult(an.Project(joined, items), provs)


def _rewrite_limit(node: an.Limit, ctx: RewriteContext, rewrite) -> RewriteResult:
    """Join the limited original result back to the rewritten input.

    Note: if the limited result contains duplicate rows, each duplicate
    picks up the witnesses of every equal row (the relational
    representation cannot distinguish them); the companion papers accept
    the same for TOP-k queries.
    """
    child = rewrite(node.child, ctx)
    renamed, mapping = rename_originals(ctx, child)
    original_names = node.schema.names
    renamed_names = [mapping[name] for name in original_names]
    condition = join_back_condition(original_names, renamed_names)
    joined = an.Join(node, renamed, "left", condition)
    extra, provs = prov_output_items(ctx, node.schema.names, child.prov)
    items = identity_items(node.schema) + extra
    return RewriteResult(an.Project(joined, items), provs)


# ---------------------------------------------------------------------------
# Set operations (with strategy choice, paper §2.2)
# ---------------------------------------------------------------------------

def _rewrite_setop(node: an.SetOpNode, ctx: RewriteContext, rewrite) -> RewriteResult:
    left = rewrite(node.left, ctx)
    right = rewrite(node.right, ctx)
    if node.kind == "union":
        from .strategies import choose_union_strategy

        return choose_union_strategy(node, left, right, ctx)
    if node.kind == "intersect":
        return _rewrite_intersect(node, left, right, ctx)
    if node.kind == "except":
        return _rewrite_except(node, left, right, ctx)
    raise RewriteError(f"unknown set operation {node.kind!r}")


def union_pad_strategy(
    node: an.SetOpNode, left: RewriteResult, right: RewriteResult, ctx: RewriteContext
) -> RewriteResult:
    """``Π_{A,P1,null(P2)}(T1+) ⊎ Π_{A,null(P1),P2}(T2+)`` — each branch
    keeps its own witnesses and is NULL-padded for the other branch's
    provenance attributes. This is exactly the shape of Figure 2 in the
    paper: the ``lorem ipsum`` tuple carries ``messages`` provenance and
    NULLs under the ``imports`` columns."""
    out_names = node.schema.names
    left_names = node.left.schema.names
    right_names = node.right.schema.names
    all_provs = left.prov + right.prov
    left_set = {p.name for p in left.prov}

    left_extra, provs = prov_output_items(
        ctx,
        out_names,
        all_provs,
        value_expr=lambda p: ax.Column(p.name) if p.name in left_set else ax.Const(None, p.type),
    )
    right_extra, _ = prov_output_items(
        ctx,
        out_names,
        all_provs,
        value_expr=lambda p: ax.Const(None, p.type) if p.name in left_set else ax.Column(p.name),
    )
    left_items = [
        (out, ax.Column(inner)) for out, inner in zip(out_names, left_names)
    ] + left_extra
    right_items = [
        (out, ax.Column(inner)) for out, inner in zip(out_names, right_names)
    ] + right_extra

    left_proj = an.Project(left.node, left_items)
    right_proj = an.Project(right.node, right_items)
    rewritten = an.SetOpNode(left_proj, right_proj, "union", all=True)
    return RewriteResult(rewritten, provs)


def union_joinback_strategy(
    node: an.SetOpNode, left: RewriteResult, right: RewriteResult, ctx: RewriteContext
) -> RewriteResult:
    """``(T1 ∪ T2) ⟕_{A ≐ A'} (padded union of T1+, T2+)`` — computes the
    original (deduplicated) union once and re-attaches witnesses by
    join. Only valid for set union; UNION ALL always pads.

    Compared to the pad strategy this pays an extra join but can win
    when the union result is small relative to the rewritten inputs
    (aggressive deduplication), the trade-off the paper's §2.2 strategy
    chooser weighs.
    """
    if node.all:
        raise RewriteError("join-back union strategy is not valid for UNION ALL")
    padded = union_pad_strategy(node, left, right, ctx)
    renamed, mapping = rename_originals(ctx, padded)
    original_names = node.schema.names
    renamed_names = [mapping[name] for name in original_names]
    condition = join_back_condition(original_names, renamed_names)
    joined = an.Join(node, renamed, "left", condition)
    # Pad strategy already deconflicted names against the output schema.
    items = identity_items(node.schema) + prov_items(padded.prov)
    return RewriteResult(an.Project(joined, items), padded.prov)


def _rewrite_intersect(
    node: an.SetOpNode, left: RewriteResult, right: RewriteResult, ctx: RewriteContext
) -> RewriteResult:
    """Each intersection tuple joins its witnesses from both inputs."""
    renamed_left, map_left = rename_originals(ctx, left)
    renamed_right, map_right = rename_originals(ctx, right)
    out_names = node.schema.names
    left_cond = join_back_condition(
        out_names, [map_left[n] for n in node.left.schema.names]
    )
    right_cond = join_back_condition(
        out_names, [map_right[n] for n in node.right.schema.names]
    )
    joined = an.Join(
        an.Join(node, renamed_left, "left", left_cond),
        renamed_right,
        "left",
        right_cond,
    )
    extra, provs = prov_output_items(ctx, node.schema.names, left.prov + right.prov)
    items = identity_items(node.schema) + extra
    return RewriteResult(an.Project(joined, items), provs)


def _rewrite_except(
    node: an.SetOpNode, left: RewriteResult, right: RewriteResult, ctx: RewriteContext
) -> RewriteResult:
    """``T1 − T2``: the surviving tuple's witness from ``T1`` plus —
    under the default Cui–Widom-compatible semantics — every tuple of
    ``T2`` (each of them "influences" the survival by failing to match).
    The ``left-only`` option keeps the schema but NULLs the T2 side.
    """
    renamed_left, map_left = rename_originals(ctx, left)
    left_cond = join_back_condition(
        node.schema.names, [map_left[n] for n in node.left.schema.names]
    )
    joined: an.Node = an.Join(node, renamed_left, "left", left_cond)
    if ctx.options.difference_semantics == "lineage":
        renamed_right, _ = rename_originals(ctx, right)
        joined = an.Join(joined, renamed_right, "left", ax.Const(True, SQLType.BOOL))
        nulled: set[str] = set()
    else:
        nulled = {p.name for p in right.prov}
    extra, provs = prov_output_items(
        ctx,
        node.schema.names,
        left.prov + right.prov,
        value_expr=lambda p: ax.Const(None, p.type) if p.name in nulled else ax.Column(p.name),
    )
    items = identity_items(node.schema) + extra
    return RewriteResult(an.Project(joined, items), provs)
