"""Provenance for nested subqueries (sublinks).

The demo paper supports "provenance for nested subqueries" via its EDBT
2009 companion, which defines several strategies for rewriting sublinks
so the tuples they access appear in the provenance. We implement the two
core strategies plus a safe fallback:

``GEN`` (unnesting)
    A *positive, uncorrelated* ``IN``/``EXISTS`` conjunct becomes a join
    between the rewritten outer input and the rewritten sublink query:
    ``σ_{x IN q}(T)+  →  T+ ⋈_{x = q.col} ren(q+)``. Join multiplicity is
    exactly provenance replication: one output row per witness from the
    sublink.

``LEFT`` (decorrelation + join)
    A *positive, correlated* ``IN``/``EXISTS`` whose correlation
    predicates sit in Select operators along the subplan's root spine
    (Project/Select/Distinct chain) is decorrelated: the correlated
    conjuncts are pulled out, their :class:`OuterColumn` references are
    demoted to plain columns, and the decorrelated subquery joins the
    outer input on those predicates.

``KEEP`` (fallback)
    Anything else (negated sublinks, scalar subqueries, quantified
    comparisons, correlations the extractor cannot reach) keeps the
    sublink as an opaque filter: the outer query's provenance is still
    computed, but no provenance is collected from inside the sublink —
    exactly Perm's behaviour when a sublink rewrite strategy is not
    applicable.

Strategy choice is heuristic (GEN when uncorrelated, LEFT when
correlated) or cost-based via :mod:`repro.core.strategies`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..algebra import expressions as ax
from ..algebra import nodes as an
from .context import RewriteContext
from .influence import RewriteResult, prov_items, identity_items

RewriteFn = Callable[[an.Node, RewriteContext], RewriteResult]


@dataclass
class _SublinkPlan:
    """A sublink conjunct the rewriter decided to unnest."""

    conjunct: ax.SubqueryExpr
    strategy: str  # "gen" or "left"
    decorrelated: an.Node
    # Correlation predicates with OuterColumn(level=1) demoted to Column.
    join_conditions: list[ax.Expr]


def rewrite_select_with_sublinks(
    node: an.Select, ctx: RewriteContext, rewrite: RewriteFn
) -> RewriteResult:
    """Influence rule for σ, handling sublink conjuncts in the condition."""
    child = rewrite(node.child, ctx)
    strategy_option = ctx.options.sublink_strategy

    if strategy_option == "keep":
        return RewriteResult(an.Select(child.node, node.condition), child.prov)

    plain: list[ax.Expr] = []
    unnested: list[_SublinkPlan] = []
    for conjunct in ax.conjuncts(node.condition):
        plan = _plan_sublink(conjunct, ctx, strategy_option)
        if plan is None:
            plain.append(conjunct)
        else:
            unnested.append(plan)

    if not unnested:
        return RewriteResult(an.Select(child.node, node.condition), child.prov)

    current = child.node
    provs = list(child.prov)
    for plan in unnested:
        sub_result = rewrite(plan.decorrelated, ctx)
        renamed, mapping = _rename_sub(ctx, sub_result)
        conditions = [
            ax.rename_columns(c, mapping) for c in plan.join_conditions
        ]
        membership = _membership_condition(plan.conjunct, mapping)
        if membership is not None:
            conditions.append(membership)
        condition = ax.combine_conjuncts(conditions)
        if condition is None:
            current = an.Join(current, renamed, "cross", None)
        else:
            current = an.Join(current, renamed, "inner", condition)
        provs.extend(sub_result.prov)

    remaining = ax.combine_conjuncts(plain)
    result_node: an.Node = current if remaining is None else an.Select(current, remaining)
    # Narrow back to the outer schema plus all provenance attributes so
    # parent rules see the expected shape.
    items = identity_items(child.node.schema)
    have = {name for name, _ in items}
    items += [(p.name, ax.Column(p.name)) for p in provs if p.name not in have]
    return RewriteResult(an.Project(result_node, items), provs)


# ---------------------------------------------------------------------------
# Sublink planning
# ---------------------------------------------------------------------------

def _plan_sublink(
    conjunct: ax.Expr, ctx: RewriteContext, strategy_option: str
) -> Optional[_SublinkPlan]:
    """Decide whether and how to unnest a conjunct. Returns ``None`` for
    the KEEP fallback."""
    if not isinstance(conjunct, ax.SubqueryExpr):
        return None
    if conjunct.negated or conjunct.kind not in ("in", "exists"):
        return None
    correlated_names = ax._outer_columns_of_plan(conjunct.plan, level=1)

    if not correlated_names:
        if strategy_option == "left":
            return None  # user forced LEFT; it needs correlation predicates
        return _SublinkPlan(conjunct, "gen", conjunct.plan, [])

    if strategy_option == "gen":
        return None  # user forced GEN; it cannot handle correlation
    extracted = _decorrelate(conjunct.plan)
    if extracted is None:
        return None
    decorrelated, join_conditions = extracted
    return _SublinkPlan(conjunct, "left", decorrelated, join_conditions)


def _decorrelate(plan: an.Node) -> Optional[tuple[an.Node, list[ax.Expr]]]:
    """Pull level-1 correlated conjuncts out of Select operators on the
    root spine (Project/Select/Distinct/Sort chain) of *plan*.

    The columns those conjuncts reference must survive to the subplan's
    output, so every Project above an extraction point is widened with
    the needed columns. Returns ``None`` when the correlation sits under
    an operator we cannot safely cross (join, aggregate, set operation,
    limit — crossing those would change semantics).
    """
    spine: list[an.Node] = []
    current = plan
    while True:
        if isinstance(current, an.Select):
            spine.append(current)
            current = current.child
            continue
        if isinstance(current, (an.Project, an.Distinct, an.Sort)):
            if _node_exprs_correlated(current):
                return None
            spine.append(current)
            current = current.child
            continue
        break
    # Below the spine, no correlation may remain.
    if _subtree_correlated(current):
        return None

    extracted: list[ax.Expr] = []
    needed: set[str] = set()

    def rebuild(index: int) -> an.Node:
        if index == len(spine):
            return current
        node = spine[index]
        child = rebuild(index + 1)
        if isinstance(node, an.Select):
            keep: list[ax.Expr] = []
            for conjunct in ax.conjuncts(node.condition):
                if _expr_correlated(conjunct):
                    demoted = _demote_outer(conjunct)
                    if demoted is None:
                        keep.append(conjunct)
                        continue
                    extracted.append(demoted)
                    for sub in ax.walk_expr(demoted):
                        if isinstance(sub, ax.Column) and not node.child.schema.has(sub.name):
                            # references a demoted outer column: belongs
                            # to the outer side of the join, fine.
                            continue
                        if isinstance(sub, ax.Column):
                            needed.add(sub.name)
                else:
                    keep.append(conjunct)
            remaining = ax.combine_conjuncts(keep)
            return child if remaining is None else an.Select(child, remaining)
        if isinstance(node, an.Project):
            items = list(node.items)
            have = {name for name, _ in items}
            for name in sorted(needed):
                if name not in have and child.schema.has(name):
                    items.append((name, ax.Column(name)))
            return an.Project(child, items)
        if isinstance(node, an.Distinct):
            return an.Distinct(child)
        if isinstance(node, an.Sort):
            return an.Sort(child, node.keys)
        raise AssertionError("unreachable spine node")

    # `rebuild` recurses into the child before handling each node, so a
    # Project is widened only after every Select below it has already
    # contributed to `needed` — one pass suffices.
    rebuilt = rebuild(0)
    if not extracted:
        return None
    return rebuilt, extracted


def _membership_condition(
    sublink: ax.SubqueryExpr, mapping: dict[str, str]
) -> Optional[ax.Expr]:
    """The value-membership predicate of an IN sublink (EXISTS has none),
    rewritten against the renamed subquery output."""
    if sublink.kind != "in":
        return None
    assert sublink.operand is not None
    output_name = sublink.plan.schema[0].name
    renamed = mapping.get(output_name, output_name)
    return ax.BinOp("=", sublink.operand, ax.Column(renamed))


def _rename_sub(
    ctx: RewriteContext, result: RewriteResult
) -> tuple[an.Node, dict[str, str]]:
    """Rename the subquery's original attributes with a fresh prefix
    (provenance names are globally unique already)."""
    from .influence import rename_originals

    return rename_originals(ctx, result)


# ---------------------------------------------------------------------------
# Correlation predicates
# ---------------------------------------------------------------------------

def _expr_correlated(expr: ax.Expr) -> bool:
    for sub in ax.walk_expr(expr):
        if isinstance(sub, ax.OuterColumn) and sub.level == 1:
            return True
        if isinstance(sub, ax.SubqueryExpr) and ax._outer_columns_of_plan(sub.plan, 2):
            return True
    return False


def _node_exprs_correlated(node: an.Node) -> bool:
    return any(_expr_correlated(e) for e in node.expressions())


def _subtree_correlated(node: an.Node) -> bool:
    from ..algebra.tree import walk_tree

    for sub in walk_tree(node):
        if _node_exprs_correlated(sub):
            return True
        for expr in sub.expressions():
            for inner in ax.walk_expr(expr):
                if isinstance(inner, ax.SubqueryExpr) and ax._outer_columns_of_plan(
                    inner.plan, 2
                ):
                    return True
    return False


def _demote_outer(expr: ax.Expr) -> Optional[ax.Expr]:
    """Replace OuterColumn(level=1) with plain Column references; bail
    out (return None) if the expression contains nested sublinks, whose
    inner levels we would have to shift."""
    if any(isinstance(s, ax.SubqueryExpr) for s in ax.walk_expr(expr)):
        return None

    def demote(sub: ax.Expr) -> Optional[ax.Expr]:
        if isinstance(sub, ax.OuterColumn) and sub.level == 1:
            return ax.Column(sub.name)
        if isinstance(sub, ax.OuterColumn) and sub.level > 1:
            return ax.OuterColumn(sub.name, sub.level - 1)
        return None

    return ax.map_expr(expr, demote)
