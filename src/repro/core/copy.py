"""Copy contribution semantics (C-CS / where-provenance) rewrite rules.

The paper (§2.4): Perm supports "several types of Where-provenance as
keyword COPY". Copy semantics asks *where a value was copied from*
rather than which tuples influenced a result: a base-relation attribute
contributes only if its value is literally copied into the result
(through projections, group-by keys, union branches, ...). Expressions
(``a + 1``), aggregates and filter predicates do not copy.

Two variants, as in Perm:

``COPY PARTIAL``
    only the base attributes actually copied into the result carry
    values in the provenance columns; the rest of the contributing tuple
    is NULL.

``COPY COMPLETE``
    whenever at least one attribute of a base tuple is copied, the whole
    tuple appears in the provenance (all its attributes).

The rewrite mirrors the influence rules structurally (so the provenance
schema is identical to INFLUENCE — same ``prov_*`` columns, making the
two semantics directly comparable), but tracks a static *copy map* from
output attributes to the provenance attributes they copy, and masks
provenance columns with typed NULLs at every operator where copying is
lost. External provenance attributes (``PROVENANCE (attrs)``) are never
masked — they were produced outside and are passed through verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..datatypes import SQLType
from ..errors import RewriteError
from .context import RewriteContext
from .influence import (
    identity_items,
    join_back_condition,
    null_items,
    prepare_aggregate_rewrite,
    prov_items,
)
from .naming import ProvAttr

__all__ = ["CopyResult", "rewrite_copy"]


@dataclass
class CopyResult:
    """Rewritten subtree + provenance attributes + copy tracking.

    ``copies`` maps each *original* output attribute name to the set of
    provenance attribute names whose values it copies; ``always_live``
    holds provenance attributes exempt from masking (external
    provenance).
    """

    node: an.Node
    prov: list[ProvAttr]
    copies: dict[str, frozenset[str]]
    always_live: frozenset[str] = field(default_factory=frozenset)


def rewrite_copy(node: an.Node, ctx: RewriteContext, mode: str) -> CopyResult:
    """Rewrite *node* under copy semantics (*mode*: "partial"/"complete")."""
    if mode not in ("partial", "complete"):
        raise RewriteError(f"unknown COPY mode {mode!r}")
    if isinstance(node, an.Scan):
        return _rewrite_scan(node, ctx)
    if isinstance(node, an.SingleRow):
        return CopyResult(node, [], {})
    if isinstance(node, an.BaseRelationNode):
        return _rewrite_base_relation(node, ctx)
    if isinstance(node, an.Project):
        return _rewrite_project(node, ctx, mode)
    if isinstance(node, an.Select):
        # Filters copy nothing; sublinks contribute no copy provenance.
        child = rewrite_copy(node.child, ctx, mode)
        return CopyResult(
            an.Select(child.node, node.condition), child.prov, child.copies, child.always_live
        )
    if isinstance(node, an.Join):
        left = rewrite_copy(node.left, ctx, mode)
        right = rewrite_copy(node.right, ctx, mode)
        joined = an.Join(left.node, right.node, node.kind, node.condition)
        copies = dict(left.copies)
        copies.update(right.copies)
        return CopyResult(
            joined, left.prov + right.prov, copies, left.always_live | right.always_live
        )
    if isinstance(node, an.Aggregate):
        return _rewrite_aggregate(node, ctx, mode)
    if isinstance(node, an.SetOpNode):
        return _rewrite_setop(node, ctx, mode)
    if isinstance(node, an.Distinct):
        child = rewrite_copy(node.child, ctx, mode)
        return CopyResult(an.Distinct(child.node), child.prov, child.copies, child.always_live)
    if isinstance(node, an.Sort):
        child = rewrite_copy(node.child, ctx, mode)
        return CopyResult(
            an.Sort(child.node, node.keys), child.prov, child.copies, child.always_live
        )
    if isinstance(node, an.Limit):
        return _rewrite_limit(node, ctx, mode)
    if isinstance(node, an.ProvenanceNode):
        raise RewriteError("nested ProvenanceNode must be expanded before the copy rewrite")
    raise RewriteError(f"no copy rewrite rule for {type(node).__name__}")


# ---------------------------------------------------------------------------
# Masking
# ---------------------------------------------------------------------------

def _masked_prov_items(
    provs: list[ProvAttr],
    survivors: frozenset[str],
    always_live: frozenset[str],
    mode: str,
) -> list[tuple[str, ax.Expr]]:
    """Provenance projection items with non-copied attributes NULLed.

    PARTIAL keeps exactly the surviving attributes; COMPLETE keeps every
    attribute of any relation access with at least one survivor.
    """
    live = set(survivors) | set(always_live)
    if mode == "complete":
        live_accesses = {p.access for p in provs if p.name in live}
        live |= {p.name for p in provs if p.access in live_accesses}
    items: list[tuple[str, ax.Expr]] = []
    for p in provs:
        if p.name in live:
            items.append((p.name, ax.Column(p.name)))
        else:
            items.append((p.name, ax.Const(None, p.type)))
    return items


def _survivors(copies: dict[str, frozenset[str]]) -> frozenset[str]:
    out: set[str] = set()
    for names in copies.values():
        out |= names
    return frozenset(out)


# ---------------------------------------------------------------------------
# Per-operator rules
# ---------------------------------------------------------------------------

def _rewrite_scan(node: an.Scan, ctx: RewriteContext) -> CopyResult:
    prefix = ctx.naming.relation_prefix(node.table_name)
    provs: list[ProvAttr] = []
    items = identity_items(node.schema)
    copies: dict[str, frozenset[str]] = {}
    for column, attribute in zip(node.columns, node.schema):
        prov_name = ctx.naming.attribute_name(prefix, column)
        provs.append(ProvAttr(prov_name, node.table_name, column, attribute.type, prefix))
        items.append((prov_name, ax.Column(attribute.name)))
        copies[attribute.name] = frozenset({prov_name})
    return CopyResult(an.Project(node, items), provs, copies)


def _rewrite_base_relation(node: an.BaseRelationNode, ctx: RewriteContext) -> CopyResult:
    child = node.child
    items = identity_items(child.schema)
    provs: list[ProvAttr] = []
    copies: dict[str, frozenset[str]] = {}
    always_live: set[str] = set()
    if node.provenance_attrs is None:
        prefix = ctx.naming.relation_prefix(node.relation_label)
        for attribute in child.schema:
            base = attribute.name.rsplit(".", 1)[-1]
            prov_name = ctx.naming.attribute_name(prefix, base)
            provs.append(ProvAttr(prov_name, node.relation_label, base, attribute.type, prefix))
            items.append((prov_name, ax.Column(attribute.name)))
            copies[attribute.name] = frozenset({prov_name})
    else:
        for unique_name in node.provenance_attrs:
            attribute = child.schema.attribute(unique_name)
            base = attribute.name.rsplit(".", 1)[-1]
            prov_name = base
            if prov_name in {p.name for p in provs}:
                prov_name = ctx.naming.attribute_name("prov", base)
            ctx.naming.claim(prov_name)
            provs.append(
                ProvAttr(
                    prov_name,
                    node.relation_label,
                    base,
                    attribute.type,
                    f"ext_{node.relation_label}",
                )
            )
            items.append((prov_name, ax.Column(unique_name)))
            always_live.add(prov_name)
    return CopyResult(an.Project(child, items), provs, copies, frozenset(always_live))


def _copy_source(expr: ax.Expr) -> str | None:
    """The input column an output expression *copies*, if any. Only a
    plain column reference is a copy; casts and computations are not."""
    if isinstance(expr, ax.Column):
        return expr.name
    return None


def _rewrite_project(node: an.Project, ctx: RewriteContext, mode: str) -> CopyResult:
    child = rewrite_copy(node.child, ctx, mode)
    copies: dict[str, frozenset[str]] = {}
    for name, expr in node.items:
        source = _copy_source(expr)
        copies[name] = child.copies.get(source, frozenset()) if source else frozenset()
    survivors = _survivors(copies)
    items = list(node.items) + _masked_prov_items(child.prov, survivors, child.always_live, mode)
    return CopyResult(an.Project(child.node, items), child.prov, copies, child.always_live)


def _rewrite_aggregate(node: an.Aggregate, ctx: RewriteContext, mode: str) -> CopyResult:
    from .influence import rename_originals

    # Sublink-bearing GROUP BY expressions are pre-projected below the
    # aggregate (shared with the PI-CS rule) so the join-back condition
    # never duplicates a subquery. The projected group key is a computed
    # expression, so it copies nothing — consistent with C-CS semantics.
    node = prepare_aggregate_rewrite(node, ctx)
    child = rewrite_copy(node.child, ctx, mode)
    renamed, mapping = rename_originals(ctx, _as_rewrite(child))

    conditions: list[ax.Expr] = []
    for group_name, group_expr in node.group_items:
        renamed_expr = ax.rename_columns(group_expr, mapping)
        conditions.append(ax.DistinctTest(ax.Column(group_name), renamed_expr, negated=True))
    condition = ax.combine_conjuncts(conditions) or ax.Const(True, SQLType.BOOL)

    joined = an.Join(node, renamed, "left", condition)

    copies: dict[str, frozenset[str]] = {}
    for group_name, group_expr in node.group_items:
        source = _copy_source(group_expr)
        copies[group_name] = child.copies.get(source, frozenset()) if source else frozenset()
    for agg_name, _ in node.agg_items:
        copies[agg_name] = frozenset()  # aggregate results are computed, not copied

    survivors = _survivors(copies)
    items = identity_items(node.schema) + _masked_prov_items(
        child.prov, survivors, child.always_live, mode
    )
    return CopyResult(an.Project(joined, items), child.prov, copies, child.always_live)


def _rewrite_limit(node: an.Limit, ctx: RewriteContext, mode: str) -> CopyResult:
    from .influence import rename_originals

    child = rewrite_copy(node.child, ctx, mode)
    renamed, mapping = rename_originals(ctx, _as_rewrite(child))
    original_names = node.schema.names
    condition = join_back_condition(original_names, [mapping[n] for n in original_names])
    joined = an.Join(node, renamed, "left", condition)
    items = identity_items(node.schema) + prov_items(child.prov)
    return CopyResult(an.Project(joined, items), child.prov, child.copies, child.always_live)


def _rewrite_setop(node: an.SetOpNode, ctx: RewriteContext, mode: str) -> CopyResult:
    from .influence import rename_originals

    left = rewrite_copy(node.left, ctx, mode)
    right = rewrite_copy(node.right, ctx, mode)
    out_names = node.schema.names
    left_names = node.left.schema.names
    right_names = node.right.schema.names

    if node.kind == "union":
        left_items = [
            (out, ax.Column(inner)) for out, inner in zip(out_names, left_names)
        ] + prov_items(left.prov) + null_items(right.prov)
        right_items = [
            (out, ax.Column(inner)) for out, inner in zip(out_names, right_names)
        ] + null_items(left.prov) + prov_items(right.prov)
        rewritten = an.SetOpNode(
            an.Project(left.node, left_items),
            an.Project(right.node, right_items),
            "union",
            all=True,
        )
        copies = {
            out: left.copies.get(l, frozenset()) | right.copies.get(r, frozenset())
            for out, l, r in zip(out_names, left_names, right_names)
        }
        return CopyResult(
            rewritten, left.prov + right.prov, copies, left.always_live | right.always_live
        )

    renamed_left, map_left = rename_originals(ctx, _as_rewrite(left))
    left_cond = join_back_condition(out_names, [map_left[n] for n in left_names])
    joined: an.Node = an.Join(node, renamed_left, "left", left_cond)

    if node.kind == "intersect":
        renamed_right, map_right = rename_originals(ctx, _as_rewrite(right))
        right_cond = join_back_condition(out_names, [map_right[n] for n in right_names])
        joined = an.Join(joined, renamed_right, "left", right_cond)
        right_prov = prov_items(right.prov)
        copies = {
            out: left.copies.get(l, frozenset()) | right.copies.get(r, frozenset())
            for out, l, r in zip(out_names, left_names, right_names)
        }
    else:  # except: result values come from the left input only
        right_prov = null_items(right.prov)
        copies = {
            out: left.copies.get(l, frozenset())
            for out, l in zip(out_names, left_names)
        }

    items = (
        [(out, ax.Column(out)) for out in out_names]
        + prov_items(left.prov)
        + right_prov
    )
    return CopyResult(
        an.Project(joined, items),
        left.prov + right.prov,
        copies,
        left.always_live | right.always_live,
    )


def _as_rewrite(result: CopyResult):
    """Adapter so copy results can reuse the influence helpers."""
    from .influence import RewriteResult

    return RewriteResult(result.node, result.prov)
