"""Cardinality estimation and the cost model.

Used for two purposes, both following the paper:

* ordinary query optimization (this module scores candidate logical
  plans, mirroring how the PostgreSQL planner costs the rewritten
  provenance queries);
* cost-based selection among alternative provenance rewrite strategies
  (§2.2: "We provide a heuristic and a cost-based solution for choosing
  the best rewrite strategy") — :mod:`repro.core.strategies` estimates
  each candidate rewrite with this model and keeps the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..catalog.catalog import Catalog
from ..catalog.stats import ColumnStats
from ..errors import CostEstimationError

# Default selectivities (the classic System-R constants).
_SEL_EQ = 0.1
_SEL_RANGE = 0.33
_SEL_DEFAULT = 0.5

# Per-row processing cost factors by operator.
_COST_SCAN = 1.0
_COST_FILTER = 0.2
_COST_PROJECT = 0.3
_COST_HASH_BUILD = 1.5
_COST_HASH_PROBE = 1.0
_COST_NL_PAIR = 0.6
_COST_SORT_FACTOR = 2.0
_COST_AGG = 1.5
_COST_SETOP = 1.2


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated output cardinality and cumulative cost of a plan."""

    rows: float
    cost: float


class CostEstimator:
    """Bottom-up cardinality/cost estimation over logical trees.

    ``cache=True`` memoizes estimates by node identity. Only use it when
    every estimated tree outlives the estimator's use (one planning
    pass, one EXPLAIN render): freed nodes could otherwise recycle an
    ``id`` and hit a stale entry. The optimizer's join-order search
    estimates short-lived candidate trees and must NOT cache.
    """

    def __init__(self, catalog: Catalog, cache: bool = False):
        self.catalog = catalog
        self._cache: dict[int, PlanEstimate] | None = {} if cache else None

    # ------------------------------------------------------------------
    def estimate(self, node: an.Node) -> PlanEstimate:
        if self._cache is None:
            return self._estimate(node)
        hit = self._cache.get(id(node))
        if hit is None:
            hit = self._estimate(node)
            self._cache[id(node)] = hit
        return hit

    def _estimate(self, node: an.Node) -> PlanEstimate:
        if isinstance(node, an.Scan):
            # Unknown relations must not silently estimate: a fabricated
            # cardinality would feed the join-order search garbage. The
            # catalog is the single source of truth — views are unfolded
            # by the analyzer and backend fragments never appear in
            # logical trees, so anything unresolvable here is a caller
            # bug and callers making cost-based *choices* catch this and
            # keep the syntactic plan.
            if not (
                self.catalog.has_table(node.table_name)
                or self.catalog.has_matview(node.table_name)
            ):
                kind = "view" if self.catalog.has_view(node.table_name) else "relation"
                raise CostEstimationError(
                    f"cannot estimate scan of {kind} {node.table_name!r}: "
                    "no table statistics in the catalog"
                )
            rows = float(self.catalog.scan_entry(node.table_name).stats().row_count)
            return PlanEstimate(rows, rows * _COST_SCAN)

        if isinstance(node, an.SingleRow):
            return PlanEstimate(1.0, 0.0)

        if isinstance(node, an.Project):
            child = self.estimate(node.child)
            return PlanEstimate(child.rows, child.cost + child.rows * _COST_PROJECT)

        if isinstance(node, an.Select):
            child = self.estimate(node.child)
            selectivity = self._selectivity(node.condition, node)
            rows = max(child.rows * selectivity, 0.0)
            return PlanEstimate(rows, child.cost + child.rows * _COST_FILTER)

        if isinstance(node, an.Join):
            return self._estimate_join(node)

        if isinstance(node, an.Aggregate):
            child = self.estimate(node.child)
            if not node.group_items:
                rows = 1.0
            else:
                distinct = self._distinct_estimate(node)
                rows = min(child.rows, distinct)
            return PlanEstimate(rows, child.cost + child.rows * _COST_AGG)

        if isinstance(node, an.SetOpNode):
            left = self.estimate(node.left)
            right = self.estimate(node.right)
            if node.kind == "union":
                rows = left.rows + right.rows
                if not node.all:
                    rows *= 0.9  # mild dedup estimate
            elif node.kind == "intersect":
                rows = min(left.rows, right.rows) * 0.5
            else:  # except
                rows = left.rows * 0.5
            cost = left.cost + right.cost + (left.rows + right.rows) * _COST_SETOP
            return PlanEstimate(rows, cost)

        if isinstance(node, an.Distinct):
            child = self.estimate(node.child)
            return PlanEstimate(child.rows * 0.9, child.cost + child.rows * _COST_SETOP)

        if isinstance(node, an.Sort):
            child = self.estimate(node.child)
            import math

            comparisons = child.rows * max(math.log2(child.rows), 1.0) if child.rows > 1 else 1.0
            return PlanEstimate(child.rows, child.cost + comparisons * _COST_SORT_FACTOR)

        if isinstance(node, an.Limit):
            child = self.estimate(node.child)
            limit_rows = child.rows
            if node.limit is not None and isinstance(node.limit, ax.Const) and isinstance(
                node.limit.value, int
            ):
                limit_rows = min(child.rows, float(node.limit.value))
            return PlanEstimate(limit_rows, child.cost)

        if isinstance(node, (an.ProvenanceNode, an.BaseRelationNode)):
            return self.estimate(node.child)

        # Unknown operator: be pessimistic but finite.
        children = [self.estimate(c) for c in node.children]
        rows = max((c.rows for c in children), default=1.0)
        cost = sum(c.cost for c in children) + rows
        return PlanEstimate(rows, cost)

    # ------------------------------------------------------------------
    def _estimate_join(self, node: an.Join) -> PlanEstimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        if node.condition is None:
            rows = left.rows * right.rows
            cost = left.cost + right.cost + rows * _COST_NL_PAIR
            return PlanEstimate(rows, cost)

        equi = 0
        selectivity = 1.0
        for conjunct in ax.conjuncts(node.condition):
            if self._is_equi(conjunct, node):
                equi += 1
                selectivity *= self._equi_selectivity(conjunct, node)
            else:
                selectivity *= _SEL_DEFAULT

        rows = left.rows * right.rows * selectivity
        if node.kind == "left":
            rows = max(rows, left.rows)
        elif node.kind == "right":
            rows = max(rows, right.rows)
        elif node.kind == "full":
            rows = max(rows, left.rows, right.rows)

        if equi:
            cost = (
                left.cost
                + right.cost
                + right.rows * _COST_HASH_BUILD
                + left.rows * _COST_HASH_PROBE
                + rows
            )
        else:
            cost = left.cost + right.cost + left.rows * right.rows * _COST_NL_PAIR
        return PlanEstimate(max(rows, 0.0), cost)

    def _is_equi(self, conjunct: ax.Expr, join: an.Join) -> bool:
        if isinstance(conjunct, ax.BinOp) and conjunct.op == "=":
            a, b = conjunct.left, conjunct.right
        elif isinstance(conjunct, ax.DistinctTest) and conjunct.negated:
            a, b = conjunct.left, conjunct.right
        else:
            return False
        return isinstance(a, ax.Column) and isinstance(b, ax.Column)

    def _equi_selectivity(self, conjunct: ax.Expr, join: an.Join) -> float:
        left_ndv = self._column_ndv(conjunct.left, join)  # type: ignore[attr-defined]
        right_ndv = self._column_ndv(conjunct.right, join)  # type: ignore[attr-defined]
        ndv = max(left_ndv or 0, right_ndv or 0)
        if ndv <= 0:
            return _SEL_EQ
        return 1.0 / ndv

    def _column_stats(self, expr: ax.Expr, root: an.Node) -> ColumnStats | None:
        """Base-table statistics of a column, traced back to its scan."""
        if not isinstance(expr, ax.Column):
            return None
        target = expr.name
        for node in _walk(root):
            if isinstance(node, an.Scan) and node.schema.has(target):
                position = node.schema.index_of(target)
                column = node.columns[position]
                if self.catalog.has_table(node.table_name) or self.catalog.has_matview(
                    node.table_name
                ):
                    return self.catalog.scan_entry(node.table_name).stats().column(column)
        return None

    def _column_ndv(self, expr: ax.Expr, root: an.Node) -> int | None:
        """Distinct-count of a column, traced back to a base-table scan."""
        stats = self._column_stats(expr, root)
        return stats.n_distinct if stats is not None else None

    def _distinct_estimate(self, node: an.Aggregate) -> float:
        product = 1.0
        for _, expr in node.group_items:
            ndv = self._column_ndv(expr, node.child)
            product *= float(ndv) if ndv else 10.0
        return product

    def _selectivity(self, condition: ax.Expr, node: an.Select) -> float:
        selectivity = 1.0
        for conjunct in ax.conjuncts(condition):
            if isinstance(conjunct, ax.BinOp) and conjunct.op == "=":
                ndv = self._column_ndv(conjunct.left, node) or self._column_ndv(
                    conjunct.right, node
                )
                selectivity *= (1.0 / ndv) if ndv else _SEL_EQ
            elif isinstance(conjunct, ax.BinOp) and conjunct.op in ("<", "<=", ">", ">="):
                selectivity *= self._range_selectivity(conjunct, node)
            else:
                selectivity *= _SEL_DEFAULT
        return selectivity

    def _range_selectivity(self, conjunct: ax.BinOp, root: an.Node) -> float:
        """Selectivity of ``column <op> constant`` by interpolating the
        constant into the column's [min, max] from table statistics;
        falls back to the System-R constant when the shape or the
        statistics do not allow it."""
        column, constant, op = conjunct.left, conjunct.right, conjunct.op
        if not isinstance(constant, ax.Const):
            column, constant = conjunct.right, conjunct.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        value = constant.value if isinstance(constant, ax.Const) else None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return _SEL_RANGE
        stats = self._column_stats(column, root)
        if (
            stats is None
            or stats.min_value is None
            or stats.max_value is None
            or stats.max_value <= stats.min_value
        ):
            return _SEL_RANGE
        below = (value - stats.min_value) / (stats.max_value - stats.min_value)
        fraction = below if op in ("<", "<=") else 1.0 - below
        fraction = min(max(fraction, 0.0), 1.0)
        return fraction * (1.0 - stats.null_fraction)


def _walk(root: an.Node):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)


class CostModel:
    """Facade combining estimation with plan comparison."""

    def __init__(self, catalog: Catalog):
        self.estimator = CostEstimator(catalog)

    def cost(self, node: an.Node) -> float:
        return self.estimator.estimate(node).cost

    def rows(self, node: an.Node) -> float:
        return self.estimator.estimate(node).rows

    def cheapest(self, candidates: list[an.Node]) -> tuple[an.Node, float]:
        """Return the candidate with the lowest estimated cost."""
        assert candidates, "cheapest() needs at least one candidate"
        best = None
        best_cost = float("inf")
        for candidate in candidates:
            candidate_cost = self.cost(candidate)
            if candidate_cost < best_cost:
                best = candidate
                best_cost = candidate_cost
        assert best is not None
        return best, best_cost
