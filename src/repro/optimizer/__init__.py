"""Logical optimizer: rewrite rules and the cost model.

Perm deliberately represents provenance computations as ordinary
relational queries so that "Perm benefits from the query optimization
techniques incorporated into PostgreSQL" (paper §2.3). This package is
our stand-in for those techniques: classic logical rewrites plus a
cardinality-based cost model that also powers the cost-based
rewrite-strategy selection of §2.2.
"""

from .cost import CostEstimator, CostModel, PlanEstimate  # noqa: F401
from .joinorder import reorder_joins  # noqa: F401
from .optimizer import OPTIMIZER_MODES, Optimizer, optimize  # noqa: F401
from .prune import prune_plan  # noqa: F401
