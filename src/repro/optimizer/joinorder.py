"""Cost-based join reordering for provenance join-backs.

The paper's central performance argument (§2.2/§5) is that provenance
rewriting stays practical *because* the rewritten query — the original
query joined back with every contributing base relation — is handed to a
cost-based optimizer. This module is that stage: it re-shapes inner-join
trees using the catalog statistics in :class:`~repro.optimizer.cost.CostEstimator`
instead of compiling joins in syntactic order.

**Order preservation is a hard invariant.** Every execution engine here
emits join output in probe(left)-major order, so the output order of any
inner-join tree is lexicographic in its left-to-right *leaf sequence* —
independent of the tree's shape — and the SQLite backend's hidden
ordering channel concatenates leaf ordinals in the same sequence.
Therefore the search space is the association trees over the fixed leaf
sequence (plus condition placement at each conjunct's lowest covering
join): any such re-shape provably returns bit-identical rows in
bit-identical order on all three engines, which the optimizer-on vs
optimizer-off differential corpus asserts. Commuting leaves would change
the engine-defined row order of ORDER-BY-free queries and is deliberately
out of scope.

Search strategy, following the classic recipe:

* **DP** over contiguous intervals of the term sequence (all Catalan
  shapes, matrix-chain style) for regions of up to ``dp_limit`` (~8)
  relations;
* **greedy chaining** beyond that: repeatedly merge the adjacent pair
  with the cheapest estimated join until one tree remains.

Join conditions are split into conjuncts; each conjunct is applied at
the lowest join covering every term it references (single-term conjuncts
become selections on their term, term-free conjuncts stay at the region
top). The re-shaped tree is adopted only when its estimated cost beats
the syntactic shape; estimation failures
(:class:`~repro.errors.CostEstimationError`) keep the syntactic plan —
join ordering never runs on fabricated cardinalities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..errors import CostEstimationError
from .cost import CostEstimator, PlanEstimate
from .rules import expr_cannot_raise

__all__ = ["reorder_joins", "DEFAULT_DP_LIMIT"]

DEFAULT_DP_LIMIT = 8

# Only adopt a re-shaped tree on a clear estimated win; ties keep the
# syntactic shape (no churn, stable EXPLAIN output).
_IMPROVEMENT_FACTOR = 0.999

_REGION_KINDS = ("inner", "cross")


@dataclass
class _Conjunct:
    """One AND-conjunct of a region's join conditions.

    ``mask`` holds the indices of the terms whose columns the conjunct
    references (sublink subplans included via their level-1 outer
    references); ``order`` preserves the original relative evaluation
    order when conjuncts recombine at one join.
    """

    expr: ax.Expr
    mask: frozenset[int]
    order: int


class _Region:
    """A maximal inner/cross-join subtree, flattened."""

    def __init__(self, root: an.Join):
        self.root = root
        self.terms: list[an.Node] = []
        self._condition_exprs: list[ax.Expr] = []
        self._flatten(root)

    def _flatten(self, node: an.Node) -> None:
        if isinstance(node, an.Join) and node.kind in _REGION_KINDS:
            self._flatten(node.left)
            self._flatten(node.right)
            if node.condition is not None:
                self._condition_exprs.extend(ax.conjuncts(node.condition))
        else:
            self.terms.append(node)

    def conjuncts(self, terms: list[an.Node]) -> tuple[list[_Conjunct], list[_Conjunct]]:
        """Split collected condition conjuncts into (term-referencing,
        term-free) lists with term masks resolved against *terms*."""
        owner: dict[str, int] = {}
        for index, term in enumerate(terms):
            for attribute in term.schema:
                owner[attribute.name.lower()] = index
        keyed: list[_Conjunct] = []
        free: list[_Conjunct] = []
        for order, expr in enumerate(self._condition_exprs):
            mask = frozenset(
                owner[name.lower()]
                for name in ax.columns_used(expr)
                if name.lower() in owner
            )
            conjunct = _Conjunct(expr, mask, order)
            (keyed if mask else free).append(conjunct)
        return keyed, free

    def rebuild_syntactic(self, terms: list[an.Node]) -> an.Node:
        """The original join structure over (re-optimized) *terms*."""
        iterator = iter(terms)

        def rebuild(node: an.Node) -> an.Node:
            if isinstance(node, an.Join) and node.kind in _REGION_KINDS:
                left = rebuild(node.left)
                right = rebuild(node.right)
                return an.Join(left, right, node.kind, node.condition)
            return next(iterator)

        return rebuild(self.root)


def _join_over(
    left: an.Node, right: an.Node, conjuncts: list[_Conjunct]
) -> an.Join:
    """An inner (or, without conditions, cross) join applying *conjuncts*
    in their original relative order."""
    condition = ax.combine_conjuncts(
        [c.expr for c in sorted(conjuncts, key=lambda c: c.order)]
    )
    kind = "cross" if condition is None else "inner"
    return an.Join(left, right, kind, condition)


def _base_term(term: an.Node, conjuncts: list[_Conjunct], index: int) -> an.Node:
    """Attach single-term conjuncts (``a.x IS NOT DISTINCT FROM a.x``
    style residuals the rules left inside join conditions) as a selection
    on their term — valid below inner joins, and order-preserving."""
    mine = [c for c in conjuncts if c.mask == frozenset({index})]
    if not mine:
        return term
    condition = ax.combine_conjuncts(
        [c.expr for c in sorted(mine, key=lambda c: c.order)]
    )
    assert condition is not None
    return an.Select(term, condition)


def _spanning(
    conjuncts: list[_Conjunct], lo: int, split: int, hi: int
) -> list[_Conjunct]:
    """Conjuncts whose lowest covering join is the ([lo..split],
    [split+1..hi]) combination: fully inside the interval, touching both
    sides of the cut."""
    out = []
    for c in conjuncts:
        if not c.mask:
            continue
        if min(c.mask) < lo or max(c.mask) > hi:
            continue
        if any(t <= split for t in c.mask) and any(t > split for t in c.mask):
            out.append(c)
    return out


Estimate = Callable[[an.Node], PlanEstimate]


def _dp_best(
    terms: list[an.Node],
    conjuncts: list[_Conjunct],
    estimate_fn: Estimate,
) -> tuple[an.Node, PlanEstimate]:
    """Best association tree over the fixed term sequence (interval DP)."""
    n = len(terms)
    best: dict[tuple[int, int], tuple[an.Node, PlanEstimate]] = {}
    for i, term in enumerate(terms):
        node = _base_term(term, conjuncts, i)
        best[(i, i)] = (node, estimate_fn(node))
    multi = [c for c in conjuncts if len(c.mask) > 1]
    for span in range(2, n + 1):
        for lo in range(0, n - span + 1):
            hi = lo + span - 1
            cell: Optional[tuple[an.Node, PlanEstimate]] = None
            for split in range(lo, hi):
                left, _ = best[(lo, split)]
                right, _ = best[(split + 1, hi)]
                candidate = _join_over(
                    left, right, _spanning(multi, lo, split, hi)
                )
                estimate = estimate_fn(candidate)
                if cell is None or estimate.cost < cell[1].cost:
                    cell = (candidate, estimate)
            assert cell is not None
            best[(lo, hi)] = cell
    return best[(0, n - 1)]


def _greedy_best(
    terms: list[an.Node],
    conjuncts: list[_Conjunct],
    estimate_fn: Estimate,
) -> tuple[an.Node, PlanEstimate]:
    """Greedy adjacent-pair chaining for long term sequences: each step
    merges the neighboring pair whose join is estimated cheapest."""
    multi = [c for c in conjuncts if len(c.mask) > 1]
    entries: list[tuple[int, int, an.Node]] = []
    for i, term in enumerate(terms):
        entries.append((i, i, _base_term(term, conjuncts, i)))
    while len(entries) > 1:
        chosen = None
        for position in range(len(entries) - 1):
            lo, split, left = entries[position]
            _, hi, right = entries[position + 1]
            candidate = _join_over(left, right, _spanning(multi, lo, split, hi))
            estimate = estimate_fn(candidate)
            if chosen is None or estimate.cost < chosen[1].cost:
                chosen = (position, estimate, candidate, lo, hi)
        assert chosen is not None
        position, _, candidate, lo, hi = chosen
        entries[position : position + 2] = [(lo, hi, candidate)]
    node = entries[0][2]
    return node, estimate_fn(node)


def reorder_joins(
    root: an.Node,
    estimator: CostEstimator,
    dp_limit: int = DEFAULT_DP_LIMIT,
    on_reorder: Optional[Callable[[], None]] = None,
) -> an.Node:
    """Re-shape every maximal inner/cross-join region of *root* by
    estimated cost, keeping each region's leaf sequence (and therefore
    its output row order) intact. ``on_reorder`` fires once per region
    whose shape was actually changed."""

    def process(node: an.Node) -> an.Node:
        if isinstance(node, an.Join) and node.kind in _REGION_KINDS:
            return process_region(node)
        children = [process(child) for child in node.children]
        return node.with_children(children)

    def process_region(join: an.Join) -> an.Node:
        region = _Region(join)
        terms = [process(term) for term in region.terms]
        syntactic = region.rebuild_syntactic(terms)
        if len(terms) < 3:
            return syntactic
        # Identity-memoized estimation for this region's search: the
        # deep term subtrees are re-estimated under every candidate
        # otherwise. The keepalive list pins every estimated node so a
        # discarded candidate can never recycle a cached id.
        cached = CostEstimator(estimator.catalog, cache=True)
        keepalive: list[an.Node] = [syntactic]

        def estimate_fn(node: an.Node) -> PlanEstimate:
            keepalive.append(node)
            return cached.estimate(node)

        try:
            keyed, free = region.conjuncts(terms)
            # An error-capable conjunct (1/x, CAST, sublink) is evaluated
            # against different intermediate row sets under a different
            # shape — which rows raise could change. The contract is
            # identical errors across optimizer modes, so such regions
            # keep their syntactic shape.
            if any(not expr_cannot_raise(c.expr) for c in keyed + free):
                return syntactic
            baseline = estimate_fn(syntactic)
            if len(terms) <= dp_limit:
                candidate, estimate = _dp_best(terms, keyed, estimate_fn)
            else:
                candidate, estimate = _greedy_best(terms, keyed, estimate_fn)
            if free:
                top = ax.combine_conjuncts(
                    [c.expr for c in sorted(free, key=lambda c: c.order)]
                )
                assert top is not None
                candidate = an.Select(candidate, top)
                estimate = estimate_fn(candidate)
        except CostEstimationError:
            # No grounded cardinalities: never reorder on guesses.
            return syntactic
        if estimate.cost < baseline.cost * _IMPROVEMENT_FACTOR:
            if on_reorder is not None:
                on_reorder()
            return candidate
        return syntactic

    return process(root)
