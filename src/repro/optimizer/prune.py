"""Provenance-aware column pruning and redundant join-back elimination.

The provenance rewrite rules double the width of every base-relation
access (original attributes plus their ``prov_*`` duplicates) and join
results back to rewritten inputs. Two cost-free cleanups follow:

**Column pruning.** A projection item nobody above references is dead
weight — most importantly the renamed original attributes of a rewritten
input below an aggregation join-back, and provenance duplicates that a
COPY-semantics mask or an enclosing query projected away. Pruning drops
such items from existing projections (it never inserts new operators, so
the row engine pays nothing extra and the vectorized and SQLite engines
move strictly less data). Row multiset and order are untouched: removing
projection columns changes tuple width only.

**Redundant join-back elimination.** The limit/set-operation rewrite
rules re-attach provenance via ``original ⟕_{A ≐ A'} ren(T+)``. When an
enclosing projection discards every column of the join-back's right side
(typically: all provenance attributes were projected away) *and* some
equi-conjunct binds a right-side column that is provably unique — via
exact per-version table statistics, or structurally via a single GROUP
BY key — each left row matches at most once, so the left join neither
filters nor duplicates: it can be dropped entirely. Left rows pass
through in their own order, so this is row-order-preserving too.

Statistics-derived uniqueness is a fact about the *current* heap, and
row-level DML does not bump the catalog version that keys the plan
cache. Every elimination therefore records a ``(table, heap version)``
dependency; plans revalidate these before execution and transparently
re-prepare when stale (:class:`repro.engine.pipeline.PreparedPlan`).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..catalog.catalog import Catalog
from .rules import expr_cannot_raise, plan_cannot_raise

__all__ = ["prune_plan"]

StatsDep = tuple[str, int]


def _is_scan_chain(node: an.Node) -> bool:
    """A scan, possibly under pushed-down filters: the shapes whose full
    width would otherwise flow into a join untouched."""
    while isinstance(node, an.Select):
        node = node.child
    return isinstance(node, an.Scan)


def _used(exprs: list[ax.Expr]) -> set[str]:
    out: set[str] = set()
    for expr in exprs:
        out.update(name.lower() for name in ax.columns_used(expr))
    return out


def _unique_columns(
    node: an.Node, catalog: Catalog, deps: list[StatsDep]
) -> set[str]:
    """Output attribute names (lowercased) that are individually unique
    and non-NULL across *node*'s output. Conservative: empty set when in
    doubt. Statistics-derived facts append their table dependency to
    *deps* so callers can revalidate them later."""
    if isinstance(node, an.Scan):
        if not (catalog.has_table(node.table_name) or catalog.has_matview(node.table_name)):
            return set()
        entry = catalog.scan_entry(node.table_name)
        stats = entry.stats()
        unique = {
            out.name.lower()
            for column, out in zip(node.columns, node.schema)
            if stats.column_is_unique(column)
        }
        if unique:
            deps.append((node.table_name.lower(), entry.table.version))
        return unique
    if isinstance(node, (an.Select, an.Sort, an.Limit, an.Distinct)):
        # Row subsets / permutations keep per-column uniqueness.
        return _unique_columns(node.child, catalog, deps)
    if isinstance(node, an.BaseRelationNode):
        return _unique_columns(node.child, catalog, deps)
    if isinstance(node, an.Project):
        inherited = _unique_columns(node.child, catalog, deps)
        return {
            name.lower()
            for name, expr in node.items
            if isinstance(expr, ax.Column) and expr.name.lower() in inherited
        }
    if isinstance(node, an.Aggregate):
        # Grouping makes a single group key unique by construction (the
        # NULL group included) — no statistics dependency needed.
        if len(node.group_items) == 1:
            return {node.group_items[0][0].lower()}
        return set()
    return set()


def _joinback_is_redundant(
    join: an.Join, catalog: Catalog
) -> Optional[list[StatsDep]]:
    """Whether the left join can be dropped because every left row
    matches at most one right row: some conjunct equates a provably
    unique right-side column with a left-side-only expression. Returns
    the statistics dependencies of that proof (possibly empty for purely
    structural uniqueness), or ``None`` when the join must stay."""
    if join.kind != "left" or join.condition is None:
        return None
    # Elimination skips evaluating the right subtree and the ON
    # condition entirely; both must be provably unable to raise, or a
    # data-dependent error (1/0, CAST, multi-row scalar sublink) would
    # appear under optimizer="rules" but not under "cost".
    if not expr_cannot_raise(join.condition):
        return None
    if not plan_cannot_raise(join.right):
        return None
    left_names = {a.name.lower() for a in join.left.schema}
    right_names = {a.name.lower() for a in join.right.schema}
    right_unique: Optional[set[str]] = None
    deps: list[StatsDep] = []
    for conjunct in ax.conjuncts(join.condition):
        if isinstance(conjunct, ax.BinOp) and conjunct.op == "=":
            sides = (conjunct.left, conjunct.right)
        elif isinstance(conjunct, ax.DistinctTest) and conjunct.negated:
            sides = (conjunct.left, conjunct.right)
        else:
            continue
        for key_side, other_side in (sides, sides[::-1]):
            if not (
                isinstance(key_side, ax.Column)
                and key_side.name.lower() in right_names
            ):
                continue
            if not _used([other_side]) <= left_names:
                continue
            if right_unique is None:
                right_unique = _unique_columns(join.right, catalog, deps)
            if key_side.name.lower() in right_unique:
                return deps
    return None


def prune_plan(
    root: an.Node,
    catalog: Catalog,
    on_prune: Optional[Callable[[int], None]] = None,
    on_eliminate: Optional[Callable[[], None]] = None,
    stats_deps: Optional[list[StatsDep]] = None,
) -> an.Node:
    """Prune dead projection columns and drop redundant join-backs.

    ``on_prune(n)`` fires per projection with the number of dropped
    items; ``on_eliminate()`` once per dropped join-back. Dependencies of
    statistics-based eliminations are appended to ``stats_deps``.
    """
    deps: list[StatsDep] = []

    def visit(node: an.Node, needed: Optional[set[str]]) -> an.Node:
        if isinstance(node, an.Project):
            return visit_project(node, needed)
        if isinstance(node, an.Select):
            child_needed = (
                None if needed is None else needed | _used([node.condition])
            )
            return an.Select(visit(node.child, child_needed), node.condition)
        if isinstance(node, an.Join):
            condition_used = (
                _used([node.condition]) if node.condition is not None else set()
            )
            if needed is None:
                left_needed = right_needed = None
            else:
                wanted = needed | condition_used
                left_needed = {
                    a.name.lower() for a in node.left.schema
                } & wanted
                right_needed = {
                    a.name.lower() for a in node.right.schema
                } & wanted
            return an.Join(
                narrow(visit(node.left, left_needed), left_needed),
                narrow(visit(node.right, right_needed), right_needed),
                node.kind,
                node.condition,
            )
        if isinstance(node, an.Aggregate):
            child_needed = _used(
                [expr for _, expr in node.group_items]
                + [agg.arg for _, agg in node.agg_items if agg.arg is not None]
            )
            return an.Aggregate(
                visit(node.child, child_needed), node.group_items, node.agg_items
            )
        if isinstance(node, an.Sort):
            child_needed = (
                None
                if needed is None
                else needed | _used([key.expr for key in node.keys])
            )
            return an.Sort(visit(node.child, child_needed), node.keys)
        if isinstance(node, an.Limit):
            return an.Limit(visit(node.child, needed), node.limit, node.offset)
        if isinstance(node, an.BaseRelationNode):
            return node.with_children([visit(node.child, needed)])
        # Distinct compares whole rows; set operations are positional:
        # every column below them is semantically live. Leaves and any
        # unknown operator keep their full output too.
        children = [visit(child, None) for child in node.children]
        return node.with_children(children) if children else node

    def narrow(child: an.Node, needed: Optional[set[str]]) -> an.Node:
        """Insert a narrowing projection above a scan chain feeding a
        join when most of its columns are dead. Existing projections are
        pruned in place instead (see :func:`visit_project`); the
        at-least-half threshold keeps the row engine from paying a
        per-row tuple rebuild for marginal width savings."""
        if needed is None or not _is_scan_chain(child):
            return child
        names = [a.name for a in child.schema]
        kept = [n for n in names if n.lower() in needed]
        if not kept:
            kept = names[:1]
        if len(kept) * 2 > len(names):
            return child
        if on_prune is not None:
            on_prune(len(names) - len(kept))
        return an.Project(child, [(n, ax.Column(n)) for n in kept])

    def visit_project(node: an.Project, needed: Optional[set[str]]) -> an.Node:
        if needed is None:
            kept = list(node.items)
        else:
            # A dead item is only dropped when its evaluation provably
            # cannot raise — pruning must never swallow a runtime error
            # (1/0, CAST, sublink) the rules-only pipeline would surface.
            kept = [
                (name, expr)
                for name, expr in node.items
                if name.lower() in needed or not expr_cannot_raise(expr)
            ]
            if not kept:
                # A projection must produce at least one column; keep the
                # cheapest survivor (parents ignore it anyway).
                kept = [node.items[0]]
            dropped = len(node.items) - len(kept)
            if dropped and on_prune is not None:
                on_prune(dropped)
        child_needed = _used([expr for _, expr in kept])
        child: an.Node = node.child
        while isinstance(child, an.Join) and not (
            child_needed & {a.name.lower() for a in child.right.schema}
        ):
            proof = _joinback_is_redundant(child, catalog)
            if proof is None:
                break
            deps.extend(proof)
            child = child.left
            if on_eliminate is not None:
                on_eliminate()
        return an.Project(visit(child, child_needed), kept)

    result = visit(root, None)
    if stats_deps is not None:
        # Deduplicate: several eliminations may lean on the same table.
        seen = set(stats_deps)
        for dep in deps:
            if dep not in seen:
                seen.add(dep)
                stats_deps.append(dep)
    return result
