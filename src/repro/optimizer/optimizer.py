"""Optimizer driver: applies the logical rules to a fixpoint.

Rules run bottom-up; after a full pass changes the tree, another pass
runs, up to a small iteration bound (the rules are strictly
simplifying, so the bound exists only as a safety net). Sublink
subplans are optimized recursively with the same rules.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..algebra import nodes as an
from ..algebra.tree import transform_subplans, transform_tree
from ..catalog.catalog import Catalog
from .rules import DEFAULT_RULES

Rule = Callable[[an.Node], Optional[an.Node]]

_MAX_PASSES = 12


class Optimizer:
    """Rule-based logical optimizer."""

    def __init__(self, catalog: Catalog, rules: Sequence[Rule] = DEFAULT_RULES):
        self.catalog = catalog
        self.rules = tuple(rules)

    def optimize(self, node: an.Node) -> an.Node:
        """Optimize *node* (and all sublink subplans) to a fixpoint."""
        current = transform_subplans(node, self._optimize_plan)
        return self._optimize_plan(current)

    # ------------------------------------------------------------------
    def _optimize_plan(self, node: an.Node) -> an.Node:
        current = node
        for _ in range(_MAX_PASSES):
            changed = False

            def apply_rules(candidate: an.Node) -> Optional[an.Node]:
                nonlocal changed
                result = candidate
                fired = True
                while fired:
                    fired = False
                    for rule in self.rules:
                        replacement = rule(result)
                        if replacement is not None:
                            result = replacement
                            changed = True
                            fired = True
                return result if result is not candidate else None

            current = transform_tree(current, apply_rules)
            if not changed:
                return current
        return current


def optimize(catalog: Catalog, node: an.Node) -> an.Node:
    """Convenience: optimize *node* with the default rules."""
    return Optimizer(catalog).optimize(node)
