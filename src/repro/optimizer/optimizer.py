"""Optimizer driver: rule fixpoint plus the cost-based plan stages.

The pipeline per plan (and, recursively, per sublink subplan):

1. **rule fixpoint** — the simplifying rewrites of :mod:`.rules`
   (constant folding, selection pushdown, projection collapsing) run
   bottom-up until nothing fires;
2. **join-back elimination + column pruning** (:mod:`.prune`) — drop
   provably redundant provenance join-backs and dead projection columns;
3. **cost-based join reordering** (:mod:`.joinorder`) — re-shape
   inner-join regions by estimated cost, preserving row order;
4. a final **cleanup fixpoint** over the re-shaped tree.

Stages 2–4 run only in ``mode="cost"`` (the default); ``mode="rules"``
keeps the historic rules-only behavior and compiles joins in syntactic
order — the differential corpus runs both modes and asserts bit-identical
results, row order included.

The rule fixpoint is bounded by ``_MAX_PASSES`` purely as a safety net:
the shipped rules are strictly simplifying, so hitting the bound means a
(mis)configured rule list oscillates. That condition is no longer
silent — it emits a :class:`RuntimeWarning` and shows up in the pipeline
counters (``optimize_bound_hits``), alongside ``optimize_passes``.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..algebra import nodes as an
from ..algebra.tree import transform_subplans, transform_tree
from ..catalog.catalog import Catalog
from .cost import CostEstimator
from .joinorder import DEFAULT_DP_LIMIT, reorder_joins
from .prune import StatsDep, prune_plan
from .rules import DEFAULT_RULES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.pipeline import PipelineCounters

Rule = Callable[[an.Node], Optional[an.Node]]

_MAX_PASSES = 12

OPTIMIZER_MODES = ("cost", "rules")


class Optimizer:
    """Rule-based logical optimizer with a cost-based join stage.

    ``mode`` selects ``"cost"`` (rules + join-back elimination + column
    pruning + cost-based join reordering) or ``"rules"`` (rules only,
    syntactic join order). ``counters`` may be a
    :class:`~repro.engine.pipeline.PipelineCounters` to expose pass and
    reorder/prune accounting; ``stats_deps`` (reset per :meth:`optimize`
    call) lists the ``(table, heap version)`` facts any statistics-based
    elimination relied on, so cached plans can revalidate them.
    """

    def __init__(
        self,
        catalog: Catalog,
        rules: Sequence[Rule] = DEFAULT_RULES,
        mode: str = "cost",
        dp_limit: int = DEFAULT_DP_LIMIT,
        counters: "Optional[PipelineCounters]" = None,
    ):
        if mode not in OPTIMIZER_MODES:
            raise ValueError(
                f"unknown optimizer mode {mode!r} (valid: {', '.join(OPTIMIZER_MODES)})"
            )
        self.catalog = catalog
        self.rules = tuple(rules)
        self.mode = mode
        self.dp_limit = dp_limit
        self.counters = counters
        self.estimator = CostEstimator(catalog)
        self.stats_deps: list[StatsDep] = []

    def optimize(self, node: an.Node) -> an.Node:
        """Optimize *node* (and all sublink subplans) to a fixpoint."""
        self.stats_deps = []
        current = transform_subplans(node, self._optimize_plan)
        return self._optimize_plan(current)

    # ------------------------------------------------------------------
    def _optimize_plan(self, node: an.Node) -> an.Node:
        current = self._rule_fixpoint(node)
        if self.mode != "cost":
            return current
        current = prune_plan(
            current,
            self.catalog,
            on_prune=self._count_pruned,
            on_eliminate=self._count_eliminated,
            stats_deps=self.stats_deps,
        )
        current = reorder_joins(
            current,
            self.estimator,
            dp_limit=self.dp_limit,
            on_reorder=self._count_reordered,
        )
        return self._rule_fixpoint(current)

    def _rule_fixpoint(self, node: an.Node) -> an.Node:
        current = node
        passes = 0
        converged = False
        for _ in range(_MAX_PASSES):
            passes += 1
            changed = False

            def apply_rules(candidate: an.Node) -> Optional[an.Node]:
                nonlocal changed
                result = candidate
                fired = True
                while fired:
                    fired = False
                    for rule in self.rules:
                        replacement = rule(result)
                        if replacement is not None:
                            result = replacement
                            changed = True
                            fired = True
                return result if result is not candidate else None

            current = transform_tree(current, apply_rules)
            if not changed:
                converged = True
                break
        if self.counters is not None:
            self.counters.optimize_passes += passes
        if not converged:
            if self.counters is not None:
                self.counters.optimize_bound_hits += 1
            warnings.warn(
                f"optimizer rule fixpoint did not converge within {_MAX_PASSES} "
                "passes; the rule list oscillates and the returned plan may "
                "not be fully simplified",
                RuntimeWarning,
                stacklevel=3,
            )
        return current

    # ------------------------------------------------------------------
    def _count_pruned(self, dropped: int) -> None:
        if self.counters is not None:
            self.counters.columns_pruned += dropped

    def _count_eliminated(self) -> None:
        if self.counters is not None:
            self.counters.joinbacks_eliminated += 1

    def _count_reordered(self) -> None:
        if self.counters is not None:
            self.counters.joins_reordered += 1


def optimize(catalog: Catalog, node: an.Node) -> an.Node:
    """Convenience: optimize *node* with the default rules and stages."""
    return Optimizer(catalog).optimize(node)
