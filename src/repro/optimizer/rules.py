"""Logical rewrite rules.

Each rule is a function ``rule(node) -> Optional[Node]`` returning a
replacement or ``None``. The driver (:mod:`repro.optimizer.optimizer`)
applies them bottom-up to a fixpoint. All rules preserve query results
— property-tested in ``tests/optimizer/test_optimizer_semantics.py``.
"""

from __future__ import annotations

from typing import Optional

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..datatypes import SQLType, Value, arith, eq, ge, gt, le, lt, ne, tvl_and, tvl_not, tvl_or
from ..errors import ExecutionError


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

def fold_constants(expr: ax.Expr) -> ax.Expr:
    """Evaluate constant sub-expressions at plan time.

    Only side-effect-free, always-safe folds are applied; anything that
    could raise at runtime (division by zero, casts) is left alone so
    runtime semantics do not change.
    """

    def fold(node: ax.Expr) -> Optional[ax.Expr]:
        if isinstance(node, ax.BinOp):
            left, right = node.left, node.right
            if isinstance(left, ax.Const) and isinstance(right, ax.Const):
                return _try_fold_binop(node.op, left, right)
            # Boolean short-circuits with one constant side.
            if node.op == "and":
                for side, other in ((left, right), (right, left)):
                    if isinstance(side, ax.Const):
                        if side.value is False:
                            return ax.Const(False, SQLType.BOOL)
                        if side.value is True:
                            return other
            if node.op == "or":
                for side, other in ((left, right), (right, left)):
                    if isinstance(side, ax.Const):
                        if side.value is True:
                            return ax.Const(True, SQLType.BOOL)
                        if side.value is False:
                            return other
            return None
        if isinstance(node, ax.UnOp):
            if isinstance(node.operand, ax.Const):
                if node.op == "not":
                    value = node.operand.value
                    if value is None or isinstance(value, bool):
                        return ax.Const(tvl_not(value), SQLType.BOOL)
                elif node.op == "-":
                    value = node.operand.value
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        return ax.Const(-value, node.operand.type)
            return None
        if isinstance(node, ax.IsNullTest) and isinstance(node.operand, ax.Const):
            is_null = node.operand.value is None
            return ax.Const(is_null != node.negated, SQLType.BOOL)
        return None

    return ax.map_expr(expr, fold)


_FOLDABLE = {"=": eq, "<>": ne, "<": lt, "<=": le, ">": gt, ">=": ge}


def _try_fold_binop(op: str, left: ax.Const, right: ax.Const) -> Optional[ax.Expr]:
    if op in ("and", "or"):
        a, b = left.value, right.value
        if (a is None or isinstance(a, bool)) and (b is None or isinstance(b, bool)):
            result = tvl_and(a, b) if op == "and" else tvl_or(a, b)
            return ax.Const(result, SQLType.BOOL)
        return None
    if op in _FOLDABLE:
        try:
            return ax.Const(_FOLDABLE[op](left.value, right.value), SQLType.BOOL)
        except ExecutionError:
            return None
    if op in ("+", "-", "*", "||"):
        try:
            value: Value = arith(op, left.value, right.value)
        except ExecutionError:
            return None
        return ax.Const.of(value)
    # '/' and '%' can raise division-by-zero: leave them for runtime.
    return None


def _has_subquery(expr: ax.Expr) -> bool:
    return any(isinstance(sub, ax.SubqueryExpr) for sub in ax.walk_expr(expr))


# Expression shapes that provably cannot raise at runtime: plain values,
# null tests, and comparisons/logic whose operand types the analyzer has
# already checked statically. Arithmetic (division by zero), casts,
# functions, LIKE, CASE and sublinks (multi-row scalar results) stay out.
# Shared by every transformation that would otherwise skip or relocate an
# evaluation — the engine's contract is identical *errors*, not just
# identical rows, across optimizer modes and engines.
_SAFE_BINOPS = frozenset({"=", "<>", "<", "<=", ">", ">=", "and", "or"})
_SAFE_AGGS = frozenset({"count", "min", "max"})  # sum/avg raise on non-numerics


def expr_cannot_raise(expr: ax.Expr) -> bool:
    for sub in ax.walk_expr(expr):
        if isinstance(
            sub, (ax.Column, ax.Const, ax.Param, ax.IsNullTest, ax.DistinctTest)
        ):
            continue
        if isinstance(sub, ax.BinOp) and sub.op in _SAFE_BINOPS:
            continue
        if isinstance(sub, ax.UnOp) and sub.op == "not":
            continue
        if isinstance(sub, ax.AggExpr) and sub.func in _SAFE_AGGS:
            continue
        return False
    return True


def plan_cannot_raise(node: an.Node) -> bool:
    """Whether evaluating *node* (fully, or not at all) provably cannot
    raise a runtime error. Required before a transformation changes how
    much of a subtree executes — skipping it (join-back elimination) or
    eagerly materializing it (build-side selection under LIMIT)."""
    from ..algebra.tree import walk_tree

    for op in walk_tree(node):
        if isinstance(op, an.Limit):
            for bound in (op.limit, op.offset):
                if bound is None:
                    continue
                if not (
                    isinstance(bound, ax.Const)
                    and isinstance(bound.value, int)
                    and not isinstance(bound.value, bool)
                    and bound.value >= 0
                ):
                    return False  # a negative/NULL/param bound raises lazily
            continue
        for expr in op.expressions():
            if not expr_cannot_raise(expr):
                return False
    return True


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def rule_fold_expressions(node: an.Node) -> Optional[an.Node]:
    """Apply constant folding to every expression of the node."""
    if isinstance(node, an.Select):
        folded = fold_constants(node.condition)
        if folded is not node.condition:
            return an.Select(node.child, folded)
    elif isinstance(node, an.Project):
        items = [(name, fold_constants(e)) for name, e in node.items]
        if any(new is not old for (_, new), (_, old) in zip(items, node.items)):
            return an.Project(node.child, items)
    elif isinstance(node, an.Join) and node.condition is not None:
        folded = fold_constants(node.condition)
        if folded is not node.condition:
            return an.Join(node.left, node.right, node.kind, folded)
    return None


def rule_remove_trivial_select(node: an.Node) -> Optional[an.Node]:
    """σ[true](T) -> T."""
    if isinstance(node, an.Select) and isinstance(node.condition, ax.Const):
        if node.condition.value is True:
            return node.child
    return None


def rule_merge_selects(node: an.Node) -> Optional[an.Node]:
    """σ[a](σ[b](T)) -> σ[a AND b](T)."""
    if isinstance(node, an.Select) and isinstance(node.child, an.Select):
        inner = node.child
        return an.Select(inner.child, ax.BinOp("and", inner.condition, node.condition))
    return None


def rule_select_into_join(node: an.Node) -> Optional[an.Node]:
    """Push σ conjuncts into / below joins.

    * conjuncts referencing only the left (right) input move below the
      join when that side is not the null-padded side of an outer join;
    * for inner/cross joins, conjuncts spanning both sides merge into the
      join condition (turning cross products into real joins, which the
      planner can then execute as hash joins — essential for provenance
      queries whose rewrite rules produce join-backs).
    """
    if not (isinstance(node, an.Select) and isinstance(node.child, an.Join)):
        return None
    join = node.child
    left_names = {a.name.lower() for a in join.left.schema}
    right_names = {a.name.lower() for a in join.right.schema}

    push_left: list[ax.Expr] = []
    push_right: list[ax.Expr] = []
    into_condition: list[ax.Expr] = []
    keep: list[ax.Expr] = []

    # A conjunct may move below an outer join only on the preserved side;
    # pushing into the null-padded side would change padding behaviour.
    can_push_left = join.kind in ("inner", "cross", "left")
    can_push_right = join.kind in ("inner", "cross", "right")

    for conjunct in ax.conjuncts(node.condition):
        used = ax.columns_used(conjunct)
        used_lower = {u.lower() for u in used}
        if used_lower <= left_names and can_push_left:
            push_left.append(conjunct)
        elif used_lower <= right_names and can_push_right:
            push_right.append(conjunct)
        elif join.kind in ("inner", "cross"):
            into_condition.append(conjunct)
        else:
            keep.append(conjunct)

    if not (push_left or push_right or into_condition):
        return None

    left = join.left
    right = join.right
    if push_left:
        left = an.Select(left, ax.combine_conjuncts(push_left))  # type: ignore[arg-type]
    if push_right:
        right = an.Select(right, ax.combine_conjuncts(push_right))  # type: ignore[arg-type]

    kind = join.kind
    condition = join.condition
    if into_condition:
        merged = ax.combine_conjuncts(
            ([condition] if condition is not None else []) + into_condition
        )
        kind = "inner" if kind == "cross" else kind
        condition = merged

    new_join = an.Join(left, right, kind, condition)
    remaining = ax.combine_conjuncts(keep)
    return an.Select(new_join, remaining) if remaining is not None else new_join


def rule_select_through_project(node: an.Node) -> Optional[an.Node]:
    """σ[c](Π[items](T)) -> Π[items](σ[c'](T)) when every column the
    condition uses maps to a plain column or constant in the projection
    (substitution cannot duplicate expensive or non-deterministic work)."""
    if not (isinstance(node, an.Select) and isinstance(node.child, an.Project)):
        return None
    if _has_subquery(node.condition):
        # A sublink's correlated references bind to this operator's input
        # schema; moving the condition would change that frame.
        return None
    project = node.child
    mapping: dict[str, ax.Expr] = {}
    for name, expr in project.items:
        if isinstance(expr, (ax.Column, ax.Const)):
            mapping[name] = expr
    used = ax.columns_used(node.condition)
    if not all(u in mapping for u in used):
        return None

    def substitute(sub: ax.Expr) -> Optional[ax.Expr]:
        if isinstance(sub, ax.Column) and sub.name in mapping:
            return mapping[sub.name]
        return None

    pushed = ax.map_expr(node.condition, substitute)
    return an.Project(an.Select(project.child, pushed), project.items)


def rule_select_through_distinct(node: an.Node) -> Optional[an.Node]:
    """σ(δ(T)) -> δ(σ(T))."""
    if isinstance(node, an.Select) and isinstance(node.child, an.Distinct):
        return an.Distinct(an.Select(node.child.child, node.condition))
    return None


def rule_select_through_union(node: an.Node) -> Optional[an.Node]:
    """σ(T1 ∪ T2) -> σ(T1) ∪ σ(T2), renaming columns positionally."""
    if not (isinstance(node, an.Select) and isinstance(node.child, an.SetOpNode)):
        return None
    if _has_subquery(node.condition):
        return None
    setop = node.child
    if setop.kind != "union":
        return None

    def renamed_condition(target: an.Node) -> ax.Expr:
        mapping = {
            out.name: ax.Column(inner.name)
            for out, inner in zip(setop.schema, target.schema)
        }

        def substitute(sub: ax.Expr) -> Optional[ax.Expr]:
            if isinstance(sub, ax.Column) and sub.name in mapping:
                return mapping[sub.name]
            return None

        return ax.map_expr(node.condition, substitute)

    left = an.Select(setop.left, renamed_condition(setop.left))
    right = an.Select(setop.right, renamed_condition(setop.right))
    return an.SetOpNode(left, right, setop.kind, setop.all)


def rule_collapse_projects(node: an.Node) -> Optional[an.Node]:
    """Π[outer](Π[inner](T)) -> Π[merged](T) when the outer projection
    only re-references inner columns and constants (no duplication of
    computed expressions), and no dropped inner item could have raised
    at runtime (merging silently discards unreferenced inner items)."""
    if not (isinstance(node, an.Project) and isinstance(node.child, an.Project)):
        return None
    inner = node.child
    inner_map = dict(inner.items)

    referenced: set[str] = set()
    for _, expr in node.items:
        referenced |= ax.columns_used(expr)
    for name, expr in inner.items:
        if name not in referenced and not expr_cannot_raise(expr):
            return None

    merged: list[tuple[str, ax.Expr]] = []
    for name, expr in node.items:
        simple = True
        for sub in ax.walk_expr(expr):
            if isinstance(sub, ax.Column):
                target = inner_map.get(sub.name)
                if target is None or not isinstance(target, (ax.Column, ax.Const)):
                    simple = False
                    break
            elif isinstance(sub, ax.SubqueryExpr):
                simple = False
                break
        if not simple:
            return None

        def substitute(sub: ax.Expr) -> Optional[ax.Expr]:
            if isinstance(sub, ax.Column):
                return inner_map[sub.name]
            return None

        merged.append((name, ax.map_expr(expr, substitute)))
    return an.Project(inner.child, merged)


def rule_remove_identity_project(node: an.Node) -> Optional[an.Node]:
    """Π that reproduces its child's schema exactly (names and order) is
    a no-op."""
    if not isinstance(node, an.Project):
        return None
    child_schema = node.child.schema
    if len(node.items) != len(child_schema):
        return None
    for (name, expr), attribute in zip(node.items, child_schema):
        if not (isinstance(expr, ax.Column) and expr.name == attribute.name == name):
            return None
    return node.child


def rule_distinct_over_distinct(node: an.Node) -> Optional[an.Node]:
    """δ(δ(T)) -> δ(T)."""
    if isinstance(node, an.Distinct) and isinstance(node.child, an.Distinct):
        return node.child
    return None


DEFAULT_RULES = (
    rule_fold_expressions,
    rule_remove_trivial_select,
    rule_merge_selects,
    rule_select_into_join,
    rule_select_through_project,
    rule_select_through_distinct,
    rule_select_through_union,
    rule_collapse_projects,
    rule_remove_identity_project,
    rule_distinct_over_distinct,
)
