"""The Perm browser, as text.

The demonstration client of the paper's §3 / Figure 4 "enables a user to
send queries to the system (marker 1), view query results (marker 5),
activate or deactivate rewrite strategies, and choose between different
contribution semantics. In addition to the query results, the browser
presents the rewritten query as an SQL statement (marker 2) together
with algebra trees for the original (marker 3) and rewritten query
(marker 4)."

:class:`PermBrowser` renders the same five panes as text:

1. the (normalized) input query,
2. the rewritten query as SQL,
3. the algebra tree of the original query,
4. the algebra tree of the rewritten query,
5. the result grid.

Strategy toggles and contribution-semantics selection are exposed as
methods, matching the demo's interactive controls.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.render import render_side_by_side, render_tree
from ..algebra.to_sql import algebra_to_sql
from ..engine.connection import Connection
from ..storage.table import Relation


@dataclass
class BrowserView:
    """The rendered panes for one query."""

    input_sql: str
    rewritten_sql: str
    original_tree: str
    rewritten_tree: str
    result: Relation

    def render(self, max_rows: int | None = 20) -> str:
        """One screen combining all panes, Figure 4 style."""
        sections = [
            ("query input (1)", self.input_sql),
            ("rewritten SQL (2)", self.rewritten_sql),
            (
                "algebra trees (3: original | 4: rewritten)",
                render_side_by_side(self.original_tree, self.rewritten_tree),
            ),
            ("result (5)", self.result.format(max_rows=max_rows)),
        ]
        blocks = []
        for title, body in sections:
            bar = "─" * max(len(title) + 2, 30)
            blocks.append(f"┌{bar}\n│ {title}\n└{bar}\n{body}")
        return "\n\n".join(blocks)


class PermBrowser:
    """Interactive inspection of the provenance rewrite process.

    Accepts any :class:`~repro.engine.connection.Connection` (including
    the deprecated ``PermDB`` shim)."""

    def __init__(self, db: Connection):
        self.db = db

    # -- the demo's interactive controls --------------------------------
    def set_union_strategy(self, strategy: str) -> None:
        """Activate/deactivate union rewrite strategies
        ("pad", "joinback", "heuristic", "cost")."""
        self.db.options.union_strategy = strategy
        self.db.options.__post_init__()  # validate

    def set_sublink_strategy(self, strategy: str) -> None:
        """Choose the sublink strategy ("gen", "left", "keep",
        "heuristic", "cost")."""
        self.db.options.sublink_strategy = strategy
        self.db.options.__post_init__()

    def set_difference_semantics(self, semantics: str) -> None:
        """"lineage" (all of T2 contributes) or "left-only"."""
        self.db.options.difference_semantics = semantics
        self.db.options.__post_init__()

    # -- pane rendering ---------------------------------------------------
    def run(self, sql: str) -> BrowserView:
        """Execute *sql* and build all browser panes."""
        profile = self.db.profile(sql)
        assert profile.analyzed is not None
        assert profile.rewritten is not None
        assert profile.result is not None
        return BrowserView(
            input_sql=sql.strip(),
            rewritten_sql=algebra_to_sql(profile.rewritten),
            original_tree=render_tree(profile.analyzed),
            rewritten_tree=render_tree(profile.rewritten),
            result=profile.result,
        )

    def show(self, sql: str, max_rows: int | None = 20) -> str:
        """Render the full browser screen for *sql*."""
        return self.run(sql).render(max_rows=max_rows)
