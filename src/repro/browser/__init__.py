"""The Perm browser (text edition)."""

from .browser import BrowserView, PermBrowser  # noqa: F401
