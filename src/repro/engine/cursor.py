"""DB-API 2.0 cursors over a Perm connection.

A :class:`Cursor` executes statements through the connection's shared
pipeline + plan cache, materializes the result relation, and exposes the
standard PEP 249 surface: ``description`` (7-tuples), ``rowcount``,
``fetchone``/``fetchmany``/``fetchall``, iteration, ``arraysize``, and
context-manager support. Perm-specific extras: ``relation`` (the full
:class:`~repro.storage.table.Relation`, including formatting helpers) and
``provenance_attrs`` (which output columns carry provenance — the
Figure 2 split of original vs provenance attributes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from ..datatypes import SQLType, Value
from ..errors import ProgrammingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.table import Relation
    from .connection import Connection

Row = tuple[Value, ...]

# PEP 249 description entry:
# (name, type_code, display_size, internal_size, precision, scale, null_ok)
DescriptionRow = tuple[str, SQLType, None, None, None, None, None]


def _status_rowcount(relation: "Relation") -> int:
    """Affected-row count from a DDL/DML status relation ("INSERT 2" ->
    2); -1 when the status carries no count (DB-API's 'undetermined')."""
    if len(relation.rows) == 1 and len(relation.rows[0]) == 1:
        value = relation.rows[0][0]
        if isinstance(value, str):
            tail = value.rsplit(" ", 1)[-1]
            if tail.isdigit():
                return int(tail)
    return -1


class Cursor:
    """A cursor bound to one :class:`~repro.engine.connection.Connection`."""

    def __init__(self, connection: "Connection"):
        self.connection = connection
        self.arraysize = 1
        self._closed = False
        self._relation: Optional["Relation"] = None
        self._rows: list[Row] = []
        self._pos = 0
        self._rowcount = -1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: object = None) -> "Cursor":
        """Execute *sql* (optionally parameterized) and make this cursor
        hold its result. Returns ``self`` so calls chain, sqlite3-style."""
        self._check_open()
        relation, rowcount = self.connection._execute_sql(sql, params)
        self._install(relation, rowcount)
        return self

    def executemany(self, sql: str, seq_of_params: Iterable[object]) -> "Cursor":
        """Execute one statement once per parameter set. The statement is
        parsed (and, for queries, planned) only once; ``rowcount``
        accumulates affected rows across all sets."""
        self._check_open()
        relation, rowcount = self.connection._execute_sql_many(sql, seq_of_params)
        self._install(relation, rowcount)
        return self

    def _install(self, relation: Optional["Relation"], rowcount: int) -> None:
        self._relation = relation
        self._rows = list(relation.rows) if relation is not None else []
        self._pos = 0
        self._rowcount = rowcount

    # ------------------------------------------------------------------
    # Result access
    # ------------------------------------------------------------------
    @property
    def description(self) -> Optional[list[DescriptionRow]]:
        if self._relation is None:
            return None
        return [
            (attribute.name, attribute.type, None, None, None, None, None)
            for attribute in self._relation.schema
        ]

    @property
    def rowcount(self) -> int:
        return self._rowcount

    @property
    def relation(self) -> Optional["Relation"]:
        """The full result relation of the last execute (Perm extra)."""
        return self._relation

    @property
    def provenance_attrs(self) -> tuple[str, ...]:
        """Output columns that carry provenance (Perm extra)."""
        return self._relation.provenance_attrs if self._relation is not None else ()

    def fetchone(self) -> Optional[Row]:
        self._check_result()
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[Row]:
        self._check_result()
        count = self.arraysize if size is None else size
        if count < 0:
            raise ProgrammingError("fetchmany() size must be >= 0")
        chunk = self._rows[self._pos : self._pos + count]
        self._pos += len(chunk)
        return chunk

    def fetchall(self) -> list[Row]:
        self._check_result()
        chunk = self._rows[self._pos :]
        self._pos = len(self._rows)
        return chunk

    def __iter__(self) -> Iterator[Row]:
        return self

    def __next__(self) -> Row:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # ------------------------------------------------------------------
    # Lifecycle / PEP 249 no-ops
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True
        self._relation = None
        self._rows = []
        self._pos = 0

    def setinputsizes(self, sizes: Sequence[object]) -> None:  # pragma: no cover
        """PEP 249 compliance; sizes are irrelevant to this engine."""

    def setoutputsize(self, size: int, column: Optional[int] = None) -> None:  # pragma: no cover
        """PEP 249 compliance; sizes are irrelevant to this engine."""

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ProgrammingError("cursor is closed")
        if self.connection.closed:
            raise ProgrammingError("connection is closed")

    def _check_result(self) -> None:
        """PEP 249: fetching before any execute is an error, so an
        accidentally skipped execute() never reads as an empty result."""
        self._check_open()
        if self._relation is None:
            raise ProgrammingError(
                "no result set available (execute a statement first)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._rows)} row(s)"
        return f"<repro.Cursor {state}>"
