"""A shared database: one catalog plus its transaction coordinator.

Historically every :func:`repro.connect` call owned a private
:class:`~repro.catalog.catalog.Catalog`, so there was exactly one
session per database and "concurrent transactions" could not exist. A
:class:`Database` is the thing multiple connections can now share::

    db = repro.Database()
    writer = repro.connect(database=db)
    reader = repro.connect(database=db, engine="vectorized")

Each connection keeps its own pipeline, plan cache and execution engine
(connections stay single-threaded, per PEP 249 ``threadsafety = 1``,
and sessions meant for different threads should each be created in
their own thread), but they see the same tables — with snapshot
isolation between their transactions, coordinated by the database's
:class:`~repro.storage.mvcc.TransactionManager`.

DDL (CREATE/DROP of tables and views) is non-transactional and is not
synchronized beyond the GIL; perform schema changes from a single
session before concurrent traffic starts.
"""

from __future__ import annotations

from ..catalog.catalog import Catalog
from ..storage.mvcc import Transaction, TransactionManager


class Database:
    """Shared storage: a catalog and the MVCC transaction manager
    coordinating the connections attached to it."""

    def __init__(self, conflict_granularity: str = "row") -> None:
        self.catalog = Catalog()
        # "row" (default): first-committer-wins per row identity, so
        # transactions updating disjoint rows of one table both commit.
        # "table": any two commits of one table conflict (the pre-row-
        # level behavior, kept for benchmark comparisons).
        self.manager = TransactionManager(
            lambda: [entry.table for entry in self.catalog.tables],
            granularity=conflict_granularity,
        )

    def begin(self) -> Transaction:
        """Start a snapshot-isolated transaction (used by connections;
        prefer SQL ``BEGIN`` or the connection API)."""
        return self.manager.begin()

    def connect(self, **kwargs) -> "Connection":  # noqa: F821 - forward ref
        """Open a new session on this database (same keyword arguments
        as :func:`repro.connect`)."""
        from .connection import Connection

        return Connection(database=self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tables = len(self.catalog.tables)
        return f"<repro.Database {tables} table(s)>"
