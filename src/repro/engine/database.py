"""A shared database: one catalog plus its transaction coordinator.

Historically every :func:`repro.connect` call owned a private
:class:`~repro.catalog.catalog.Catalog`, so there was exactly one
session per database and "concurrent transactions" could not exist. A
:class:`Database` is the thing multiple connections can now share::

    db = repro.Database()
    writer = repro.connect(database=db)
    reader = repro.connect(database=db, engine="vectorized")

Each connection keeps its own pipeline, plan cache and execution engine
(connections stay single-threaded, per PEP 249 ``threadsafety = 1``,
and sessions meant for different threads should each be created in
their own thread), but they see the same tables — with snapshot
isolation between their transactions, coordinated by the database's
:class:`~repro.storage.mvcc.TransactionManager`.

A database is in-memory by default; ``Database(path="...")`` opens (or
creates) a durable one backed by a checkpoint snapshot plus a
write-ahead log (:mod:`repro.storage.persist`): commits are logged and
made durable *before* they install, recovery replays the committed
prefix after a crash, and ``CHECKPOINT`` (or a log-size threshold)
rewrites the snapshot and rotates the log.

DDL (CREATE/DROP of tables and views) is non-transactional and is not
synchronized beyond the GIL; perform schema changes from a single
session before concurrent traffic starts.
"""

from __future__ import annotations

from typing import Optional

from ..catalog.catalog import Catalog
from ..storage.mvcc import Transaction, TransactionManager
from .matview import MatviewMaintainer


class Database:
    """Shared storage: a catalog and the MVCC transaction manager
    coordinating the connections attached to it — optionally durable.

    ``path`` — a data directory to open/create (``None``: in-memory).
    ``durability`` — how hard COMMIT lands in the log: ``"fsync"``
    (default; survives power loss), ``"os"`` (survives process crash)
    or ``"off"`` (buffered). ``checkpoint_bytes`` — rewrite the
    snapshot whenever the log outgrows this (0 disables the automatic
    checkpointer; ``CHECKPOINT`` still works).
    """

    def __init__(
        self,
        conflict_granularity: str = "row",
        path: Optional[str] = None,
        durability: str = "fsync",
        checkpoint_bytes: Optional[int] = None,
    ) -> None:
        self.catalog = Catalog()
        # "row" (default): first-committer-wins per row identity, so
        # transactions updating disjoint rows of one table both commit.
        # "table": any two commits of one table conflict (the pre-row-
        # level behavior, kept for benchmark comparisons).
        # Snapshots must cover materialized-view heaps too, so a reader
        # sees base tables and view contents from one consistent cut.
        self.manager = TransactionManager(
            lambda: [entry.table for entry in self.catalog.tables]
            + [entry.table for entry in self.catalog.matviews],
            granularity=conflict_granularity,
        )
        self.matview_maintainer = MatviewMaintainer(self.catalog)
        self.manager.matview_maintainer = self.matview_maintainer.on_commit
        self.storage = None
        if path is not None:
            from ..storage.persist import DEFAULT_CHECKPOINT_BYTES, PersistentStore

            self.storage = PersistentStore(
                path,
                durability=durability,
                checkpoint_bytes=(
                    DEFAULT_CHECKPOINT_BYTES
                    if checkpoint_bytes is None
                    else checkpoint_bytes
                ),
            )
            self.storage.open_into(self)

    @property
    def persistent(self) -> bool:
        """Whether this database is backed by a data directory."""
        return self.storage is not None

    def begin(self) -> Transaction:
        """Start a snapshot-isolated transaction (used by connections;
        prefer SQL ``BEGIN`` or the connection API)."""
        return self.manager.begin()

    def connect(self, **kwargs) -> "Connection":  # noqa: F821 - forward ref
        """Open a new session on this database (same keyword arguments
        as :func:`repro.connect`)."""
        from .connection import Connection

        return Connection(database=self, **kwargs)

    def checkpoint(self) -> bool:
        """Write a durable snapshot and rotate the write-ahead log.
        Returns False (a no-op) for in-memory databases."""
        if self.storage is None:
            return False
        self.storage.checkpoint()
        return True

    def gc_stats(self) -> dict:
        """Version-GC counters (see
        :meth:`repro.storage.mvcc.TransactionManager.gc_stats`)."""
        return self.manager.gc_stats()

    def matview_stats(self) -> dict:
        """Materialized-view bookkeeping: per-view freshness and size,
        plus the maintainer's cumulative counters."""
        maintainer = self.matview_maintainer
        return {
            "views": {
                entry.name: {
                    "rows": len(entry.table._state[0]),
                    "stale": entry.stale,
                    "delta_safe": entry.delta_safe,
                    "with_provenance": entry.with_provenance,
                }
                for entry in self.catalog.matviews
            },
            "incremental_commits": maintainer.incremental_commits,
            "stale_marks": maintainer.stale_marks,
            "rows_added": maintainer.rows_added,
            "rows_removed": maintainer.rows_removed,
        }

    def wal_stats(self) -> dict:
        """Durability counters: log size, appends/fsyncs, checkpoints,
        and the last recovery's replay/truncation work. For in-memory
        databases only ``{"enabled": False}``."""
        if self.storage is None:
            return {"enabled": False}
        return self.storage.wal_stats()

    def close(self) -> None:
        """Flush and detach the persistence layer (idempotent; a no-op
        for in-memory databases). Connections stay usable, but further
        writes are no longer logged."""
        if self.storage is not None:
            self.storage.close()
            self.storage = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tables = len(self.catalog.tables)
        suffix = f" at {self.storage.path!r}" if self.storage is not None else ""
        return f"<repro.Database {tables} table(s){suffix}>"
