"""Engine: the user-facing database session.

:class:`Connection` / :class:`Cursor` form the DB-API 2.0 front end;
:class:`Pipeline` is the explicit Figure 3 stage sequence with its plan
cache and prepared plans; :class:`PermDB` is the deprecated monolithic
session kept for backward compatibility.
"""

from .connection import Connection, connect  # noqa: F401
from .cursor import Cursor  # noqa: F401
from .database import Database  # noqa: F401
from .pipeline import (  # noqa: F401
    Pipeline,
    PipelineCounters,
    PlanCache,
    PreparedPlan,
    bind_parameters,
)
from .prepared import PreparedStatement  # noqa: F401
from .result import ExecutionProfile, StageTiming  # noqa: F401
from .session import PermDB  # noqa: F401
