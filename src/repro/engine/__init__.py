"""Engine: the user-facing database session (PermDB)."""

from .result import ExecutionProfile, StageTiming  # noqa: F401
from .session import PermDB, connect  # noqa: F401
