"""Execution artifacts: per-stage profiling of the Figure 3 pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..algebra.nodes import Node
    from ..executor.iterators import PhysicalOp
    from ..sql import ast
    from ..storage.table import Relation


@dataclass
class StageTiming:
    """Wall-clock duration of one pipeline stage, in seconds."""

    name: str
    seconds: float


@dataclass
class ExecutionProfile:
    """Everything produced while executing one query, stage by stage.

    The stages mirror the paper's Figure 3: parse/analyze (syntactic and
    semantic analysis, view unfolding), provenance rewrite, optimize,
    plan, execute.
    """

    sql: str
    statement: Optional["ast.Statement"] = None
    analyzed: Optional["Node"] = None
    rewritten: Optional["Node"] = None
    optimized: Optional["Node"] = None
    physical: Optional["PhysicalOp"] = None
    result: Optional["Relation"] = None
    provenance_attrs: tuple[str, ...] = ()
    timings: list[StageTiming] = field(default_factory=list)

    def timing(self, stage: str) -> float:
        for entry in self.timings:
            if entry.name == stage:
                return entry.seconds
        raise KeyError(f"no timing recorded for stage {stage!r}")

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.timings)

    def summary(self) -> str:
        """Aligned per-stage timing table (used by the Figure 3 bench)."""
        width = max(len(t.name) for t in self.timings)
        lines = [
            f"{t.name.ljust(width)}  {t.seconds * 1000:10.3f} ms" for t in self.timings
        ]
        lines.append(f"{'total'.ljust(width)}  {self.total_seconds * 1000:10.3f} ms")
        return "\n".join(lines)
