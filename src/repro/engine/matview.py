"""Incrementally maintained materialized views.

A materialized view stores the result of its (provenance-rewritten)
query in an ordinary :class:`~repro.storage.table.HeapTable`, so MVCC
snapshots, the WAL and table statistics cover the rows for free. What
this module adds is the *maintenance* machinery:

* :func:`compile_program` turns the analyzer's rewritten algebra tree
  into a :class:`MatviewProgram` — a tiny direct interpreter over
  SPJ-shaped plans (scans, projections, selections, inner/cross joins,
  and the rewriter's ``BaseRelationNode`` markers). A shape outside
  that fragment (aggregation, set operations, DISTINCT, ORDER BY/LIMIT,
  outer joins, sublinks, parameters) is **not delta-safe**: the view
  falls back to stale-and-recompute maintenance.

* :class:`MatviewMaintainer` hooks transaction commit. For every
  delta-safe view whose base tables a commit touches, it propagates the
  committed write set through the program — removed combinations are
  found by source-row-id intersection, added combinations by the
  telescoping delta expansion — and emits one extra
  :class:`~repro.storage.mvcc.CommitChange` that updates the view's
  heap *in the same commit* (so the WAL and crash recovery see an
  atomic unit). Anything it cannot handle incrementally (coarse writes,
  version skew from non-transactional installs, interpreter errors)
  degrades to marking the view stale; stale views are refreshed on the
  next read outside a transaction.

Ordering: every engine emits inner-join output probe-major, which makes
query output order lexicographic in the left-to-right sequence of base
leaf positions. The interpreter therefore tags each derived row with
the tuple of its source-row *positions* and sorts the final content by
that tuple — no order-preserving join machinery is needed, and the
stored rows are bit-identical to the unfolded query on every engine.

The telescoping expansion counts each *added* combination exactly once,
by the first leaf position holding a new row: with per-leaf new state
``N``, inserted-or-updated rows ``A`` and unchanged rows ``N\\A``,

    added = Σ_i  (N\\A)_1 × … × (N\\A)_{i-1} × A_i × N_{i+1} × … × N_k
"""

from __future__ import annotations

from operator import itemgetter
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..datatypes import is_true, value_identity
from ..executor.expr_eval import ExprCompiler
from ..planner.planner import _equi_pair
from ..storage import mvcc

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog.catalog import Catalog, MatviewEntry
    from ..storage.table import HeapTable, Row

__all__ = [
    "MatviewProgram",
    "MatviewMaintainer",
    "MatviewCommitChange",
    "compile_program",
    "base_table_names",
]

#: A derived row in flight: (output values, source row ids per leaf,
#: source row positions per leaf). The id tuple keys removal, the
#: position tuple keys canonical order.
Triple = "tuple[tuple, tuple[int, ...], tuple[int, ...]]"

_pos_key = itemgetter(2)

#: Expression nodes that make a shape non-delta-safe: their value can
#: depend on state outside the leaf rows (sublinks, parameters, outer
#: references) or they are only valid under operators we reject anyway.
_UNSAFE_EXPRS = (ax.SubqueryExpr, ax.Param, ax.OuterColumn, ax.AggExpr)

#: Bound on cached all-committed-state subtree results per program.
_FULL_CACHE_LIMIT = 128


class _Unsafe(Exception):
    """Internal signal: the plan shape is not delta-safe."""


class _LeafState:
    """What one leaf produces for one evaluation: a cache token naming
    the state, and the triples ``(row, (rid,), (pos,))``."""

    __slots__ = ("token", "triples")

    def __init__(self, token: tuple, triples: list):
        self.token = token
        self.triples = triples


class _Ctx:
    """One evaluation's leaf states plus the two result caches: the
    per-round cache (any state mix) and the program's persistent cache
    (only subtree results over fully-committed leaf states, whose
    tokens carry version stamps and so can never alias)."""

    __slots__ = ("states", "cache", "full_cache")

    def __init__(self, states, cache, full_cache):
        self.states = states
        self.cache = cache
        self.full_cache = full_cache


# ---------------------------------------------------------------------------
# Interpreter steps
# ---------------------------------------------------------------------------


class _Step:
    __slots__ = ("index", "leaf_start", "leaf_end")
    cacheable = False

    def rows(self, ctx: _Ctx) -> list:
        if not self.cacheable:
            return self._compute(ctx)
        tokens = tuple(
            s.token for s in ctx.states[self.leaf_start : self.leaf_end]
        )
        key = (self.index, tokens)
        hit = ctx.cache.get(key)
        if hit is not None:
            return hit
        hit = ctx.full_cache.get(key)
        if hit is not None:
            return hit
        result = self._compute(ctx)
        ctx.cache[key] = result
        if all(token[0] == "full" for token in tokens):
            if len(ctx.full_cache) >= _FULL_CACHE_LIMIT:
                ctx.full_cache.clear()
            ctx.full_cache[key] = result
        return result

    def _compute(self, ctx: _Ctx) -> list:  # pragma: no cover - abstract
        raise NotImplementedError


class _ScanStep(_Step):
    __slots__ = ("leaf",)

    def __init__(self, leaf: int):
        self.leaf = leaf

    def _compute(self, ctx: _Ctx) -> list:
        return ctx.states[self.leaf].triples


class _SingleRowStep(_Step):
    __slots__ = ()

    def _compute(self, ctx: _Ctx) -> list:
        return [((), (), ())]


class _ProjectStep(_Step):
    __slots__ = ("child", "fns")

    def __init__(self, child: _Step, fns: list):
        self.child = child
        self.fns = fns

    def _compute(self, ctx: _Ctx) -> list:
        fns = self.fns
        return [
            (tuple(fn(values, None) for fn in fns), sids, pos)
            for values, sids, pos in self.child.rows(ctx)
        ]


class _SelectStep(_Step):
    __slots__ = ("child", "predicate")

    def __init__(self, child: _Step, predicate):
        self.child = child
        self.predicate = predicate

    def _compute(self, ctx: _Ctx) -> list:
        predicate = self.predicate
        return [
            triple
            for triple in self.child.rows(ctx)
            if is_true(predicate(triple[0], None))
        ]


class _JoinStep(_Step):
    """Inner (or cross) hash/nested-loop join. Output order is arbitrary
    — the program sorts final results by position tuple, so the build
    side is chosen purely by size."""

    __slots__ = ("left", "right", "left_keys", "right_keys", "null_safe", "residual")
    cacheable = True

    def __init__(self, left, right, left_keys, right_keys, null_safe, residual):
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.null_safe = null_safe
        self.residual = residual

    @staticmethod
    def _key(values, positions, null_safe):
        key = []
        for position, ns in zip(positions, null_safe):
            value = values[position]
            if value is None and not ns:
                return None
            key.append(value_identity(value))
        return tuple(key)

    def _compute(self, ctx: _Ctx) -> list:
        left_rows = self.left.rows(ctx)
        right_rows = self.right.rows(ctx)
        out: list = []
        if not left_rows or not right_rows:
            return out
        residual = self.residual
        if not self.left_keys:
            # Cross join (or residual-only condition): nested loops.
            for lv, ls, lp in left_rows:
                for rv, rs, rp in right_rows:
                    if residual is None or is_true(residual(lv + rv, None)):
                        out.append((lv + rv, ls + rs, lp + rp))
            return out
        null_safe = self.null_safe
        if len(left_rows) <= len(right_rows):
            build, build_keys = left_rows, self.left_keys
            probe, probe_keys = right_rows, self.right_keys
            build_is_left = True
        else:
            build, build_keys = right_rows, self.right_keys
            probe, probe_keys = left_rows, self.left_keys
            build_is_left = False
        table: dict = {}
        for triple in build:
            key = self._key(triple[0], build_keys, null_safe)
            if key is None:
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = [triple]
            else:
                bucket.append(triple)
        for triple in probe:
            key = self._key(triple[0], probe_keys, null_safe)
            if key is None:
                continue
            bucket = table.get(key)
            if bucket is None:
                continue
            values, sids, pos = triple
            for other in bucket:
                if build_is_left:
                    joined = (
                        other[0] + values,
                        other[1] + sids,
                        other[2] + pos,
                    )
                else:
                    joined = (values + other[0], sids + other[1], pos + other[2])
                if residual is None or is_true(residual(joined[0], None)):
                    out.append(joined)
        return out


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _check_exprs(exprs) -> None:
    for expr in exprs:
        for sub in ax.walk_expr(expr):
            if isinstance(sub, _UNSAFE_EXPRS):
                raise _Unsafe


class MatviewProgram:
    """A compiled delta-safe plan: the step tree, the left-to-right base
    table of every leaf, and the persistent committed-state cache."""

    def __init__(self, root: _Step, leaves: list[str], schema):
        self.root = root
        self.leaves = leaves
        self.schema = schema
        self._full_cache: dict = {}

    # -- full evaluation (CREATE / REFRESH) ----------------------------
    def compute_full(
        self, catalog: "Catalog"
    ) -> tuple[list["Row"], list[tuple], dict[str, int]]:
        """Evaluate over the currently visible state of every base table
        (through the active transaction, if any). Returns the stored
        rows in canonical order, the parallel source-id tuples, and the
        base versions the content was computed from."""
        states: list[_LeafState] = []
        base_versions: dict[str, int] = {}
        built: dict[str, _LeafState] = {}
        for name in self.leaves:
            state = built.get(name)
            if state is None:
                heap = catalog.table(name).table
                rows, ids = heap._visible_pair()
                version = heap.version
                base_versions[name] = version
                state = _LeafState(
                    ("full", name, version),
                    [
                        (row, (rid,), (pos,))
                        for pos, (row, rid) in enumerate(zip(rows, ids))
                    ],
                )
                built[name] = state
            states.append(state)
        ctx = _Ctx(states, {}, {})
        out = list(self.root.rows(ctx))
        out.sort(key=_pos_key)
        return [t[0] for t in out], [t[1] for t in out], base_versions


def compile_program(root: an.Node, catalog: "Catalog") -> Optional[MatviewProgram]:
    """Compile the rewritten tree into a delta interpreter, or ``None``
    when the shape is not delta-safe."""
    leaves: list[str] = []
    steps: list[_Step] = []

    def register(step: _Step, start: int, end: int) -> _Step:
        step.index = len(steps)
        step.leaf_start = start
        step.leaf_end = end
        steps.append(step)
        return step

    def build(node: an.Node) -> _Step:
        if isinstance(node, an.BaseRelationNode):
            return build(node.child)
        if isinstance(node, an.Scan):
            if not catalog.has_table(node.table_name):
                raise _Unsafe
            leaf = len(leaves)
            leaves.append(node.table_name.lower())
            return register(_ScanStep(leaf), leaf, leaf + 1)
        if isinstance(node, an.SingleRow):
            at = len(leaves)
            return register(_SingleRowStep(), at, at)
        if isinstance(node, an.Project):
            child = build(node.child)
            _check_exprs(expr for _, expr in node.items)
            compiler = ExprCompiler(node.child.schema)
            fns = [compiler.compile(expr) for _, expr in node.items]
            return register(
                _ProjectStep(child, fns), child.leaf_start, child.leaf_end
            )
        if isinstance(node, an.Select):
            child = build(node.child)
            _check_exprs((node.condition,))
            predicate = ExprCompiler(node.child.schema).compile(node.condition)
            return register(
                _SelectStep(child, predicate), child.leaf_start, child.leaf_end
            )
        if isinstance(node, an.Join):
            if node.kind not in ("inner", "cross"):
                raise _Unsafe
            left = build(node.left)
            right = build(node.right)
            equi: list = []
            residual_parts: list = []
            if node.condition is not None:
                _check_exprs((node.condition,))
                left_names = {a.name.lower() for a in node.left.schema}
                right_names = {a.name.lower() for a in node.right.schema}
                for conjunct in ax.conjuncts(node.condition):
                    pair = _equi_pair(conjunct, left_names, right_names)
                    if pair is None:
                        residual_parts.append(conjunct)
                    else:
                        equi.append(pair)
            left_keys = [
                node.left.schema.index_of(col.name) for col, _, _ in equi
            ]
            right_keys = [
                node.right.schema.index_of(col.name) for _, col, _ in equi
            ]
            null_safe = [ns for _, _, ns in equi]
            residual_expr = ax.combine_conjuncts(residual_parts)
            residual = (
                ExprCompiler(node.schema).compile(residual_expr)
                if residual_expr is not None
                else None
            )
            return register(
                _JoinStep(left, right, left_keys, right_keys, null_safe, residual),
                left.leaf_start,
                right.leaf_end,
            )
        raise _Unsafe

    try:
        root_step = build(root)
    except _Unsafe:
        return None
    return MatviewProgram(root_step, leaves, root.schema)


def base_table_names(root: an.Node, catalog: "Catalog") -> tuple[str, ...]:
    """Every base table a rewritten tree scans (lowercased, ordered by
    first appearance) — the tables whose commits affect the view, also
    for shapes that are not delta-safe."""
    seen: list[str] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, an.Scan) and catalog.has_table(node.table_name):
            key = node.table_name.lower()
            if key not in seen:
                seen.append(key)
        stack.extend(node.children)
    return tuple(seen)


# ---------------------------------------------------------------------------
# Commit-time maintenance
# ---------------------------------------------------------------------------


class MatviewCommitChange(mvcc.CommitChange):
    """A maintainer-generated commit change carrying the compact WAL
    delta (removed matview row ids + positioned inserts) so the log does
    not have to record the full view contents on every base commit."""

    __slots__ = ("wal_delta",)

    def __init__(self, *args, wal_delta=None):
        super().__init__(*args)
        self.wal_delta = wal_delta


class _TableDelta:
    """One commit's effect on one base table, shared by every view that
    reads it: the added rows (inserts plus updated-to-new-content, with
    their new positions), the removed row ids (deletes plus the old
    halves of updates), and the complete new state in leaf-triple form."""

    __slots__ = (
        "added",
        "added_ids",
        "removed",
        "wrapped",
        "pos_by_id",
        "version",
        "_sub",
        "_delta_state",
        "name",
        "seq",
    )

    def __init__(self, name, seq, added, removed, wrapped, pos_by_id, version):
        self.name = name
        self.seq = seq
        self.added = added
        self.added_ids = {rid for _, rid, _ in added}
        self.removed = removed
        self.wrapped = wrapped
        self.pos_by_id = pos_by_id
        self.version = version
        self._sub = None
        self._delta_state = None

    def delta_state(self) -> _LeafState:
        if self._delta_state is None:
            self._delta_state = _LeafState(
                ("delta", self.name, self.seq),
                [(row, (rid,), (pos,)) for row, rid, pos in self.added],
            )
        return self._delta_state

    def sub_state(self) -> _LeafState:
        """The new state minus the added rows (``N \\ A``)."""
        if self._sub is None:
            added = self.added_ids
            self._sub = _LeafState(
                ("sub", self.name, self.seq),
                [t for t in self.wrapped if t[1][0] not in added],
            )
        return self._sub


def _rows_differ(a: "Row", b: "Row") -> bool:
    """Content comparison that keeps ``1``, ``1.0`` and ``TRUE``
    distinct (plain tuple equality would conflate them and a matview
    could silently keep the old spelling of a value)."""
    if a is b:
        return False
    if len(a) != len(b):
        return True
    for x, y in zip(a, b):
        if value_identity(x) != value_identity(y):
            return True
    return False


class MatviewMaintainer:
    """Propagates committed base-table write sets into materialized
    views. Installed on the :class:`~repro.storage.mvcc.TransactionManager`
    by the database; invoked under the manager lock with every staged
    :class:`~repro.storage.mvcc.CommitChange` of a commit, before the
    write-ahead hook runs. Returns extra changes to ride in the same
    commit plus a finalizer the commit applies after installation."""

    def __init__(self, catalog: "Catalog"):
        self.catalog = catalog
        # Telemetry (surfaced through Database.matview_stats / STATS).
        self.incremental_commits = 0
        self.stale_marks = 0
        self.rows_added = 0
        self.rows_removed = 0
        # Per-table extended committed state:
        # name -> (heap, version, wrapped triples, pos-by-id).
        self._ext: dict[str, tuple] = {}

    # -- extended-state cache ------------------------------------------
    def _ext_state(self, name: str, heap: "HeapTable") -> tuple:
        rows, version, ids = heap._state
        known = self._ext.get(name)
        if known is not None and known[0] is heap and known[1] == version:
            return known
        wrapped = [
            (row, (rid,), (pos,)) for pos, (row, rid) in enumerate(zip(rows, ids))
        ]
        pos_by_id = {rid: pos for pos, rid in enumerate(ids)}
        state = (heap, version, wrapped, pos_by_id)
        self._ext[name] = state
        return state

    def _delta(self, name: str, change: mvcc.CommitChange, seq: int) -> _TableDelta:
        prev_rows, prev_version, prev_ids = change.previous
        known = self._ext.get(name)
        if change.appended is not None:
            base = len(prev_rows)
            added = [
                (row, rid, base + i)
                for i, (row, rid) in enumerate(
                    zip(change.appended, change.appended_ids)
                )
            ]
            if (
                known is not None
                and known[0] is change.table
                and known[1] == prev_version
            ):
                # In-place extension: the superseded wrapped list is
                # never consulted again (its version stamp is gone).
                wrapped, pos_by_id = known[2], known[3]
            else:
                wrapped = [
                    (row, (rid,), (pos,))
                    for pos, (row, rid) in enumerate(zip(prev_rows, prev_ids))
                ]
                pos_by_id = {rid: pos for pos, rid in enumerate(prev_ids)}
            for row, rid, pos in added:
                wrapped.append((row, (rid,), (pos,)))
                pos_by_id[rid] = pos
            return _TableDelta(name, seq, added, set(), wrapped, pos_by_id, change.version)
        new_rows, new_ids = change.rows, change.ids
        prev_map = dict(zip(prev_ids, prev_rows))
        added = []
        removed: set[int] = set()
        wrapped = []
        pos_by_id = {}
        for pos, (row, rid) in enumerate(zip(new_rows, new_ids)):
            wrapped.append((row, (rid,), (pos,)))
            pos_by_id[rid] = pos
            old = prev_map.get(rid)
            if old is None and rid not in prev_map:
                added.append((row, rid, pos))
            elif _rows_differ(old, row):
                added.append((row, rid, pos))
                removed.add(rid)
        new_id_set = set(new_ids)
        for rid in prev_ids:
            if rid not in new_id_set:
                removed.add(rid)
        return _TableDelta(name, seq, added, removed, wrapped, pos_by_id, change.version)

    # -- the commit hook ------------------------------------------------
    def on_commit(
        self, seq: int, changes: list[mvcc.CommitChange]
    ) -> tuple[list[mvcc.CommitChange], Optional[Callable[[], None]]]:
        catalog = self.catalog
        if not catalog._matviews:
            return [], None
        by_name: dict[str, mvcc.CommitChange] = {}
        for change in changes:
            by_name[change.table.name.lower()] = change
        extra: list[mvcc.CommitChange] = []
        finalizers: list[Callable[[], None]] = []
        deltas: dict[str, _TableDelta] = {}
        for entry in list(catalog._matviews.values()):
            if entry.stale:
                continue
            relevant = [t for t in entry.base_tables if t in by_name]
            if not relevant:
                continue
            try:
                ok = self._maintain(
                    entry, relevant, by_name, deltas, seq, extra, finalizers
                )
            except Exception:
                ok = False
            if not ok:
                name = entry.name
                finalizers.append(lambda n=name: self._mark_stale(n))
        if not extra and not finalizers:
            return [], None

        pending_ext = {
            name: (
                by_name[name].table,
                deltas[name].version,
                deltas[name].wrapped,
                deltas[name].pos_by_id,
            )
            for name in deltas
        }

        def finalize() -> None:
            self._ext.update(pending_ext)
            for fn in finalizers:
                fn()

        return extra, finalize

    def _mark_stale(self, name: str) -> None:
        try:
            self.catalog.mark_matview_stale(name)
            self.stale_marks += 1
        except Exception:  # pragma: no cover - dropped concurrently
            pass

    def _maintain(
        self,
        entry: "MatviewEntry",
        relevant: Sequence[str],
        by_name: dict[str, mvcc.CommitChange],
        deltas: dict[str, _TableDelta],
        seq: int,
        extra: list[mvcc.CommitChange],
        finalizers: list[Callable[[], None]],
    ) -> bool:
        program = entry.program
        if not entry.delta_safe or program is None or entry.source_ids is None:
            return False
        catalog = self.catalog
        for name in relevant:
            change = by_name[name]
            if change.coarse:
                return False
            if entry.base_versions.get(name) != change.previous[1]:
                # Something bypassed maintenance (e.g. a direct install):
                # the stored rows no longer track the bases.
                return False
        for name in entry.base_tables:
            if name not in by_name:
                if entry.base_versions.get(name) != catalog.table(name).table._state[1]:
                    return False
        for name in relevant:
            if name not in deltas:
                deltas[name] = self._delta(name, by_name[name], seq)

        leaves = program.leaves
        heap = entry.table
        old_rows, _, old_ids = heap._state
        sids = entry.source_ids
        if len(sids) != len(old_rows):
            return False

        # Position maps under the new base states (changed tables from
        # their staged deltas, unchanged from the committed state).
        pos_maps = []
        leaf_deltas = []
        for name in leaves:
            delta = deltas.get(name)
            leaf_deltas.append(delta)
            if delta is not None:
                pos_maps.append(delta.pos_by_id)
            else:
                pos_maps.append(self._ext_state(name, catalog.table(name).table)[3])

        # Removal: any stored row deriving from a removed base row dies.
        survivors: list = []
        removed_mv_ids: list[int] = []
        width = len(leaves)
        for row, rid, sid in zip(old_rows, old_ids, sids):
            dead = False
            for i in range(width):
                delta = leaf_deltas[i]
                if delta is not None and sid[i] in delta.removed:
                    dead = True
                    break
            if dead:
                removed_mv_ids.append(rid)
                continue
            new_pos = tuple(pos_maps[i][sid[i]] for i in range(width))
            survivors.append((new_pos, row, rid, sid))

        # Addition: the telescoping expansion, one term per leaf whose
        # table gained new rows this commit.
        full_states = []
        for i, name in enumerate(leaves):
            delta = leaf_deltas[i]
            if delta is not None:
                full_states.append(
                    _LeafState(("full", name, delta.version), delta.wrapped)
                )
            else:
                ext = self._ext_state(name, catalog.table(name).table)
                full_states.append(_LeafState(("full", name, ext[1]), ext[2]))
        additions: list = []
        ctx = _Ctx(None, {}, program._full_cache)
        for i in range(width):
            delta = leaf_deltas[i]
            if delta is None or not delta.added:
                continue
            states = list(full_states)
            states[i] = delta.delta_state()
            for j in range(i):
                dj = leaf_deltas[j]
                if dj is not None and dj.added:
                    states[j] = dj.sub_state()
            ctx.states = states
            additions.extend(program.root.rows(ctx))

        additions.sort(key=_pos_key)
        add_ids = mvcc.new_row_ids(len(additions))
        combined = survivors + [
            (t[2], t[0], add_ids[k], t[1]) for k, t in enumerate(additions)
        ]
        combined.sort(key=itemgetter(0))
        final_rows = [c[1] for c in combined]
        final_ids = [c[2] for c in combined]
        final_sids = [c[3] for c in combined]

        new_base_versions = dict(entry.base_versions)
        for name in relevant:
            new_base_versions[name] = deltas[name].version

        added_id_set = set(add_ids)
        insert_at = [
            (index, c[2], c[1])
            for index, c in enumerate(combined)
            if c[2] in added_id_set
        ]
        # The WAL logs the positioned delta (not the full contents) plus
        # the base versions it advances to, so recovery replays both the
        # rows and the freshness bookkeeping.
        wal_delta = {
            "remove": removed_mv_ids,
            "insert_at": insert_at,
            "base_versions": new_base_versions,
        }
        extra.append(
            MatviewCommitChange(
                heap,
                heap._state,
                mvcc.next_stamp(),
                final_rows,
                final_ids,
                None,
                None,
                False,
                wal_delta=wal_delta,
            )
        )

        def finalize(
            entry=entry,
            versions=new_base_versions,
            sids=final_sids,
            added=len(additions),
            removed=len(removed_mv_ids),
        ) -> None:
            entry.base_versions = versions
            entry.source_ids = sids
            self.incremental_commits += 1
            self.rows_added += added
            self.rows_removed += removed

        finalizers.append(finalize)
        return True
