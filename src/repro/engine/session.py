"""PermDB: the original monolithic session API, kept as a deprecated shim.

The session logic moved to the DB-API 2.0 front end
(:class:`repro.engine.connection.Connection` — connections, cursors,
``?``/``:name`` placeholders, prepared statements, a plan cache).
:class:`PermDB` subclasses it and restores the one historical behavioral
difference: ``execute()``/``query()`` return the result
:class:`~repro.storage.table.Relation` directly instead of a cursor.

Migration::

    db = PermDB()                      ->  conn = repro.connect()
    rel = db.execute(sql)              ->  cur = conn.execute(sql, params)
    rel.rows                           ->  cur.fetchall()
    re-running the same query          ->  stmt = conn.prepare(sql)
                                           stmt.execute(params)   # plan paid once

Everything else (``profile``, ``explain``, ``load_rows``,
``create_table_from_relation``, ``catalog`` access) is unchanged —
``PermDB`` inherits it from ``Connection``.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..core.provenance import RewriteOptions
from ..storage.table import Relation
from .connection import Connection, connect  # noqa: F401  (re-export)


class PermDB(Connection):
    """Deprecated alias for :class:`~repro.engine.connection.Connection`
    with the legacy Relation-returning ``execute``.

    >>> db = PermDB()
    >>> _ = db.execute("CREATE TABLE r (a int, b text)")
    >>> _ = db.execute("INSERT INTO r VALUES (1, 'x'), (2, 'y')")
    >>> db.execute("SELECT PROVENANCE a FROM r WHERE a > 1").columns
    ['a', 'prov_r_a', 'prov_r_b']
    """

    def __init__(self, options: Optional[RewriteOptions] = None):
        warnings.warn(
            "PermDB is deprecated; use repro.connect() and the DB-API "
            "Connection/Cursor interface instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(options)

    def execute(self, sql: str, params: object = None) -> Relation:  # type: ignore[override]
        """Execute one or more ``;``-separated statements; returns the
        result of the last one (legacy behavior — ``Connection.execute``
        returns a cursor)."""
        return self.run(sql, params)

    def query(self, sql: str, params: object = None) -> Relation:
        """Alias of :meth:`execute` for read paths."""
        return self.run(sql, params)


def legacy_session(options: Optional[RewriteOptions] = None) -> PermDB:
    """A :class:`PermDB` without the deprecation warning.

    For library-internal callers (workload builders) that must return
    the legacy Relation-returning session for backward compatibility:
    the deprecation is aimed at *users*, and library code warning about
    itself would break ``-W error::DeprecationWarning`` runs.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return PermDB(options)
