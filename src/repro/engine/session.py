"""PermDB: the database session tying the whole pipeline together.

Implements the architecture of the paper's Figure 3::

    Parser & Analyzer  ->  Provenance Rewriter  ->  Planner  ->  Executor
    (syntactic and         (provenance               (optimize and
     semantic analysis,     rewrite)                  transform into
     view unfolding)                                  plan; execute)

plus DDL/DML, eager provenance registration and per-stage profiling.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from ..algebra import nodes as an
from ..analyzer import Analyzer
from ..catalog.catalog import Catalog
from ..catalog.schema import Attribute, Schema
from ..core.provenance import ProvenanceRewriter, RewriteOptions
from ..datatypes import SQLType, Value, is_true, type_from_name
from ..errors import AnalyzeError, ExecutionError, PermError
from ..executor import execute_plan
from ..executor.expr_eval import ExprCompiler
from ..optimizer import Optimizer
from ..planner import Planner
from ..sql import ast, parse_sql
from ..sql.printer import format_query
from ..storage.table import Relation
from .result import ExecutionProfile, StageTiming


def _status(message: str) -> Relation:
    """DDL/DML results are one-row relations, psql-style."""
    return Relation(Schema((Attribute("status", SQLType.TEXT),)), [(message,)])


class PermDB:
    """An in-memory Perm database session.

    >>> db = PermDB()
    >>> _ = db.execute("CREATE TABLE r (a int, b text)")
    >>> _ = db.execute("INSERT INTO r VALUES (1, 'x'), (2, 'y')")
    >>> db.execute("SELECT PROVENANCE a FROM r WHERE a > 1").columns
    ['a', 'prov_r_a', 'prov_r_b']
    """

    def __init__(self, options: Optional[RewriteOptions] = None):
        self.catalog = Catalog()
        self.options = options or RewriteOptions()
        self.rewriter = ProvenanceRewriter(self.catalog, self.options)
        self.optimizer = Optimizer(self.catalog)
        self.planner = Planner(self.catalog)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> Relation:
        """Execute one or more ``;``-separated statements; returns the
        result of the last one."""
        statements = parse_sql(sql)
        if not statements:
            raise PermError("empty statement")
        result: Optional[Relation] = None
        for statement in statements:
            result = self._execute_statement(statement)
        assert result is not None
        return result

    def query(self, sql: str) -> Relation:
        """Alias of :meth:`execute` for read paths."""
        return self.execute(sql)

    def explain(self, sql: str, mode: str = "plan") -> str:
        """The Perm-browser inspection surface as text.

        ``mode="rewrite"`` — the rewritten query as SQL (Figure 4,
        marker 2); ``mode="algebra"`` — original and rewritten algebra
        trees side by side (markers 3 and 4); ``mode="plan"`` — the
        optimized logical plan that is handed to the planner.
        """
        from ..algebra.render import render_side_by_side, render_tree
        from ..algebra.to_sql import algebra_to_sql

        profile = self.profile(sql, execute=False)
        assert profile.analyzed is not None and profile.rewritten is not None
        if mode == "rewrite":
            return algebra_to_sql(profile.rewritten)
        if mode == "algebra":
            return render_side_by_side(
                render_tree(profile.analyzed),
                render_tree(profile.rewritten),
                headers=("original query", "rewritten query"),
            )
        if mode == "plan":
            assert profile.optimized is not None
            return render_tree(profile.optimized)
        raise PermError(f"unknown EXPLAIN mode {mode!r} (rewrite|algebra|plan)")

    def profile(self, sql: str, execute: bool = True) -> ExecutionProfile:
        """Run the pipeline stage by stage, recording artifacts and
        wall-clock timings (the Figure 3 breakdown)."""
        profile = ExecutionProfile(sql=sql)

        start = time.perf_counter()
        statements = parse_sql(sql)
        if len(statements) != 1:
            raise PermError("profile() expects exactly one statement")
        statement = statements[0]
        if not isinstance(statement, ast.QueryStatement):
            raise PermError("profile() expects a query")
        profile.statement = statement
        profile.timings.append(StageTiming("parse", time.perf_counter() - start))

        start = time.perf_counter()
        analyzer = self._analyzer()
        analyzed = analyzer.analyze_query(statement.query)
        profile.analyzed = analyzed
        profile.timings.append(StageTiming("analyze", time.perf_counter() - start))

        start = time.perf_counter()
        expanded = self.rewriter.expand(analyzed)
        profile.rewritten = expanded.node
        profile.provenance_attrs = expanded.provenance_names
        profile.timings.append(StageTiming("provenance rewrite", time.perf_counter() - start))

        start = time.perf_counter()
        optimized = self.optimizer.optimize(expanded.node)
        profile.optimized = optimized
        profile.timings.append(StageTiming("optimize", time.perf_counter() - start))

        start = time.perf_counter()
        physical = self.planner.plan(optimized)
        profile.physical = physical
        profile.timings.append(StageTiming("plan", time.perf_counter() - start))

        if execute:
            start = time.perf_counter()
            profile.result = execute_plan(physical, expanded.provenance_names)
            profile.timings.append(StageTiming("execute", time.perf_counter() - start))
        return profile

    # ------------------------------------------------------------------
    # Helpers for the library API
    # ------------------------------------------------------------------
    def load_rows(self, table: str, rows: Sequence[Sequence[Value]]) -> int:
        """Bulk-insert Python rows into *table* (used by workload
        generators; bypasses SQL parsing)."""
        entry = self.catalog.table(table)
        return entry.table.insert_many(rows)

    def create_table_from_relation(self, name: str, relation: Relation) -> None:
        """Materialize a result as a stored table, carrying over its
        provenance-column registration (eager provenance)."""
        entry = self.catalog.create_table(
            name,
            Schema(Attribute(a.name, a.type) for a in relation.schema),
            provenance_attrs=tuple(relation.provenance_attrs),
        )
        entry.table.insert_many(relation.rows)

    def analyze_relation_schema(self, name: str) -> Schema:
        """Output schema of a table or (analyzed, marker-expanded) view."""
        if self.catalog.has_table(name):
            return self.catalog.table(name).schema
        view = self.catalog.view(name)
        analyzer = self._analyzer()
        node = analyzer.analyze_query(view.query)
        node = self.rewriter.expand(node).node
        return node.schema

    def run_query_node(self, node: an.Node, provenance_attrs: Sequence[str] = ()) -> Relation:
        """Optimize, plan and execute an already-analyzed algebra tree."""
        optimized = self.optimizer.optimize(node)
        physical = self.planner.plan(optimized)
        return execute_plan(physical, provenance_attrs)

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def _analyzer(self) -> Analyzer:
        analyzer = Analyzer(self.catalog)
        analyzer.provenance_expander = lambda node: self.rewriter.expand(node).node
        return analyzer

    def _execute_statement(self, statement: ast.Statement) -> Relation:
        if isinstance(statement, ast.QueryStatement):
            return self._execute_query(statement.query)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateTableAs):
            return self._execute_create_table_as(statement)
        if isinstance(statement, ast.CreateView):
            return self._execute_create_view(statement)
        if isinstance(statement, ast.DropRelation):
            return self._execute_drop(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement)
        raise PermError(f"unsupported statement {type(statement).__name__}")

    def _execute_query(self, query: ast.QueryExpr) -> Relation:
        analyzer = self._analyzer()
        node = analyzer.analyze_query(query)
        expanded = self.rewriter.expand(node)
        return self.run_query_node(expanded.node, expanded.provenance_names)

    def _execute_create_table(self, statement: ast.CreateTable) -> Relation:
        schema = Schema(
            Attribute(column.name, type_from_name(column.type_name))
            for column in statement.columns
        )
        self.catalog.create_table(statement.name, schema, statement.if_not_exists)
        return _status("CREATE TABLE")

    def _execute_create_table_as(self, statement: ast.CreateTableAs) -> Relation:
        if statement.if_not_exists and self.catalog.has_relation(statement.name):
            return _status("CREATE TABLE (exists, skipped)")
        result = self._execute_query(statement.query)
        self.create_table_from_relation(statement.name, result)
        return _status(f"CREATE TABLE ({len(result)} rows)")

    def _execute_create_view(self, statement: ast.CreateView) -> Relation:
        # Validate (and compute the provenance registration) eagerly.
        analyzer = self._analyzer()
        node = analyzer.analyze_query(statement.query)
        expanded = self.rewriter.expand(node)
        if statement.or_replace and self.catalog.has_view(statement.name):
            self.catalog.drop_view(statement.name)
        self.catalog.create_view(
            statement.name,
            statement.query,
            format_query(statement.query),
            provenance_attrs=expanded.provenance_names,
        )
        return _status("CREATE VIEW")

    def _execute_drop(self, statement: ast.DropRelation) -> Relation:
        if statement.kind == "table":
            dropped = self.catalog.drop_table(statement.name, statement.if_exists)
        else:
            dropped = self.catalog.drop_view(statement.name, statement.if_exists)
        return _status(f"DROP {statement.kind.upper()}" + ("" if dropped else " (skipped)"))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _execute_insert(self, statement: ast.Insert) -> Relation:
        entry = self.catalog.table(statement.table)
        schema = entry.schema
        if statement.columns is not None:
            positions = [schema.index_of(c) for c in statement.columns]
        else:
            positions = list(range(len(schema)))

        def widen(values: Sequence[Value]) -> list[Value]:
            if len(values) != len(positions):
                raise AnalyzeError(
                    f"INSERT expects {len(positions)} values, got {len(values)}"
                )
            row: list[Value] = [None] * len(schema)
            for position, value in zip(positions, values):
                row[position] = value
            return row

        if statement.rows is not None:
            analyzer = self._analyzer()
            compiler = ExprCompiler(Schema(()), plan_compiler=self._dml_plan_compiler())
            count = 0
            for value_exprs in statement.rows:
                resolved = [
                    analyzer.resolve_scalar(e, Schema(()), statement.table)
                    for e in value_exprs
                ]
                values = [compiler.compile(r)((), ()) for r in resolved]
                entry.table.insert(widen(values))
                count += 1
            return _status(f"INSERT {count}")

        assert statement.query is not None
        result = self._execute_query(statement.query)
        count = 0
        for row in result.rows:
            entry.table.insert(widen(row))
            count += 1
        return _status(f"INSERT {count}")

    def _predicate(self, entry, where: Optional[ast.Expression]) -> Callable:
        if where is None:
            return lambda row: True
        analyzer = self._analyzer()
        resolved = analyzer.resolve_scalar(where, entry.schema, entry.name)
        compiled = ExprCompiler(
            entry.schema, plan_compiler=self._dml_plan_compiler()
        ).compile(resolved)
        return lambda row: is_true(compiled(row, ()))

    def _dml_plan_compiler(self):
        planner = self.planner

        def compile_plan(plan_node: an.Node, outer_schemas):
            physical = planner.plan(plan_node, outer_schemas)
            return lambda env: list(physical.rows(env))

        return compile_plan

    def _execute_delete(self, statement: ast.Delete) -> Relation:
        entry = self.catalog.table(statement.table)
        removed = entry.table.delete_where(self._predicate(entry, statement.where))
        return _status(f"DELETE {removed}")

    def _execute_update(self, statement: ast.Update) -> Relation:
        entry = self.catalog.table(statement.table)
        analyzer = self._analyzer()
        compiler = ExprCompiler(entry.schema, plan_compiler=self._dml_plan_compiler())
        assignments: list[tuple[int, Callable]] = []
        for column, expression in statement.assignments:
            position = entry.schema.index_of(column)
            resolved = analyzer.resolve_scalar(expression, entry.schema, entry.name)
            assignments.append((position, compiler.compile(resolved)))

        def updater(row):
            new_row = list(row)
            for position, compiled in assignments:
                new_row[position] = compiled(row, ())
            return new_row

        changed = entry.table.update_where(self._predicate(entry, statement.where), updater)
        return _status(f"UPDATE {changed}")

    def _execute_explain(self, statement: ast.Explain) -> Relation:
        if not isinstance(statement.statement, ast.QueryStatement):
            raise PermError("EXPLAIN supports queries only")
        from ..sql.printer import format_statement

        text = self.explain(format_statement(statement.statement), statement.mode)
        rows = [(line,) for line in text.splitlines()]
        return Relation(Schema((Attribute("plan", SQLType.TEXT),)), rows)


def connect(options: Optional[RewriteOptions] = None) -> PermDB:
    """Open a new in-memory Perm session (mirrors DB-API naming)."""
    return PermDB(options)
