"""The query pipeline as an explicit, reusable object.

The paper's Figure 3 stage sequence::

    Parser & Analyzer  ->  Provenance Rewriter  ->  Planner  ->  Executor

used to live inline in ``PermDB.execute``/``PermDB.profile``, which meant
every call re-parsed, re-analyzed, re-rewrote, re-optimized and
re-planned its SQL. :class:`Pipeline` makes the stages first-class:
``prepare()`` runs everything up to (and including) physical planning
once and returns a :class:`PreparedPlan` that can be executed any number
of times with fresh parameter bindings — only the execute stage is paid
per call. :class:`PlanCache` (an LRU keyed on the statement's canonical
SQL, the catalog version and the rewrite options) sits in front of
``prepare()`` so repeated ``cursor.execute`` of the same query text skips
straight to execution.

:class:`PipelineCounters` counts stage invocations, which is how tests
and benchmarks assert that the hot path really skips the front of the
pipeline.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Hashable, Mapping, Optional, Sequence

from ..analyzer import Analyzer, infer_param_types
from ..catalog.catalog import Catalog
from ..core.provenance import ProvenanceRewriter, RewriteOptions
from ..datatypes import SQLType, Value, type_of_value
from ..errors import ParseError, PermError, ProgrammingError, TypeCheckError
from ..executor import ParamContext, execute_plan
from ..executor.iterators import PhysicalOp
from ..executor.vectorized import VectorOp
from ..optimizer import Optimizer
from ..planner import Planner
from ..sql import ast, parse_sql
from ..storage.table import Relation
from .result import ExecutionProfile, StageTiming

if False:  # pragma: no cover - typing only
    from ..algebra.nodes import Node


EMPTY_STATEMENT_MESSAGE = (
    "empty statement: the input contains no SQL (only whitespace or comments)"
)


@dataclass
class PipelineCounters:
    """How often each pipeline stage has run (the Figure 3 boxes).

    ``execute`` counts plan executions; the others count front-of-pipeline
    work. A well-behaved hot path shows ``execute`` racing ahead while the
    rest stand still.

    The optimizer additionally reports its internals: ``optimize_passes``
    counts rule-fixpoint iterations, ``optimize_bound_hits`` how often the
    fixpoint hit its safety bound without converging (a warning is raised
    too), ``joins_reordered`` cost-based join-region re-shapes,
    ``joinbacks_eliminated`` dropped redundant provenance join-backs, and
    ``columns_pruned`` projection columns removed as dead.
    """

    parse: int = 0
    analyze: int = 0
    rewrite: int = 0
    optimize: int = 0
    plan: int = 0
    execute: int = 0
    optimize_passes: int = 0
    optimize_bound_hits: int = 0
    joins_reordered: int = 0
    joinbacks_eliminated: int = 0
    columns_pruned: int = 0
    # Materialized views: explicit REFRESH statements, and refreshes the
    # connection ran automatically because a read outside a transaction
    # hit a stale view (the recompute-fallback path for shapes the
    # incremental maintainer cannot handle).
    matview_refreshes: int = 0
    matview_auto_refreshes: int = 0

    def snapshot(self) -> "PipelineCounters":
        return replace(self)

    def prepared_since(self, before: "PipelineCounters") -> int:
        """Front-of-pipeline (analyze) runs since *before*."""
        return self.analyze - before.analyze

    def executed_since(self, before: "PipelineCounters") -> int:
        return self.execute - before.execute


@dataclass
class PreparedPlan:
    """Everything ``prepare()`` produced for one query statement.

    The physical plan's expressions are compiled against the pipeline's
    shared :class:`ParamContext`; :meth:`execute` binds slot-ordered
    parameter values into that context and runs only the execute stage.
    """

    sql: str
    statement: ast.QueryStatement
    # Intermediate artifacts; present on freshly prepared plans (profile
    # and explain read them) but dropped before a plan enters the cache —
    # provenance-rewritten trees are much larger than the query, and
    # execution needs only the physical plan.
    analyzed: Optional["Node"]
    rewritten: Optional["Node"]
    optimized: Optional["Node"]
    physical: "PhysicalOp | VectorOp"
    provenance_attrs: tuple[str, ...]
    param_specs: tuple[Optional[str], ...]  # slot order; None = positional
    param_types: dict[int, SQLType]
    # Catalog version the plan was built against; a mismatch means some
    # DDL ran since and the plan may scan dropped storage (prepared
    # statements re-prepare, the cache simply never matches).
    catalog_version: int = -1
    # Heap-version facts any statistics-based plan simplification relied
    # on (redundant join-back elimination proves at-most-one-match from
    # exact per-version column statistics). Row-level DML does not bump
    # the catalog version, so these are revalidated before every
    # execution and the plan transparently re-prepares when stale.
    # The versions are *snapshot stamps* (repro.storage.mvcc): reading
    # ``table.version`` inside a transaction resolves to the visible
    # state's stamp, and stamps are globally unique per state — so a
    # version bump inside a rolled-back transaction can neither
    # invalidate committed plans nor stale-validate transaction-local
    # ones, and a commit (which re-installs its final working stamp)
    # keeps plans prepared inside the transaction valid afterwards.
    stats_deps: tuple[tuple[str, int], ...] = ()
    # Materialized views this plan *unfolded* because their stored rows
    # could not be trusted (stale, or base-version skew). The connection
    # refreshes these before serving reads outside a transaction.
    stale_matviews: tuple[str, ...] = ()
    # Materialized views this plan scans *from the stored heap* — a
    # decision that holds only while each view stays fresh for the
    # executing snapshot. Like ``stats_deps`` this is revalidated before
    # every execution: a transaction that writes a base table after
    # preparing (or a cached plan outliving a freshness change that
    # never bumped the catalog version) re-prepares and unfolds instead
    # of serving stored rows its snapshot cannot trust.
    fresh_matviews: tuple[str, ...] = ()
    timings: list[StageTiming] = field(default_factory=list)
    _pipeline: "Pipeline" = None  # type: ignore[assignment]

    @property
    def schema(self):
        return self.physical.schema

    @property
    def parameter_count(self) -> int:
        return len(self.param_specs)

    def release_intermediates(self) -> None:
        """Drop the logical-tree artifacts, keeping only what repeated
        execution needs (called when the plan enters the cache)."""
        self.analyzed = None
        self.rewritten = None
        self.optimized = None
        self.timings = []

    def stats_deps_valid(self) -> bool:
        """Whether every heap-version fact baked into this plan still
        holds (always true for plans without statistics-based
        simplifications)."""
        if not self.stats_deps:
            return True
        catalog = self._pipeline.catalog
        for table_name, heap_version in self.stats_deps:
            if not (
                catalog.has_table(table_name) or catalog.has_matview(table_name)
            ):
                return False
            if catalog.scan_entry(table_name).table.version != heap_version:
                return False
        return True

    def matviews_still_fresh(self) -> bool:
        """Whether every matview this plan scans from its stored heap is
        still fresh for the caller's snapshot (trivially true for plans
        that scan no matview)."""
        catalog = self._pipeline.catalog
        for name in self.fresh_matviews:
            if not catalog.has_matview(name) or not catalog.matview_fresh(
                catalog.matview(name)
            ):
                return False
        return True

    def deps_valid(self) -> bool:
        """Every execution-time fact the plan relies on: statistics-based
        simplifications and fresh-matview scan decisions."""
        return self.stats_deps_valid() and self.matviews_still_fresh()

    def refresh(self) -> None:
        """Re-run the prepare stages for this plan's statement in place,
        so every holder (plan cache entries, prepared statements) picks
        up the fresh physical plan."""
        fresh = self._pipeline.prepare(self.statement, self.sql)
        self.analyzed = fresh.analyzed
        self.rewritten = fresh.rewritten
        self.optimized = fresh.optimized
        self.physical = fresh.physical
        self.provenance_attrs = fresh.provenance_attrs
        self.param_types = fresh.param_types
        self.catalog_version = fresh.catalog_version
        self.stats_deps = fresh.stats_deps
        self.stale_matviews = fresh.stale_matviews
        self.fresh_matviews = fresh.fresh_matviews
        self.release_intermediates()

    def execute(self, values: Sequence[Value] = ()) -> Relation:
        """Run the execute stage with *values* bound to the parameter
        slots (already in slot order — see :func:`bind_parameters`)."""
        if not self.deps_valid():
            # DML invalidated a statistics-derived simplification (e.g. a
            # column this plan's join-back elimination proved unique is
            # no longer unique), or a matview this plan scans is no
            # longer fresh for the executing snapshot (e.g. this very
            # transaction wrote one of its base tables): rebuild before
            # running a stale plan.
            self.refresh()
        self._pipeline.counters.execute += 1
        return execute_plan(
            self.physical, self.provenance_attrs, values, context=self._pipeline.params
        )


class PlanCache:
    """A small LRU of :class:`PreparedPlan` objects.

    Keys carry the catalog version and rewrite-option fingerprint, so DDL
    or strategy toggles simply stop matching old entries (which then age
    out) — no explicit invalidation hooks needed.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError("plan cache capacity must be >= 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, PreparedPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[PreparedPlan]:
        plan = self._entries.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: Hashable, plan: PreparedPlan) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
        }


class Pipeline:
    """The parse -> analyze -> provenance-rewrite -> optimize -> plan
    stage sequence, bound to one catalog and one set of rewrite options."""

    def __init__(
        self,
        catalog: Catalog,
        options: RewriteOptions,
        params: Optional[ParamContext] = None,
        engine: str = "row",
        optimizer_mode: str = "cost",
    ):
        self.catalog = catalog
        self.options = options
        self.params = params if params is not None else ParamContext()
        self.engine = engine
        self.optimizer_mode = optimizer_mode
        self.rewriter = ProvenanceRewriter(catalog, options)
        self.counters = PipelineCounters()
        self.optimizer = Optimizer(catalog, mode=optimizer_mode, counters=self.counters)
        self.planner = Planner(catalog, params=self.params, engine=engine)

    # ------------------------------------------------------------------
    def analyzer(self) -> Analyzer:
        analyzer = Analyzer(self.catalog)
        analyzer.provenance_expander = lambda node: self.rewriter.expand(node).node
        return analyzer

    def parse(self, sql: str) -> list[ast.Statement]:
        """Parse *sql* into statements; empty/comment-only input raises a
        :class:`ParseError` that says so."""
        self.counters.parse += 1
        statements = parse_sql(sql)
        if not statements:
            raise ParseError(EMPTY_STATEMENT_MESSAGE)
        return statements

    # ------------------------------------------------------------------
    def prepare(self, statement: ast.QueryStatement, sql: str = "") -> PreparedPlan:
        """Run every stage except execute, recording per-stage timings."""
        timings: list[StageTiming] = []

        start = time.perf_counter()
        analyzer = self.analyzer()
        analyzed = analyzer.analyze_query(statement.query)
        timings.append(StageTiming("analyze", time.perf_counter() - start))
        self.counters.analyze += 1

        start = time.perf_counter()
        expanded = self.rewriter.expand(analyzed)
        timings.append(StageTiming("provenance rewrite", time.perf_counter() - start))
        self.counters.rewrite += 1

        start = time.perf_counter()
        optimized = self.optimizer.optimize(expanded.node)
        timings.append(StageTiming("optimize", time.perf_counter() - start))
        self.counters.optimize += 1

        start = time.perf_counter()
        physical = self.planner.plan_root(optimized)
        timings.append(StageTiming("plan", time.perf_counter() - start))
        self.counters.plan += 1

        return PreparedPlan(
            sql=sql,
            statement=statement,
            analyzed=analyzed,
            rewritten=expanded.node,
            optimized=optimized,
            physical=physical,
            provenance_attrs=expanded.provenance_names,
            param_specs=ast.statement_parameters(statement),
            param_types=infer_param_types(analyzed),
            catalog_version=self.catalog.version,
            stats_deps=tuple(self.optimizer.stats_deps),
            stale_matviews=tuple(sorted(analyzer.stale_matviews)),
            fresh_matviews=tuple(sorted(analyzer.fresh_matviews)),
            timings=timings,
            _pipeline=self,
        )

    # ------------------------------------------------------------------
    def profile(
        self,
        sql: str,
        execute: bool = True,
        params: object = None,
    ) -> ExecutionProfile:
        """Run the pipeline stage by stage, recording artifacts and
        wall-clock timings (the Figure 3 breakdown)."""
        profile = ExecutionProfile(sql=sql)

        start = time.perf_counter()
        statements = self.parse(sql)
        parse_seconds = time.perf_counter() - start
        if len(statements) != 1:
            raise PermError("profile() expects exactly one statement")
        statement = statements[0]
        if not isinstance(statement, ast.QueryStatement):
            raise PermError("profile() expects a query")
        profile.statement = statement
        profile.timings.append(StageTiming("parse", parse_seconds))

        prepared = self.prepare(statement, sql)
        profile.analyzed = prepared.analyzed
        profile.rewritten = prepared.rewritten
        profile.optimized = prepared.optimized
        profile.physical = prepared.physical
        profile.provenance_attrs = prepared.provenance_attrs
        profile.timings.extend(prepared.timings)

        if execute:
            values = bind_parameters(
                prepared.param_specs, params, prepared.param_types
            )
            start = time.perf_counter()
            profile.result = prepared.execute(values)
            profile.timings.append(StageTiming("execute", time.perf_counter() - start))
        return profile


# ---------------------------------------------------------------------------
# Parameter binding
# ---------------------------------------------------------------------------

# Bound values whose Python type is compatible with each expected SQLType.
# Numeric slots accept both int and float — the engine's comparison and
# arithmetic semantics mix them freely, so `a > 1.5` and `a > ?` with 1.5
# must both work against an int column.
_COMPATIBLE: dict[SQLType, tuple[type, ...]] = {
    SQLType.INT: (int, float),
    SQLType.FLOAT: (int, float),
    SQLType.TEXT: (str,),
    SQLType.BOOL: (bool,),
}


def bind_parameters(
    specs: tuple[Optional[str], ...],
    params: object,
    param_types: Mapping[int, SQLType] = {},
) -> tuple[Value, ...]:
    """Order user-supplied *params* into slot order and type-check them.

    *specs* comes from the parser (:func:`repro.sql.ast.statement_parameters`):
    one entry per slot, the placeholder name or ``None`` for positional
    ``?``. Positional statements take a sequence, named statements take a
    mapping; mismatched counts, missing or unknown names, and values that
    contradict the analyzer's expected types all raise eagerly, before
    any execution starts.
    """
    if not specs:
        if params:
            raise ProgrammingError(
                f"statement takes no parameters ({_describe_params(params)} given)"
            )
        return ()

    named = any(name is not None for name in specs)
    if params is None:
        raise ProgrammingError(
            f"statement expects {len(specs)} parameter(s), none given"
        )

    if named:
        if not isinstance(params, Mapping):
            raise ProgrammingError(
                "statement uses named placeholders; pass parameters as a mapping"
            )
        supplied = {str(k).lower(): v for k, v in params.items()}
        wanted = [name for name in specs if name is not None]
        missing = [name for name in wanted if name not in supplied]
        extra = sorted(set(supplied) - set(wanted))
        if missing:
            raise ProgrammingError(f"missing value for parameter(s): {', '.join(missing)}")
        if extra:
            raise ProgrammingError(f"unknown parameter(s): {', '.join(extra)}")
        values = tuple(supplied[name] for name in wanted)
    else:
        if isinstance(params, Mapping):
            raise ProgrammingError(
                "statement uses positional (?) placeholders; pass parameters as a sequence"
            )
        if isinstance(params, (str, bytes)) or not isinstance(params, Sequence):
            raise ProgrammingError(
                "parameters must be a sequence (tuple or list) of values"
            )
        if len(params) != len(specs):
            raise ProgrammingError(
                f"statement expects {len(specs)} parameter(s), got {len(params)}"
            )
        values = tuple(params)

    for index, value in enumerate(values):
        expected = param_types.get(index)
        if expected is None or value is None:
            continue
        allowed = _COMPATIBLE.get(expected)
        if allowed is None:
            continue
        # bool is an int subclass; only BOOL slots accept it.
        if isinstance(value, bool) and expected is not SQLType.BOOL:
            ok = False
        else:
            ok = isinstance(value, allowed)
        if not ok:
            label = f":{specs[index]}" if specs[index] is not None else f"${index + 1}"
            try:
                got = type_of_value(value).value
            except TypeCheckError:
                got = type(value).__name__
            raise TypeCheckError(
                f"parameter {label} expects {expected.value}, got {got} ({value!r})"
            )
    return values


def _describe_params(params: object) -> str:
    if isinstance(params, Mapping):
        return f"{len(params)} named"
    if isinstance(params, Sequence) and not isinstance(params, (str, bytes)):
        return f"{len(params)} positional"
    return repr(params)
