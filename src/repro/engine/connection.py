"""The DB-API 2.0 connection: Perm's user-facing session object.

``repro.connect()`` returns a :class:`Connection` that looks like a real
database driver — cursors, ``?``/``:name`` placeholders, prepared
statements, context-manager support — while implementing the paper's
Figure 3 architecture underneath::

    Parser & Analyzer  ->  Provenance Rewriter  ->  Planner  ->  Executor

The expensive front of that pipeline runs once per query shape: query
statements go through a :class:`~repro.engine.pipeline.PlanCache` keyed
on their canonical SQL text, and :meth:`prepare` returns an explicit
:class:`~repro.engine.prepared.PreparedStatement` whose ``execute`` pays
only the execute stage. DDL/DML, eager provenance registration and
per-stage profiling are carried over from the original ``PermDB``
session, which remains available as a deprecated shim
(:class:`repro.engine.session.PermDB`).

Statements execute inside snapshot-isolated MVCC transactions
(:mod:`repro.storage.mvcc`): autocommit wraps each statement in its own
implicit transaction, ``BEGIN``/``COMMIT``/``ROLLBACK``/``SAVEPOINT``
(or ``autocommit=False`` plus :meth:`commit`/:meth:`rollback`) give
multi-statement transactions, and several connections can share one
:class:`~repro.engine.database.Database` — readers keep a stable
snapshot while writers commit, with first-committer-wins conflicts
(:class:`~repro.errors.SerializationError`).
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable, Iterable, Optional, Sequence

from ..algebra import nodes as an
from ..analyzer import Analyzer
from ..catalog.schema import Attribute, Schema
from ..core.provenance import RewriteOptions
from ..datatypes import SQLType, Value, is_true, type_from_name
from ..errors import (
    AnalyzeError,
    CatalogError,
    OperationalError,
    PermError,
    ProgrammingError,
    SerializationError,
)
from ..executor import execute_plan
from ..executor.expr_eval import ExprCompiler
from ..backend.registry import engine_names, unknown_engine_message
from ..sql import ast
from ..sql.printer import format_query, format_statement
from ..storage import mvcc
from ..storage.table import Relation
from .cursor import Cursor, _status_rowcount
from .database import Database
from .matview import base_table_names, compile_program
from .pipeline import Pipeline, PlanCache, PreparedPlan, bind_parameters
from .prepared import PreparedStatement
from .result import ExecutionProfile

_EXPLAIN_MODES = ("rewrite", "algebra", "plan")

# Environment override for the default execution engine, so an entire
# test/benchmark run can be flipped (the CI matrix runs the tier-1 suite
# once per engine: REPRO_ENGINE=vectorized).
ENGINE_ENV_VAR = "REPRO_ENGINE"

# Environment override for the optimizer mode ("cost" or "rules"), so the
# optimizer-on/optimizer-off differential can sweep whole runs.
OPTIMIZER_ENV_VAR = "REPRO_OPTIMIZER"


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine choice against the backend registry, falling
    back to $REPRO_ENGINE, then "row". When the invalid name came from
    the environment rather than an ``engine=`` argument, the error says
    so — a user who never passed an engine should be pointed at the
    variable."""
    from_env = not engine and bool(os.environ.get(ENGINE_ENV_VAR))
    chosen = engine or os.environ.get(ENGINE_ENV_VAR) or "row"
    chosen = chosen.lower()
    if chosen not in engine_names():
        raise ProgrammingError(
            unknown_engine_message(chosen, env_var=ENGINE_ENV_VAR if from_env else None)
        )
    return chosen


def resolve_optimizer(optimizer: Optional[str]) -> str:
    """Validate an optimizer mode, falling back to $REPRO_OPTIMIZER, then
    the cost-based default."""
    from ..optimizer import OPTIMIZER_MODES

    chosen = optimizer or os.environ.get(OPTIMIZER_ENV_VAR) or "cost"
    chosen = chosen.lower()
    if chosen not in OPTIMIZER_MODES:
        raise ProgrammingError(
            f"unknown optimizer mode {chosen!r} "
            f"(valid modes: {', '.join(OPTIMIZER_MODES)})"
        )
    return chosen


def _status(message: str) -> Relation:
    """DDL/DML results are one-row relations, psql-style."""
    return Relation(Schema((Attribute("status", SQLType.TEXT),)), [(message,)])


class Connection:
    """An in-memory Perm database session with a DB-API 2.0 surface.

    >>> import repro
    >>> conn = repro.connect()
    >>> _ = conn.execute("CREATE TABLE r (a int, b text)")
    >>> _ = conn.execute("INSERT INTO r VALUES (?, ?)", (1, 'x'))
    >>> conn.execute("SELECT PROVENANCE a FROM r WHERE a > ?", (0,)).fetchall()
    [(1, 1, 'x')]
    """

    # How often an autocommit statement that lost the first-committer-wins
    # race is transparently retried on a fresh snapshot before the
    # SerializationError surfaces (explicit transactions never retry —
    # only the application can re-run multi-statement logic).
    AUTOCOMMIT_RETRIES = 5

    def __init__(
        self,
        options: Optional[RewriteOptions] = None,
        plan_cache_size: int = 128,
        engine: Optional[str] = None,
        optimizer: Optional[str] = None,
        database: Optional[Database] = None,
        autocommit: bool = True,
    ):
        self.database = database if database is not None else Database()
        self.catalog = self.database.catalog
        self.options = options or RewriteOptions()
        self.engine = resolve_engine(engine)
        self.optimizer_mode = resolve_optimizer(optimizer)
        self.pipeline = Pipeline(
            self.catalog,
            self.options,
            engine=self.engine,
            optimizer_mode=self.optimizer_mode,
        )
        self.plan_cache = PlanCache(plan_cache_size)
        self._closed = False
        self._autocommit = bool(autocommit)
        self._txn: Optional[mvcc.Transaction] = None
        # How many times this connection's autocommit statements lost the
        # first-committer-wins race and were transparently retried
        # (telemetry; surfaced per session by the server's STATS).
        self.serialization_retries = 0

    # Component access (kept for existing callers of the PermDB-era API).
    @property
    def rewriter(self):
        return self.pipeline.rewriter

    @property
    def optimizer(self):
        return self.pipeline.optimizer

    @property
    def planner(self):
        return self.pipeline.planner

    @property
    def counters(self):
        """Pipeline stage counters (see :class:`PipelineCounters`)."""
        return self.pipeline.counters

    # ------------------------------------------------------------------
    # DB-API 2.0 surface
    # ------------------------------------------------------------------
    def cursor(self) -> Cursor:
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str, params: object = None) -> Cursor:
        """Create a cursor, execute *sql* on it and return it
        (sqlite3-style shortcut)."""
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str, seq_of_params: Iterable[object]) -> Cursor:
        return self.cursor().executemany(sql, seq_of_params)

    def prepare(self, sql: str) -> PreparedStatement:
        """Pay the parse/analyze/rewrite/optimize/plan stages now; the
        returned statement's ``execute(params)`` only pays execution."""
        self._check_open()
        statements = self.pipeline.parse(sql)
        if len(statements) != 1:
            raise ProgrammingError("prepare() expects exactly one statement")
        statement = statements[0]
        if not isinstance(statement, ast.QueryStatement):
            raise ProgrammingError(
                "prepare() supports queries only; run DDL/DML through execute()"
            )
        self._auto_refresh_matviews(statement)
        plan = self._in_transaction(lambda: self._prepared_for(statement, sql))
        return PreparedStatement(self, plan)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    @property
    def autocommit(self) -> bool:
        """When true (the default), each statement runs in its own
        implicit snapshot transaction that commits as the statement
        finishes; ``BEGIN`` still opens an explicit multi-statement
        transaction. When false, the PEP 249 model applies: the first
        statement implicitly opens a transaction that stays open until
        :meth:`commit` or :meth:`rollback`."""
        return self._autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        value = bool(value)
        if value and not self._autocommit and self._txn is not None:
            # Leaving manual-commit mode commits the open transaction
            # (sqlite3 does the same).
            self.commit()
        self._autocommit = value

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit or PEP 249-implicit transaction is open."""
        return self._txn is not None and self._txn.active

    def begin(self) -> None:
        """Open an explicit transaction (the SQL ``BEGIN``)."""
        self._check_open()
        if self.in_transaction:
            raise OperationalError("a transaction is already in progress")
        self._txn = self.database.begin()

    def commit(self) -> None:
        """Commit the open transaction, making its writes the tables' new
        committed state. Raises :class:`~repro.errors.SerializationError`
        (and rolls back) if a concurrent transaction committed a table
        this one wrote first. Without an open transaction: a no-op."""
        self._check_open()
        txn, self._txn = self._txn, None
        if txn is not None and txn.active:
            txn.commit()

    def rollback(self) -> None:
        """Discard the open transaction's writes; snapshot reads show the
        pre-transaction state again immediately — data, catalog
        statistics and prepared-plan validity all revert with the
        version stamps. Without an open transaction: a no-op."""
        self._check_open()
        txn, self._txn = self._txn, None
        if txn is not None:
            txn.rollback()

    def _in_transaction(self, fn, atomic: bool = False):
        """Run *fn* inside this connection's transaction.

        - Nested call (a statement already executing, e.g. the inner
          query of ``INSERT ... SELECT``): reuse the thread's active
          transaction.
        - Open explicit/implicit transaction: activate it for the call;
          with ``atomic=True`` the call is additionally fenced by an
          internal savepoint so a failure mid-way (``executemany`` with a
          bad parameter set) undoes the whole call, not just the failing
          piece.
        - Otherwise (autocommit): a fresh single-statement transaction
          that commits as *fn* returns and rolls back if it raises; a
          commit that loses the first-committer-wins race is retried on
          a fresh snapshot a few times before surfacing.
        """
        if mvcc.current_transaction() is not None:
            return fn()
        if self._txn is not None and not self._txn.active:
            self._txn = None  # defensively drop a dead transaction
        if self._txn is None and not self._autocommit:
            # PEP 249: the first statement implicitly opens a transaction.
            self._txn = self.database.begin()
        if self._txn is not None:
            txn = self._txn
            if not atomic:
                with mvcc.activate(txn):
                    return fn()
            guard = f"_repro_atomic_{id(fn):x}"
            txn.savepoint(guard)
            try:
                with mvcc.activate(txn):
                    result = fn()
            except BaseException:
                txn.rollback_to(guard)
                txn.release(guard)
                raise
            txn.release(guard)
            return result
        return self._run_autocommit(fn)

    def _run_autocommit(self, fn):
        """Run *fn* in its own one-shot transaction that commits as *fn*
        returns and rolls back if it raises; a commit that loses the
        first-committer-wins race is retried on a fresh snapshot a few
        times before surfacing."""
        attempts = self.AUTOCOMMIT_RETRIES
        for attempt in range(attempts):
            txn = self.database.begin()
            try:
                with mvcc.activate(txn):
                    result = fn()
            except BaseException:
                txn.rollback()
                raise
            try:
                txn.commit()
            except SerializationError:
                if attempt == attempts - 1:
                    raise
                self.serialization_retries += 1
                continue
            return result

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return  # idempotent (PEP 249: a second close is harmless)
        # PEP 249: closing with an open transaction rolls it back.
        txn, self._txn = self._txn, None
        if txn is not None:
            txn.rollback()
        self._closed = True
        self.plan_cache.clear()
        self.pipeline.planner.close()

    def __enter__(self) -> "Connection":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ProgrammingError("connection is closed")

    # ------------------------------------------------------------------
    # Engine-level execution (returns Relations, used by the shim, the
    # shell, the browser and the library helpers)
    # ------------------------------------------------------------------
    def run(self, sql: str, params: object = None) -> Relation:
        """Execute one or more ``;``-separated statements; returns the
        result relation of the last one. Parameters require a single
        statement."""
        return self._execute_sql(sql, params)[0]

    def query(self, sql: str, params: object = None) -> Relation:
        """Alias of :meth:`run` for read paths."""
        return self.run(sql, params)

    def _execute_sql(self, sql: str, params: object) -> tuple[Relation, int]:
        self._check_open()
        statements = self.pipeline.parse(sql)
        if params is not None and len(statements) != 1:
            raise ProgrammingError(
                "parameters can only be bound to a single statement "
                f"({len(statements)} given)"
            )
        relation: Optional[Relation] = None
        rowcount = -1
        for statement in statements:
            relation, rowcount = self._run_statement(statement, params)
        assert relation is not None
        return relation, rowcount

    def _execute_sql_many(
        self, sql: str, seq_of_params: Iterable[object]
    ) -> tuple[Optional[Relation], int]:
        """One statement, many parameter sets (cursor ``executemany``).
        The statement is parsed once; queries are also planned once."""
        self._check_open()
        statements = self.pipeline.parse(sql)
        if len(statements) != 1:
            raise ProgrammingError("executemany() requires a single statement")
        statement = statements[0]
        if isinstance(statement, ast.TransactionControl):
            raise ProgrammingError(
                "transaction control statements cannot be run with executemany()"
            )
        # Materialized up front: the whole batch is one atomic unit (and,
        # under autocommit, one implicit transaction that may be retried
        # on a serialization conflict).
        param_sets = list(seq_of_params)

        def run_batch() -> tuple[Optional[Relation], int]:
            relation: Optional[Relation] = None
            total = 0
            counted = True
            if not param_sets:
                # PEP 249: an empty parameter sequence affects zero rows
                # — but the statement must still be validated (parse
                # errors and missing relations surface either way).
                if isinstance(statement, ast.QueryStatement):
                    self._prepared_for(statement)
                    return None, 0
                if isinstance(statement, ast.Insert) and statement.rows is not None:
                    self._prepare_insert(statement)
                elif isinstance(statement, (ast.Insert, ast.Delete, ast.Update)):
                    verb = type(statement).__name__.upper()
                    self._dml_table(statement.table, verb)
                verb = type(statement).__name__.upper()
                return _status(f"{verb} 0"), 0
            if isinstance(statement, ast.Insert) and statement.rows is not None:
                # Bulk-INSERT fast path: analyze and compile the VALUES
                # expressions once, rebind per parameter set.
                specs = ast.statement_parameters(statement)
                runner = self._prepare_insert(statement)
                for params in param_sets:
                    self.pipeline.params.bind(bind_parameters(specs, params))
                    count = runner()
                    total += count
                    relation = _status(f"INSERT {count}")
                return relation, (total if relation is not None else -1)
            for params in param_sets:
                relation, rowcount = self._run_statement(statement, params)
                if rowcount < 0:
                    counted = False
                else:
                    total += rowcount
            return relation, (total if counted and relation is not None else -1)

        # All rows or none: a bad parameter set mid-batch (bind error,
        # coercion failure) leaves the table exactly as it was, whether
        # the batch runs in its own implicit transaction or inside an
        # explicit one (savepoint-fenced there).
        return self._in_transaction(run_batch, atomic=True)

    # DDL mutates the shared catalog directly — it cannot be undone by a
    # ROLLBACK, so running it inside a transaction would silently break
    # snapshot isolation. It is rejected there instead (Postgres allows
    # transactional DDL; sqlite and most servers do not) and always runs
    # in its own one-shot transaction, never the PEP 249 implicit one.
    _DDL_STATEMENTS = (
        ast.CreateTable,
        ast.CreateTableAs,
        ast.CreateView,
        ast.CreateMaterializedView,
        ast.RefreshMaterializedView,
        ast.DropRelation,
    )

    def _run_statement(
        self, statement: ast.Statement, params: object
    ) -> tuple[Relation, int]:
        if isinstance(statement, ast.TransactionControl):
            # An empty sequence/mapping is fine (DB-API callers often
            # forward one uniformly); actual values are not.
            if params:
                raise ProgrammingError(
                    "transaction control statements take no parameters"
                )
            return self._execute_transaction_control(statement), -1
        if isinstance(statement, ast.Checkpoint):
            if params:
                raise ProgrammingError("CHECKPOINT takes no parameters")
            performed = self.database.checkpoint()
            return _status("CHECKPOINT" if performed else "CHECKPOINT (in-memory)"), -1
        if isinstance(statement, self._DDL_STATEMENTS):
            if self.in_transaction:
                raise OperationalError(
                    "DDL is not transactional; commit or rollback first"
                )
            return self._run_autocommit(
                lambda: self._run_statement_in_txn(statement, params)
            )
        if isinstance(statement, ast.QueryStatement):
            # Reads outside a transaction refresh stale materialized
            # views first, so the planned query can scan the stored rows
            # instead of unfolding the definition. Inside a transaction
            # the snapshot predates any refresh, so the analyzer unfolds
            # stale views there (same results, no fast path).
            self._auto_refresh_matviews(statement)
        return self._in_transaction(
            lambda: self._run_statement_in_txn(statement, params)
        )

    def _execute_transaction_control(self, statement: ast.TransactionControl) -> Relation:
        """BEGIN/COMMIT/ROLLBACK/SAVEPOINT against this connection's
        transaction state (never enters the query pipeline)."""
        action = statement.action
        if action == "begin":
            self.begin()
            return _status("BEGIN")
        if action == "commit":
            self.commit()
            return _status("COMMIT")
        if action == "rollback":
            self.rollback()
            return _status("ROLLBACK")
        assert statement.savepoint is not None
        if not self.in_transaction:
            raise OperationalError(
                f"{action.replace('_', ' ').upper()} {statement.savepoint}: "
                "no transaction in progress (start one with BEGIN)"
            )
        assert self._txn is not None
        if action == "savepoint":
            self._txn.savepoint(statement.savepoint)
            return _status("SAVEPOINT")
        if action == "rollback_to":
            self._txn.rollback_to(statement.savepoint)
            return _status("ROLLBACK")
        self._txn.release(statement.savepoint)
        return _status("RELEASE")

    def _run_statement_in_txn(
        self, statement: ast.Statement, params: object
    ) -> tuple[Relation, int]:
        if isinstance(statement, ast.QueryStatement):
            prepared = self._prepared_for(statement)
            values = bind_parameters(
                prepared.param_specs, params, prepared.param_types
            )
            relation = prepared.execute(values)
            return relation, len(relation)
        if isinstance(statement, ast.Explain):
            # EXPLAIN never executes the inner statement, so its
            # placeholders need no values (but accept them if given).
            if params is not None:
                bind_parameters(ast.statement_parameters(statement), params)
            return self._execute_explain(statement), -1
        values = bind_parameters(ast.statement_parameters(statement), params)
        self.pipeline.params.bind(values)
        relation = self._execute_statement(statement)
        return relation, _status_rowcount(relation)

    def _prepared_for(
        self, statement: ast.QueryStatement, sql: str = ""
    ) -> PreparedPlan:
        """Fetch a plan from the cache or run the pipeline for it.

        The key is the statement's *canonical* SQL (deparse of the parsed
        AST, whitespace- and case-normalized by construction) plus the
        catalog version, the rewrite-option fingerprint and the planner's
        engine cache token (engine name + resolved backend options such
        as the partition shard count) — so schema changes, browser
        strategy toggles and backend reconfiguration never serve a stale
        plan.
        """
        canonical = format_statement(statement)
        key = (
            canonical,
            self.catalog.version,
            repr(self.options),
            self.pipeline.planner.cache_token,
            self.optimizer_mode,
        )
        plan = self.plan_cache.get(key)
        if plan is None:
            plan = self.pipeline.prepare(statement, sql or canonical)
            plan.release_intermediates()
            self.plan_cache.put(key, plan)
        return plan

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def explain(self, sql: str, mode: str = "plan") -> str:
        """The Perm-browser inspection surface as text.

        ``mode`` (case-insensitive): ``"rewrite"`` — the rewritten query
        as SQL (Figure 4, marker 2); ``"algebra"`` — original and
        rewritten algebra trees side by side (markers 3 and 4);
        ``"plan"`` — the optimized logical plan handed to the planner,
        each node annotated with its estimated output rows and cumulative
        cost from the catalog statistics.
        """
        from ..algebra.render import render_side_by_side, render_tree
        from ..algebra.to_sql import algebra_to_sql

        mode = mode.lower()
        if mode not in _EXPLAIN_MODES:
            raise PermError(
                f"unknown EXPLAIN mode {mode!r} "
                f"(valid modes: {', '.join(_EXPLAIN_MODES)})"
            )
        profile = self.profile(sql, execute=False)
        assert profile.analyzed is not None and profile.rewritten is not None
        if mode == "rewrite":
            return algebra_to_sql(profile.rewritten)
        if mode == "algebra":
            return render_side_by_side(
                render_tree(profile.analyzed),
                render_tree(profile.rewritten),
                headers=("original query", "rewritten query"),
            )
        assert profile.optimized is not None
        return render_tree(profile.optimized, annotate=self._cost_annotator())

    def _cost_annotator(self):
        """Per-node ``(rows≈…, cost≈…)`` EXPLAIN annotations; nodes whose
        cardinality cannot be grounded in statistics stay bare."""
        from ..errors import CostEstimationError
        from ..optimizer import CostEstimator

        # Identity-memoized: the annotator estimates every subtree once
        # even though parents re-estimate their children, and the tree
        # stays alive for the duration of the render.
        estimator = CostEstimator(self.catalog, cache=True)

        def annotate(node: an.Node) -> Optional[str]:
            try:
                estimate = estimator.estimate(node)
            except CostEstimationError:
                return None
            return f"(rows≈{estimate.rows:.0f}, cost≈{estimate.cost:.1f})"

        return annotate

    def profile(
        self, sql: str, execute: bool = True, params: object = None
    ) -> ExecutionProfile:
        """Run the pipeline stage by stage, recording artifacts and
        wall-clock timings (the Figure 3 breakdown)."""
        self._check_open()
        return self._in_transaction(
            lambda: self.pipeline.profile(sql, execute=execute, params=params)
        )

    def _run_prepared(self, plan: PreparedPlan, values: Sequence[Value]) -> Relation:
        """Execute a prepared plan inside this connection's transaction
        (the path :class:`PreparedStatement` takes, so its reads see the
        same snapshot as ``cursor.execute`` would)."""
        if (
            plan.stale_matviews
            and not self.in_transaction
            and mvcc.current_transaction() is None
        ):
            self._auto_refresh_matviews(plan.statement)
            if plan.catalog_version != self.catalog.version:
                # The refresh invalidated this unfolded plan; rebuild it
                # in place so this execution already scans the heap.
                self._run_autocommit(plan.refresh)
        return self._in_transaction(lambda: plan.execute(values))

    # ------------------------------------------------------------------
    # Helpers for the library API
    # ------------------------------------------------------------------
    def load_rows(self, table: str, rows: Sequence[Sequence[Value]]) -> int:
        """Bulk-insert Python rows into *table* (used by workload
        generators; bypasses SQL parsing but not the transaction)."""
        self._check_open()
        entry = self.catalog.table(table)
        return self._in_transaction(lambda: entry.table.insert_many(rows))

    def create_table_from_relation(self, name: str, relation: Relation) -> None:
        """Materialize a result as a stored table, carrying over its
        provenance-column registration (eager provenance)."""
        self._check_open()
        entry = self.catalog.create_table(
            name,
            Schema(Attribute(a.name, a.type) for a in relation.schema),
            provenance_attrs=tuple(relation.provenance_attrs),
        )
        self._in_transaction(lambda: entry.table.insert_many(relation.rows))

    def analyze_relation_schema(self, name: str) -> Schema:
        """Output schema of a table or (analyzed, marker-expanded) view."""
        self._check_open()
        if self.catalog.has_table(name):
            return self.catalog.table(name).schema
        if self.catalog.has_matview(name):
            return self.catalog.matview(name).schema
        view = self.catalog.view(name)

        def analyze() -> Schema:
            analyzer = self._analyzer()
            node = analyzer.analyze_query(view.query)
            node = self.rewriter.expand(node).node
            return node.schema

        return self._in_transaction(analyze)

    def run_query_node(self, node: an.Node, provenance_attrs: Sequence[str] = ()) -> Relation:
        """Optimize, plan and execute an already-analyzed algebra tree."""
        self._check_open()

        def run() -> Relation:
            optimized = self.optimizer.optimize(node)
            physical = self.planner.plan_root(optimized)
            return execute_plan(physical, provenance_attrs)

        return self._in_transaction(run)

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def _analyzer(self) -> Analyzer:
        return self.pipeline.analyzer()

    def _execute_statement(self, statement: ast.Statement) -> Relation:
        # QueryStatement and Explain never reach here: _run_statement
        # dispatches them to the cached-plan / explain paths first.
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateTableAs):
            return self._execute_create_table_as(statement)
        if isinstance(statement, ast.CreateView):
            return self._execute_create_view(statement)
        if isinstance(statement, ast.CreateMaterializedView):
            return self._execute_create_matview(statement)
        if isinstance(statement, ast.RefreshMaterializedView):
            return self._execute_refresh_matview(statement)
        if isinstance(statement, ast.DropRelation):
            return self._execute_drop(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement)
        raise PermError(f"unsupported statement {type(statement).__name__}")

    def _execute_query(self, query: ast.QueryExpr) -> Relation:
        """Run an embedded query (CTAS source, INSERT ... SELECT) through
        the cached pipeline.

        Does NOT rebind the parameter context (so it cannot go through
        :meth:`PreparedPlan.execute`, which starts a fresh binding
        epoch): any placeholders inside the query belong to the
        enclosing statement, whose slots were bound by
        :meth:`_run_statement` for this execution epoch. The plan's
        statistics-derived facts are still revalidated here, exactly as
        ``PreparedPlan.execute`` would.
        """
        prepared = self._prepared_for(ast.QueryStatement(query))
        if not prepared.deps_valid():
            prepared.refresh()
        self.pipeline.counters.execute += 1
        return execute_plan(prepared.physical, prepared.provenance_attrs)

    def _execute_create_table(self, statement: ast.CreateTable) -> Relation:
        schema = Schema(
            Attribute(column.name, type_from_name(column.type_name))
            for column in statement.columns
        )
        self.catalog.create_table(statement.name, schema, statement.if_not_exists)
        return _status("CREATE TABLE")

    def _execute_create_table_as(self, statement: ast.CreateTableAs) -> Relation:
        if statement.if_not_exists and self.catalog.has_relation(statement.name):
            return _status("CREATE TABLE (exists, skipped)")
        result = self._execute_query(statement.query)
        self.create_table_from_relation(statement.name, result)
        return _status(f"CREATE TABLE ({len(result)} rows)")

    def _execute_create_view(self, statement: ast.CreateView) -> Relation:
        if ast.statement_parameters(statement):
            raise ProgrammingError(
                "views cannot contain parameter placeholders"
            )
        # Validate (and compute the provenance registration) eagerly.
        analyzer = self._analyzer()
        node = analyzer.analyze_query(statement.query)
        expanded = self.rewriter.expand(node)
        if statement.or_replace and self.catalog.has_view(statement.name):
            self.catalog.drop_view(statement.name)
            # A materialized view may have been computed through the old
            # definition; there is no view-dependency graph, so every
            # stored result is conservatively recomputed on next read.
            self._invalidate_all_matviews()
        self.catalog.create_view(
            statement.name,
            statement.query,
            format_query(statement.query),
            provenance_attrs=expanded.provenance_names,
        )
        return _status("CREATE VIEW")

    def _invalidate_all_matviews(self) -> None:
        """Mark every materialized view stale (after a view definition
        changed underneath it)."""
        maintainer = self.database.matview_maintainer
        for entry in self.catalog.matviews:
            maintainer._mark_stale(entry.name)

    def _execute_create_matview(self, statement: ast.CreateMaterializedView) -> Relation:
        if ast.statement_parameters(statement):
            raise ProgrammingError(
                "materialized views cannot contain parameter placeholders"
            )
        name = statement.name
        if self.catalog.has_relation(name):
            raise CatalogError(f"relation {name!r} already exists")
        query = statement.query
        if statement.with_provenance:
            if not isinstance(query, ast.Select):
                raise ProgrammingError(
                    "CREATE MATERIALIZED VIEW ... WITH PROVENANCE requires a "
                    "SELECT query (wrap set operations in SELECT * FROM (...))"
                )
            if query.provenance is None:
                # Bake the provenance request into the stored definition,
                # so refresh and unfolding see the same query.
                query = replace(query, provenance=ast.ProvenanceClause())
        rows, sids, base_versions, base_tables, program, expanded = (
            self._compute_matview(query)
        )
        schema = Schema(
            Attribute(a.name, a.type) for a in expanded.node.schema
        )
        entry = self.catalog.create_matview(
            name,
            schema,
            query,
            format_query(query),
            with_provenance=statement.with_provenance,
            provenance_attrs=expanded.provenance_names,
        )
        entry.base_tables = base_tables
        entry.delta_safe = program is not None
        entry.program = program
        entry.source_ids = sids
        entry.table._install_direct(rows, mvcc.new_row_ids(len(rows)))
        # Set last: until the stored rows are installed, readers see the
        # empty versions map, fail the freshness check and unfold. The
        # fresh-mark also reaches the WAL observer, which records the
        # base versions so recovery restores a trusted view.
        entry.base_versions = base_versions
        self.catalog.set_matview_fresh(name)
        return _status(f"CREATE MATERIALIZED VIEW ({len(rows)} rows)")

    def _execute_refresh_matview(
        self, statement: ast.RefreshMaterializedView
    ) -> Relation:
        count = self._refresh_matview(statement.name)
        return _status(f"REFRESH MATERIALIZED VIEW ({count} rows)")

    def _compute_matview(self, query: ast.QueryExpr):
        """Analyze a materialized-view definition (views *and* other
        matviews unfolded, so only base tables remain) and evaluate its
        current contents: through the delta interpreter when the rewritten
        shape is delta-safe, else through this connection's engine.
        Returns ``(rows, source_ids, base_versions, base_tables, program,
        expanded)``."""
        analyzer = self._analyzer()
        analyzer.inline_matviews = True
        node = analyzer.analyze_query(query)
        expanded = self.rewriter.expand(node)
        rewritten = expanded.node

        def compute():
            program = compile_program(rewritten, self.catalog)
            base_tables = base_table_names(rewritten, self.catalog)
            if program is not None:
                rows, sids, base_versions = program.compute_full(self.catalog)
            else:
                optimized = self.optimizer.optimize(rewritten)
                physical = self.planner.plan_root(optimized)
                result = execute_plan(physical, expanded.provenance_names)
                rows = list(result.rows)
                sids = None
                base_versions = {
                    t: self.catalog.table(t).table.version for t in base_tables
                }
            return rows, sids, base_versions, base_tables, program

        if mvcc.current_transaction() is not None:
            rows, sids, base_versions, base_tables, program = compute()
        else:
            rows, sids, base_versions, base_tables, program = self._run_autocommit(
                compute
            )
        return rows, sids, base_versions, base_tables, program, expanded

    def _refresh_matview(self, name: str) -> int:
        """Recompute a materialized view's stored rows from the current
        base-table state; returns the new row count. The view is marked
        stale *first*, so commit-time maintenance (which skips stale
        views) cannot interleave its own heap write with the install."""
        catalog = self.catalog
        entry = catalog.matview(name)
        rows, sids, base_versions, base_tables, program, expanded = (
            self._compute_matview(entry.query)
        )
        new_names = [a.name for a in expanded.node.schema]
        old_names = [a.name for a in entry.schema]
        if new_names != old_names:
            raise OperationalError(
                f"cannot refresh materialized view {entry.name!r}: its "
                f"definition now produces columns ({', '.join(new_names)}) "
                f"instead of ({', '.join(old_names)}); drop and re-create it"
            )
        self.database.matview_maintainer._mark_stale(entry.name)
        entry.base_tables = base_tables
        entry.delta_safe = program is not None
        entry.program = program
        entry.source_ids = sids
        entry.table._install_direct(rows, mvcc.new_row_ids(len(rows)))
        entry.base_versions = base_versions
        catalog.set_matview_fresh(entry.name)
        self.pipeline.counters.matview_refreshes += 1
        return len(rows)

    def _auto_refresh_matviews(self, statement: ast.QueryStatement) -> None:
        """Best-effort refresh of every stale materialized view a read
        would unfold, run before the statement's own transaction begins
        (a refresh *inside* the snapshot would be invisible to it). A
        view whose refresh fails — e.g. its definition no longer analyzes
        after a base-schema change — is left stale and the read serves
        the unfolded definition instead."""
        if (
            self.in_transaction
            or mvcc.current_transaction() is not None
            or not self.catalog.matviews
        ):
            return
        for _ in range(3):
            try:
                plan = self._run_autocommit(lambda: self._prepared_for(statement))
            except PermError:
                return  # broken statement: surface the error on the real path
            if not plan.stale_matviews:
                return
            progressed = False
            for name in plan.stale_matviews:
                if not self.catalog.has_matview(name):
                    continue
                try:
                    self._refresh_matview(name)
                except PermError:
                    self.database.matview_maintainer._mark_stale(name)
                else:
                    progressed = True
                    self.pipeline.counters.matview_auto_refreshes += 1
            if not progressed:
                return

    def _execute_drop(self, statement: ast.DropRelation) -> Relation:
        catalog = self.catalog
        name = statement.name
        if statement.kind in ("table", "view") and catalog.has_matview(name):
            raise ProgrammingError(
                f"{name!r} is a materialized view; use DROP MATERIALIZED VIEW"
            )
        if statement.kind == "table":
            if catalog.has_table(name):
                key = name.lower()
                dependents = sorted(
                    entry.name
                    for entry in catalog.matviews
                    if key in entry.base_tables
                )
                if dependents:
                    raise OperationalError(
                        f"cannot drop table {name!r}: materialized view(s) "
                        f"{', '.join(dependents)} depend on it (drop them first)"
                    )
            dropped = catalog.drop_table(name, statement.if_exists)
        elif statement.kind == "materialized view":
            if catalog.has_view(name):
                raise ProgrammingError(f"{name!r} is a view; use DROP VIEW")
            dropped = catalog.drop_matview(name, statement.if_exists)
        else:
            dropped = catalog.drop_view(name, statement.if_exists)
            if dropped:
                # Same conservatism as CREATE OR REPLACE VIEW: a stored
                # result may have been computed through this view.
                self._invalidate_all_matviews()
        return _status(f"DROP {statement.kind.upper()}" + ("" if dropped else " (skipped)"))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _dml_table(self, name: str, verb: str):
        """Resolve a DML target, refusing materialized views (their rows
        are derived state, maintained from the base tables)."""
        if self.catalog.has_matview(name):
            raise ProgrammingError(
                f"cannot {verb} materialized view {name!r}: its rows are "
                "maintained from the base tables (use REFRESH MATERIALIZED VIEW)"
            )
        return self.catalog.table(name)

    def _execute_insert(self, statement: ast.Insert) -> Relation:
        return _status(f"INSERT {self._prepare_insert(statement)()}")

    def _prepare_insert(self, statement: ast.Insert) -> Callable[[], int]:
        """Resolve and compile an INSERT once; the returned runner
        evaluates it against the currently bound parameters. This is what
        lets ``executemany`` pay analysis/compilation once per statement
        instead of once per parameter set."""
        entry = self._dml_table(statement.table, "INSERT into")
        schema = entry.schema
        if statement.columns is not None:
            positions = [schema.index_of(c) for c in statement.columns]
        else:
            positions = list(range(len(schema)))

        def widen(values: Sequence[Value]) -> list[Value]:
            if len(values) != len(positions):
                raise AnalyzeError(
                    f"INSERT expects {len(positions)} values, got {len(values)}"
                )
            row: list[Value] = [None] * len(schema)
            for position, value in zip(positions, values):
                row[position] = value
            return row

        if statement.rows is not None:
            analyzer = self._analyzer()
            compiler = ExprCompiler(
                Schema(()),
                plan_compiler=self._dml_plan_compiler(),
                params=self.pipeline.params,
            )
            compiled_rows = [
                [
                    compiler.compile(
                        analyzer.resolve_scalar(e, Schema(()), statement.table)
                    )
                    for e in value_exprs
                ]
                for value_exprs in statement.rows
            ]

            def run_values() -> int:
                # Evaluate every VALUES row before inserting any, so an
                # expression error mid-statement leaves the table as-is.
                staged = [
                    widen([fn((), ()) for fn in compiled]) for compiled in compiled_rows
                ]
                return entry.table.insert_many(staged)

            return run_values

        assert statement.query is not None

        def run_query() -> int:
            result = self._execute_query(statement.query)
            staged = [widen(row) for row in result.rows]
            return entry.table.insert_many(staged)

        return run_query

    def _predicate(self, entry, where: Optional[ast.Expression]) -> Callable:
        if where is None:
            return lambda row: True
        analyzer = self._analyzer()
        resolved = analyzer.resolve_scalar(where, entry.schema, entry.name)
        compiled = ExprCompiler(
            entry.schema,
            plan_compiler=self._dml_plan_compiler(),
            params=self.pipeline.params,
        ).compile(resolved)
        return lambda row: is_true(compiled(row, ()))

    def _dml_plan_compiler(self):
        planner = self.planner

        def compile_plan(plan_node: an.Node, outer_schemas):
            physical = planner.plan(plan_node, outer_schemas)
            return lambda env: list(physical.rows(env))

        return compile_plan

    def _execute_delete(self, statement: ast.Delete) -> Relation:
        entry = self._dml_table(statement.table, "DELETE from")
        removed = entry.table.delete_where(self._predicate(entry, statement.where))
        return _status(f"DELETE {removed}")

    def _execute_update(self, statement: ast.Update) -> Relation:
        entry = self._dml_table(statement.table, "UPDATE")
        analyzer = self._analyzer()
        compiler = ExprCompiler(
            entry.schema,
            plan_compiler=self._dml_plan_compiler(),
            params=self.pipeline.params,
        )
        assignments: list[tuple[int, Callable]] = []
        for column, expression in statement.assignments:
            position = entry.schema.index_of(column)
            resolved = analyzer.resolve_scalar(expression, entry.schema, entry.name)
            assignments.append((position, compiler.compile(resolved)))

        def updater(row):
            new_row = list(row)
            for position, compiled in assignments:
                new_row[position] = compiled(row, ())
            return new_row

        changed = entry.table.update_where(self._predicate(entry, statement.where), updater)
        return _status(f"UPDATE {changed}")

    def _execute_explain(self, statement: ast.Explain) -> Relation:
        if not isinstance(statement.statement, ast.QueryStatement):
            raise PermError("EXPLAIN supports queries only")
        text = self.explain(format_statement(statement.statement), statement.mode)
        rows = [(line,) for line in text.splitlines()]
        return Relation(Schema((Attribute("plan", SQLType.TEXT),)), rows)


def connect(
    options: Optional[RewriteOptions] = None,
    plan_cache_size: int = 128,
    engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    database: Optional[Database] = None,
    autocommit: bool = True,
) -> Connection:
    """Open a new in-memory Perm session (DB-API module-level constructor).

    ``engine`` selects the execution engine: ``"row"`` (tuple-at-a-time
    volcano iterators, the default), ``"vectorized"`` (batch-at-a-time
    columnar execution — same results, much faster on scan-heavy
    workloads), or ``"sqlite"`` (the paper's pushdown architecture:
    rewritten plans are compiled to a single SQL statement executed by
    an embedded ``sqlite3`` database mirroring the catalog). Unset, it
    honors the ``REPRO_ENGINE`` environment variable before defaulting
    to ``"row"``.

    ``optimizer`` selects the optimizer mode: ``"cost"`` (the default:
    rules plus cost-based join reordering, redundant join-back
    elimination and column pruning — the stage the paper's performance
    argument relies on) or ``"rules"`` (simplifying rules only, joins in
    syntactic order). Unset, it honors ``REPRO_OPTIMIZER``. Both modes
    return bit-identical results, row order included.

    ``database`` attaches the session to an existing shared
    :class:`~repro.engine.database.Database`, so several connections
    (one per thread) see the same tables under snapshot-isolated MVCC
    transactions; omitted, the connection gets a private database.
    ``autocommit`` (default true) makes each statement its own implicit
    transaction; pass ``False`` for the PEP 249 model where the first
    statement opens a transaction that stays open until ``commit()`` /
    ``rollback()``. ``BEGIN``/``COMMIT``/``ROLLBACK``/``SAVEPOINT`` work
    in SQL either way.
    """
    return Connection(
        options,
        plan_cache_size=plan_cache_size,
        engine=engine,
        optimizer=optimizer,
        database=database,
        autocommit=autocommit,
    )
