"""User-facing prepared statements.

``Connection.prepare(sql)`` pays the parse/analyze/rewrite/optimize/plan
stages once and hands back a :class:`PreparedStatement`; each
``.execute(params)`` afterwards binds fresh values and re-runs only the
execute stage — the separation of *prepare* from *execute* that makes
repeated parameterized provenance queries cheap (the Figure 3 pipeline
cost is amortized over every execution).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import ProgrammingError
from ..storage.table import Relation
from .pipeline import PreparedPlan, bind_parameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .connection import Connection


class PreparedStatement:
    """A query planned once, executable many times with new parameters."""

    def __init__(self, connection: "Connection", plan: PreparedPlan):
        self.connection = connection
        self._plan = plan

    # ------------------------------------------------------------------
    @property
    def sql(self) -> str:
        return self._plan.sql

    @property
    def parameter_count(self) -> int:
        return self._plan.parameter_count

    @property
    def parameter_names(self) -> tuple[Optional[str], ...]:
        """Slot-ordered placeholder names (``None`` for positional ``?``)."""
        return self._plan.param_specs

    @property
    def columns(self) -> list[str]:
        """Output column names (known without executing)."""
        return [attribute.name for attribute in self._plan.schema]

    @property
    def provenance_attrs(self) -> tuple[str, ...]:
        return self._plan.provenance_attrs

    # ------------------------------------------------------------------
    def execute(self, params: object = None) -> Relation:
        """Bind *params* and run the execute stage; returns the result
        relation. Positional statements take a sequence, named statements
        a mapping.

        If DDL changed the catalog since the statement was prepared, the
        plan is transparently re-prepared (through the plan cache) so it
        never scans dropped storage; a dropped relation surfaces as the
        usual analyze error."""
        if self.connection.closed:
            raise ProgrammingError("connection is closed")
        if self._plan.catalog_version != self.connection.catalog.version:
            self._plan = self.connection._in_transaction(
                lambda: self.connection._prepared_for(
                    self._plan.statement, self._plan.sql
                )
            )
        values = bind_parameters(
            self._plan.param_specs, params, self._plan.param_types
        )
        return self.connection._run_prepared(self._plan, values)

    def executemany(self, seq_of_params: Iterable[object]) -> Optional[Relation]:
        """Execute once per parameter set; returns the last result."""
        result: Optional[Relation] = None
        for params in seq_of_params:
            result = self.execute(params)
        return result

    __call__ = execute

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<repro.PreparedStatement {self.sql!r} ({self.parameter_count} param(s))>"
