"""repro — a full reproduction of the Perm provenance management system.

Perm (Glavic & Alonso, SIGMOD 2009 demonstration; ICDE/EDBT 2009
companions) computes tuple-level data provenance for relational queries
by *query rewriting*: a query ``q`` is transformed into a query ``q+``
whose result is the original result annotated with the contributing base
tuples in ``prov_<relation>_<attribute>`` columns. Because provenance
data and provenance computation are plain relations and plain queries,
they can be stored, optimized and queried with the full power of SQL.

The public API follows DB-API 2.0 (PEP 249): connections, cursors,
``?``/``:name`` placeholders, prepared statements.

Quickstart::

    import repro

    conn = repro.connect()
    conn.execute("CREATE TABLE messages (mid int, text text, uid int)")
    conn.executemany(
        "INSERT INTO messages VALUES (?, ?, ?)",
        [(1, 'lorem ipsum', 3), (2, 'hi there', 2)],
    )

    cursor = conn.execute("SELECT PROVENANCE text FROM messages WHERE uid = ?", (3,))
    for row in cursor:                       # cursors iterate
        print(row)
    print([name for name, *_ in cursor.description])

    # Prepared statements pay the parse/analyze/rewrite/optimize/plan
    # pipeline once; each execute() only pays execution.
    stmt = conn.prepare("SELECT PROVENANCE text FROM messages WHERE uid = ?")
    for uid in (1, 2, 3):
        print(stmt.execute((uid,)).rows)

Repeated ``conn.execute`` of the same SQL text hits an LRU plan cache
(``conn.plan_cache.stats()``), so hot parameterized queries skip straight
to the execute stage. The pre-1.x ``PermDB`` session remains available as
a deprecated shim whose ``execute()`` returns the result relation
directly.

Three execution engines are available — ``repro.connect(engine="row")``
(tuple-at-a-time volcano iterators, the default), ``engine="vectorized"``
(batch-at-a-time columnar execution, typically 2-5x faster on scan-heavy
queries) and ``engine="sqlite"`` (the paper's pushdown architecture: the
rewritten plan is compiled to one SQL statement executed by an embedded
``sqlite3`` database, often 10-40x faster on large scans). All compile
from the same physical plan decisions and return identical results;
``REPRO_ENGINE`` sets the process default. See README.md for the
benchmark table.

The package layers match the paper's Figure 3 architecture: SQL frontend
(:mod:`repro.sql`), analyzer with view unfolding (:mod:`repro.analyzer`),
the provenance rewriter — the paper's contribution — (:mod:`repro.core`),
logical optimizer (:mod:`repro.optimizer`), planner and executors
(:mod:`repro.planner`, :mod:`repro.executor`), the SQLite pushdown
backend (:mod:`repro.backend`), the explicit pipeline and DB-API front
end (:mod:`repro.engine`), plus the Perm browser (:mod:`repro.browser`)
and example workloads (:mod:`repro.workloads`).
"""

from .core.context import RewriteOptions
from .core.eager import materialize_provenance, stored_provenance_attrs
from .core.external import attach_external_provenance, detach_external_provenance
from .engine import (
    Connection,
    Cursor,
    Database,
    PermDB,
    Pipeline,
    PipelineCounters,
    PlanCache,
    PreparedPlan,
    PreparedStatement,
    connect,
)
from .errors import (
    AnalyzeError,
    CatalogError,
    CostEstimationError,
    ExecutionError,
    IntegrityError,
    NotSupportedError,
    OperationalError,
    ParseError,
    PermError,
    PermWarning,
    PlanError,
    ProgrammingError,
    RewriteError,
    SerializationError,
    ServerBusy,
    TypeCheckError,
)
from .storage.table import Relation

__version__ = "2.0.0"

# ---------------------------------------------------------------------------
# DB-API 2.0 (PEP 249) module-level attributes
# ---------------------------------------------------------------------------
apilevel = "2.0"
# Threads may share the module, but not connections (the engine keeps
# per-connection mutable state: catalog, plan cache, parameter context).
threadsafety = 1
# Positional placeholders are "?"; named ":name" placeholders are also
# accepted (PEP 249 allows supporting several styles).
paramstyle = "qmark"

# PEP 249 exception aliases layered onto the native hierarchy.
# OperationalError is a real class now (transaction-state violations and
# serialization failures), no longer an alias of ExecutionError.
Warning = PermWarning  # noqa: A001 - name required by PEP 249
Error = PermError
DatabaseError = PermError
InterfaceError = ProgrammingError
DataError = ExecutionError
InternalError = PlanError

__all__ = [
    "connect",
    "Connection",
    "Cursor",
    "PreparedStatement",
    "PreparedPlan",
    "Pipeline",
    "PipelineCounters",
    "PlanCache",
    "PermDB",
    "Relation",
    "RewriteOptions",
    "materialize_provenance",
    "stored_provenance_attrs",
    "attach_external_provenance",
    "detach_external_provenance",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "PermError",
    "ParseError",
    "AnalyzeError",
    "TypeCheckError",
    "CatalogError",
    "CostEstimationError",
    "RewriteError",
    "PlanError",
    "ExecutionError",
    "ProgrammingError",
    "NotSupportedError",
    "IntegrityError",
    "Warning",
    "Error",
    "DatabaseError",
    "InterfaceError",
    "DataError",
    "OperationalError",
    "SerializationError",
    "ServerBusy",
    "Database",
    "InternalError",
]
