"""repro — a full reproduction of the Perm provenance management system.

Perm (Glavic & Alonso, SIGMOD 2009 demonstration; ICDE/EDBT 2009
companions) computes tuple-level data provenance for relational queries
by *query rewriting*: a query ``q`` is transformed into a query ``q+``
whose result is the original result annotated with the contributing base
tuples in ``prov_<relation>_<attribute>`` columns. Because provenance
data and provenance computation are plain relations and plain queries,
they can be stored, optimized and queried with the full power of SQL.

Quickstart::

    from repro import PermDB

    db = PermDB()
    db.execute("CREATE TABLE messages (mid int, text text, uid int)")
    db.execute("INSERT INTO messages VALUES (1, 'lorem ipsum', 3)")
    result = db.execute("SELECT PROVENANCE text FROM messages")
    print(result.format())

The package layers match the paper's Figure 3 architecture: SQL frontend
(:mod:`repro.sql`), analyzer with view unfolding (:mod:`repro.analyzer`),
the provenance rewriter — the paper's contribution — (:mod:`repro.core`),
logical optimizer (:mod:`repro.optimizer`), planner and executor
(:mod:`repro.planner`, :mod:`repro.executor`), plus the Perm browser
(:mod:`repro.browser`) and example workloads (:mod:`repro.workloads`).
"""

from .core.context import RewriteOptions
from .core.eager import materialize_provenance, stored_provenance_attrs
from .core.external import attach_external_provenance, detach_external_provenance
from .engine.session import PermDB, connect
from .errors import (
    AnalyzeError,
    CatalogError,
    ExecutionError,
    ParseError,
    PermError,
    PlanError,
    RewriteError,
    TypeCheckError,
)
from .storage.table import Relation

__version__ = "1.0.0"

__all__ = [
    "PermDB",
    "connect",
    "Relation",
    "RewriteOptions",
    "materialize_provenance",
    "stored_provenance_attrs",
    "attach_external_provenance",
    "detach_external_provenance",
    "PermError",
    "ParseError",
    "AnalyzeError",
    "TypeCheckError",
    "CatalogError",
    "RewriteError",
    "PlanError",
    "ExecutionError",
]
