"""Interactive SQL shell: ``python -m repro``.

A psql-style front end to a Perm connection — the closest equivalent of
sitting at the demo booth. Supports everything the engine supports
(including SQL-PLE) plus backslash commands:

==============  ======================================================
command         effect
==============  ======================================================
``\\d``          list relations
``\\d name``     describe one relation (columns, provenance registration)
``\\browser q``  render the Perm-browser panes for a query
``\\rewrite q``  show the rewritten SQL of a provenance query
``\\algebra q``  show original and rewritten algebra trees
``\\timing``     toggle per-query pipeline timing
``\\demo``       load the paper's Figure 1 example database
``\\q``          quit
==============  ======================================================
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional, TextIO

from .browser import PermBrowser
from .engine.connection import Connection
from .errors import PermError

_PROMPT = "perm> "
_CONTINUATION = "  ... "


class Shell:
    """A scriptable REPL around one Perm connection."""

    def __init__(self, db: Optional[Connection] = None, out: Optional[TextIO] = None):
        self.db = db or Connection()
        # Resolved lazily so pytest's capture (and late stream swaps) work.
        self.out = out if out is not None else sys.stdout
        self.timing = False
        self._browser = PermBrowser(self.db)

    # ------------------------------------------------------------------
    def run(self, lines: Iterable[str]) -> None:
        """Process input lines (REPL loop body, also used by tests)."""
        buffer: list[str] = []
        for raw in lines:
            line = raw.rstrip("\n")
            if not buffer and line.strip().startswith("\\"):
                if not self.handle_command(line.strip()):
                    return
                continue
            buffer.append(line)
            statement = "\n".join(buffer).strip()
            if statement.endswith(";") or not statement:
                if statement:
                    self.execute(statement)
                buffer.clear()
        leftover = "\n".join(buffer).strip()
        if leftover:
            self.execute(leftover)

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> None:
        try:
            if self.timing:
                profile = self.db.profile(sql.rstrip(";"))
                assert profile.result is not None
                self._print(profile.result.format(max_rows=50))
                self._print(profile.summary())
            else:
                result = self.db.run(sql)
                self._print(result.format(max_rows=50))
        except PermError as exc:
            self._print(f"ERROR: {exc}")

    def handle_command(self, command: str) -> bool:
        """Execute a backslash command; returns False to quit."""
        name, _, argument = command.partition(" ")
        argument = argument.strip()
        try:
            if name in ("\\q", "\\quit"):
                return False
            if name == "\\d":
                self._describe(argument)
            elif name == "\\browser":
                self._print(self._browser.show(argument, max_rows=20))
            elif name == "\\rewrite":
                self._print(self.db.explain(argument, mode="rewrite"))
            elif name == "\\algebra":
                self._print(self.db.explain(argument, mode="algebra"))
            elif name == "\\timing":
                self.timing = not self.timing
                self._print(f"timing is {'on' if self.timing else 'off'}")
            elif name == "\\demo":
                from .workloads.forum import create_forum_db

                create_forum_db(self.db)
                self._print("loaded the Figure 1 forum database (messages, users, imports, approved, v1)")
            elif name in ("\\h", "\\help", "\\?"):
                self._print(__doc__ or "")
            else:
                self._print(f"unknown command {name!r}; try \\h")
        except PermError as exc:
            self._print(f"ERROR: {exc}")
        return True

    # ------------------------------------------------------------------
    def _describe(self, name: str) -> None:
        if not name:
            names = self.db.catalog.relation_names()
            if not names:
                self._print("(no relations)")
                return
            for relation in names:
                kind = "view" if self.db.catalog.has_view(relation) else "table"
                self._print(f"{relation}  ({kind})")
            return
        schema = self.db.analyze_relation_schema(name)
        provenance = set(self.db.catalog.provenance_attrs(name))
        self._print(f"relation {name}:")
        for attribute in schema:
            marker = "   [provenance]" if attribute.name in provenance else ""
            self._print(f"  {attribute.name}  {attribute.type}{marker}")

    def _print(self, text: str) -> None:
        print(text, file=self.out)


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro`` (interactive or piped)."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        from .server.__main__ import main as serve_main

        return serve_main(argv[1:])
    # A durable shell: `python -m repro --data-dir DIR [--durability M]`
    # opens (or creates) a persistent database instead of an in-memory
    # one; `--engine NAME` picks any registered execution engine.
    # Remaining arguments are SQL script files, as before.
    data_dir = None
    durability = "fsync"
    engine = None
    while argv and argv[0] in ("--data-dir", "--durability", "--engine"):
        if len(argv) < 2:
            print(f"{argv[0]} requires a value", file=sys.stderr)
            return 2
        flag, value = argv[0], argv[1]
        if flag == "--data-dir":
            data_dir = value
        elif flag == "--engine":
            engine = value
        else:
            durability = value
        del argv[:2]
    if engine is not None:
        from .backend.registry import engine_names

        if engine.lower() not in engine_names():
            print(
                f"--engine must be one of: {', '.join(engine_names())}",
                file=sys.stderr,
            )
            return 2
    if data_dir is not None:
        from .engine.database import Database

        database = Database(path=data_dir, durability=durability)
        shell = Shell(db=Connection(database=database, engine=engine))
    else:
        shell = Shell(db=Connection(engine=engine))
    if argv:
        # Execute files given on the command line, then exit.
        for path in argv:
            with open(path) as handle:
                shell.run(handle)
        return 0
    interactive = sys.stdin.isatty()
    if interactive:
        print("Perm reproduction shell — \\h for help, \\demo for the paper's database, \\q to quit")
        try:
            buffer: list[str] = []
            while True:
                prompt = _CONTINUATION if buffer else _PROMPT
                try:
                    line = input(prompt)
                except EOFError:
                    print()
                    return 0
                if not buffer and line.strip().startswith("\\"):
                    if not shell.handle_command(line.strip()):
                        return 0
                    continue
                buffer.append(line)
                statement = "\n".join(buffer).strip()
                if statement.endswith(";"):
                    shell.execute(statement)
                    buffer.clear()
        except KeyboardInterrupt:
            print()
            return 130
    shell.run(sys.stdin)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
