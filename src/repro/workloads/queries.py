"""Benchmark query classes over the TPC-H-like database.

The Perm evaluation groups queries by the rewrite machinery they
exercise; the benchmark harness sweeps each class with and without
``SELECT PROVENANCE`` to reproduce the overhead shapes:

* ``SPJ`` — select/project/join only: the rewrite merely widens tuples.
* ``AGG`` — aggregation: the rewrite adds one join back to the input.
* ``SET`` — set operations: padding + bag union (or join-back).
* ``NESTED`` — sublinks: unnesting / decorrelation strategies.
"""

from __future__ import annotations

SPJ_QUERIES = {
    "spj_filter": (
        "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 200000"
    ),
    "spj_join2": (
        "SELECT c_name, o_orderkey FROM customer JOIN orders "
        "ON c_custkey = o_custkey WHERE o_orderstatus = 'O'"
    ),
    "spj_join3": (
        "SELECT c_name, o_orderkey, l_quantity "
        "FROM customer JOIN orders ON c_custkey = o_custkey "
        "JOIN lineitem ON o_orderkey = l_orderkey "
        "WHERE l_returnflag = 'R'"
    ),
    "spj_outer": (
        "SELECT c_name, o_orderkey FROM customer "
        "LEFT JOIN orders ON c_custkey = o_custkey AND o_totalprice > 300000"
    ),
}

AGG_QUERIES = {
    "agg_global": "SELECT count(*), sum(l_quantity) FROM lineitem",
    "agg_group": (
        "SELECT o_custkey, count(*) AS orders, sum(o_totalprice) AS total "
        "FROM orders GROUP BY o_custkey"
    ),
    "agg_join_group": (
        "SELECT c_mktsegment, count(*) AS n, avg(o_totalprice) AS avg_price "
        "FROM customer JOIN orders ON c_custkey = o_custkey "
        "GROUP BY c_mktsegment"
    ),
    "agg_having": (
        "SELECT o_custkey, count(*) AS n FROM orders "
        "GROUP BY o_custkey HAVING count(*) > 2"
    ),
}

SET_QUERIES = {
    "set_union": (
        "SELECT c_custkey FROM customer WHERE c_acctbal > 5000 "
        "UNION SELECT o_custkey FROM orders WHERE o_totalprice > 300000"
    ),
    "set_union_all": (
        "SELECT c_custkey FROM customer WHERE c_acctbal > 5000 "
        "UNION ALL SELECT o_custkey FROM orders WHERE o_totalprice > 300000"
    ),
    "set_intersect": (
        "SELECT c_custkey FROM customer WHERE c_acctbal > 0 "
        "INTERSECT SELECT o_custkey FROM orders"
    ),
    "set_except": (
        "SELECT c_custkey FROM customer "
        "EXCEPT SELECT o_custkey FROM orders WHERE o_orderstatus = 'F'"
    ),
}

NESTED_QUERIES = {
    "nested_in": (
        "SELECT c_name FROM customer WHERE c_custkey IN "
        "(SELECT o_custkey FROM orders WHERE o_totalprice > 300000)"
    ),
    "nested_exists": (
        "SELECT c_name FROM customer c WHERE EXISTS "
        "(SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey "
        " AND o.o_orderstatus = 'F')"
    ),
    "nested_scalar": (
        "SELECT o_orderkey, o_totalprice FROM orders o "
        "WHERE o_totalprice > (SELECT avg(o_totalprice) FROM orders)"
    ),
}

QUERY_CLASSES = {
    "SPJ": SPJ_QUERIES,
    "AGG": AGG_QUERIES,
    "SET": SET_QUERIES,
    "NESTED": NESTED_QUERIES,
}


def queries_for_class(name: str) -> dict[str, str]:
    """Queries of one class; raises KeyError for unknown classes."""
    return dict(QUERY_CLASSES[name.upper()])


def with_provenance(sql: str, contribution: str | None = None) -> str:
    """Turn a plain query into its ``SELECT PROVENANCE`` form."""
    clause = "PROVENANCE"
    if contribution is not None:
        clause += f" ON CONTRIBUTION ({contribution.upper()})"
    assert sql.upper().startswith("SELECT ")
    return "SELECT " + clause + sql[len("SELECT"):]
