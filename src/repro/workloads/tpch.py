"""Deterministic TPC-H-like synthetic database.

The companion evaluation of the Perm system (cited by the demo paper as
[3]) measures provenance-computation overhead on TPC-H. We cannot ship
TPC-H's dbgen, so this module generates a scaled-down analogue with the
same relational shape: ``region ⟵ nation ⟵ customer ⟵ orders ⟵
lineitem ⟶ part`` with realistic key distributions, value skew and NULLs
— enough for the benchmark suite to reproduce the *relative* costs of
the provenance rewrite per query class (SPJ, aggregation, set
operations, nested subqueries).

Everything is generated from an explicit seed, so benchmark runs are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..engine.connection import Connection, connect

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_STATUSES = ["O", "F", "P"]
_PART_TYPES = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]


@dataclass(frozen=True)
class TpchConfig:
    """Row counts per relation. ``scale(f)`` multiplies everything."""

    customers: int = 150
    orders: int = 600
    lineitems_per_order: int = 3
    parts: int = 80
    nations: int = 25
    seed: int = 42

    def scale(self, factor: float) -> "TpchConfig":
        return TpchConfig(
            customers=max(1, int(self.customers * factor)),
            orders=max(1, int(self.orders * factor)),
            lineitems_per_order=self.lineitems_per_order,
            parts=max(1, int(self.parts * factor)),
            nations=self.nations,
            seed=self.seed,
        )


def create_tpch_db(
    config: TpchConfig | None = None,
    db: Connection | None = None,
    engine: str | None = None,
    optimizer: str | None = None,
) -> Connection:
    """Create and populate the TPC-H-like database."""
    config = config or TpchConfig()
    rng = random.Random(config.seed)
    db = db or connect(engine=engine, optimizer=optimizer)
    db.run(
        """
        CREATE TABLE region (r_regionkey int, r_name text);
        CREATE TABLE nation (n_nationkey int, n_name text, n_regionkey int);
        CREATE TABLE customer (c_custkey int, c_name text, c_nationkey int,
                               c_acctbal float, c_mktsegment text);
        CREATE TABLE orders (o_orderkey int, o_custkey int, o_orderstatus text,
                             o_totalprice float, o_orderpriority int);
        CREATE TABLE lineitem (l_orderkey int, l_partkey int, l_linenumber int,
                               l_quantity int, l_extendedprice float, l_discount float,
                               l_returnflag text);
        CREATE TABLE part (p_partkey int, p_name text, p_type text, p_retailprice float);
        """
    )

    db.load_rows("region", [(i, name) for i, name in enumerate(_REGIONS)])
    db.load_rows(
        "nation",
        [
            (i, f"NATION_{i}", rng.randrange(len(_REGIONS)))
            for i in range(config.nations)
        ],
    )
    db.load_rows(
        "customer",
        [
            (
                c,
                f"Customer#{c:06d}",
                rng.randrange(config.nations),
                round(rng.uniform(-999.0, 9999.0), 2),
                rng.choice(_SEGMENTS),
            )
            for c in range(1, config.customers + 1)
        ],
    )
    db.load_rows(
        "orders",
        [
            (
                o,
                rng.randint(1, config.customers),
                rng.choice(_STATUSES),
                round(rng.uniform(100.0, 400000.0), 2),
                rng.randint(1, 5),
            )
            for o in range(1, config.orders + 1)
        ],
    )
    lineitems = []
    for o in range(1, config.orders + 1):
        for line in range(1, config.lineitems_per_order + 1):
            lineitems.append(
                (
                    o,
                    rng.randint(1, config.parts),
                    line,
                    rng.randint(1, 50),
                    round(rng.uniform(900.0, 100000.0), 2),
                    round(rng.choice([0.0, 0.01, 0.02, 0.05, 0.1]), 2),
                    rng.choice(["A", "N", "R"]),
                )
            )
    db.load_rows("lineitem", lineitems)
    db.load_rows(
        "part",
        [
            (
                p,
                f"part {p}",
                rng.choice(_PART_TYPES),
                round(rng.uniform(900.0, 2000.0), 2),
            )
            for p in range(1, config.parts + 1)
        ],
    )
    return db
