"""Example workloads: the paper's forum database and a TPC-H-like
synthetic benchmark database."""

from .forum import FORUM_QUERIES, create_forum_db  # noqa: F401
from .queries import QUERY_CLASSES, queries_for_class  # noqa: F401
from .tpch import TpchConfig, create_tpch_db  # noqa: F401
