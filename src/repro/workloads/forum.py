"""The paper's Figure 1 example database and queries.

An online forum with users, messages, messages imported from other
forums, and approvals. The tables, rows and the queries q1–q3 are
exactly those of Figure 1; the expected provenance of q1 (Figure 2) is
reproduced in ``benchmarks/bench_figure2_q1_provenance.py`` and asserted
in ``tests/core/test_paper_figures.py``.
"""

from __future__ import annotations

from ..engine.connection import Connection, connect

# The example queries of Figure 1 (q2 is the CREATE VIEW below).
Q1 = "SELECT mId, text FROM messages UNION SELECT mId, text FROM imports"
Q2 = f"CREATE VIEW v1 AS {Q1}"
Q3 = (
    "SELECT count(*), text "
    "FROM v1 JOIN approved a ON (v1.mId = a.mId) "
    "GROUP BY v1.mId, text"
)

FORUM_QUERIES = {"q1": Q1, "q2": Q2, "q3": Q3}

# SQL-PLE examples of the paper's §2.4, verbatim modulo the provenance
# attribute naming scheme (the paper abbreviates `prov_imports_origin`
# as `p_origin` "to keep the examples compact").
SQLPLE_AGGREGATION = (
    "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text "
    "FROM v1 JOIN approved a ON v1.mId = a.mId "
    "GROUP BY v1.mId, text"
)
SQLPLE_QUERYING_PROVENANCE = (
    "SELECT text, prov_imports_origin "
    "FROM (SELECT PROVENANCE count(*) AS cnt, text "
    "      FROM v1 JOIN approved a ON v1.mId = a.mId "
    "      GROUP BY v1.mId, text) AS prov "
    "WHERE cnt > 0 AND prov_imports_origin = 'superForum'"
)
SQLPLE_BASERELATION = "SELECT PROVENANCE text FROM v1 BASERELATION"


def create_forum_db(
    db: Connection | None = None,
    engine: str | None = None,
    optimizer: str | None = None,
) -> Connection:
    """Create the Figure 1 database (tables, rows and the view v1)."""
    db = db or connect(engine=engine, optimizer=optimizer)
    db.run(
        """
        CREATE TABLE messages (mId int, text text, uId int);
        CREATE TABLE users (uId int, name text);
        CREATE TABLE imports (mId int, text text, origin text);
        CREATE TABLE approved (uId int, mId int);
        """
    )
    db.load_rows(
        "messages",
        [
            (1, "lorem ipsum ...", 3),
            (4, "hi there ...", 2),
        ],
    )
    db.load_rows("users", [(1, "Bert"), (2, "Gert"), (3, "Gertrud")])
    db.load_rows(
        "imports",
        [
            (2, "hello ...", "superForum"),
            (3, "I don't ...", "HiBoard"),
        ],
    )
    db.load_rows("approved", [(2, 2), (1, 4), (2, 4), (3, 4)])
    db.run(Q2)
    return db


def scaled_forum_db(
    messages: int = 1000,
    users: int = 100,
    imports: int = 500,
    approvals_per_message: int = 3,
    db: Connection | None = None,
    seed: int = 7,
    engine: str | None = None,
    optimizer: str | None = None,
) -> Connection:
    """A larger forum instance with the same schema, for benchmarks.

    Deterministic given *seed*; message ids are disjoint between
    ``messages`` (odd ids) and ``imports`` (even ids), mirroring the
    paper's instance where the two relations overlap only by accident.
    """
    import random

    rng = random.Random(seed)
    db = db or connect(engine=engine, optimizer=optimizer)
    db.run(
        """
        CREATE TABLE messages (mId int, text text, uId int);
        CREATE TABLE users (uId int, name text);
        CREATE TABLE imports (mId int, text text, origin text);
        CREATE TABLE approved (uId int, mId int);
        """
    )
    db.load_rows("users", [(u, f"user_{u}") for u in range(1, users + 1)])
    db.load_rows(
        "messages",
        [
            (2 * i + 1, f"message body {2 * i + 1}", rng.randint(1, users))
            for i in range(messages)
        ],
    )
    origins = ["superForum", "HiBoard", "chatPlace", "boardX"]
    db.load_rows(
        "imports",
        [
            (2 * i + 2, f"imported body {2 * i + 2}", rng.choice(origins))
            for i in range(imports)
        ],
    )
    approvals = []
    for i in range(messages):
        mid = 2 * i + 1
        for approver in rng.sample(range(1, users + 1), min(approvals_per_message, users)):
            approvals.append((approver, mid))
    db.load_rows("approved", approvals)
    db.run(Q2)
    return db
