"""SQLite pushdown backend: runtime layer.

The paper's Perm prototype computes provenance by rewriting query trees
and letting PostgreSQL execute the rewritten query. This backend
reproduces that architecture against the DBMS Python ships with: the
provenance-rewritten plan is compiled to a single SQL statement
(:mod:`repro.backend.compile`) and executed by an in-memory ``sqlite3``
database whose tables lazily mirror the engine's heap tables.

Pieces:

* :class:`SQLiteBackend` — the :class:`~repro.backend.runtime
  .MirrorAdapter` for ``engine="sqlite"``: owns the ``sqlite3``
  connection, mirrors catalog tables (synced per
  :class:`~repro.storage.table.HeapTable` version), registers the
  ``repro_*`` user-defined functions that give SQLite *exactly* the
  scalar semantics of :mod:`repro.executor.expr_eval` (including raised
  errors, which travel through a side channel because sqlite3 swallows
  exception details), and materializes row-engine fallback fragments
  into temp tables.
* :class:`SQLiteQueryOp` — the physical plan object the planner emits
  for ``engine="sqlite"``; the generic
  :class:`~repro.backend.runtime.PushdownQueryOp` under its historic
  name.

Value mapping: INT/FLOAT/TEXT/NULL map 1:1 onto SQLite storage classes;
mirror columns are declared without a type (blank affinity) so values
round-trip without coercion. BOOL has no SQLite storage class: ``True``
/``False`` become 1/0 on the way in and are restored on the way out
using the plan's static output types.

The partitioned variant (:mod:`repro.backend.partition`) subclasses
:class:`SQLiteBackend` per shard, overriding only the mirror hooks
(:meth:`SQLiteBackend._mirror_columns` /
:meth:`SQLiteBackend._mirror_rows` / :meth:`SQLiteBackend.scan_ordinal`)
to store each table slice with an explicit global-position column.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..datatypes import SQLType, Value
from ..errors import ExecutionError, ProgrammingError
from ..executor.expr_eval import _FUNCTIONS, _like_to_regex, Row
from .dialects.base import quote_identifier_always as quote_identifier
from .dialects.sqlite import INT64_MAX, INT64_MIN, SQLiteDialect
from .runtime import (  # noqa: F401  (re-exported: historic import surface)
    IntegerRangeEscape,
    LimitBind,
    MirrorAdapter,
    PushdownQueryOp,
    SubplanSlot,
    adapt_row,
    adapt_value,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog.catalog import Catalog
    from ..storage.table import HeapTable

MIN_SQLITE_VERSION = (3, 25, 0)  # window functions (ordering channel)
FULL_JOIN_VERSION = (3, 39, 0)  # RIGHT / FULL OUTER JOIN support
# From 3.44.0 SQLite computes sum()/avg() with Kahan-Babuska compensated
# summation — more accurate, but not bit-identical to the engines' naive
# left-to-right accumulation. On such hosts float sum/avg pushdown uses
# the repro_fsum/repro_favg aggregate UDFs instead of native sum/avg.
KAHAN_SUM_VERSION = (3, 44, 0)

_ROWID_NAMES = ("rowid", "_rowid_", "oid")


class SQLiteQueryOp(PushdownQueryOp):
    """The physical plan object for ``engine="sqlite"`` (the generic
    pushdown operator under its historic name)."""

    __slots__ = ()


class SQLiteBackend(MirrorAdapter):
    """One in-memory SQLite database mirroring one catalog."""

    dialect_class = SQLiteDialect

    def __init__(self, catalog: "Catalog"):
        if sqlite3.sqlite_version_info < MIN_SQLITE_VERSION:
            raise ProgrammingError(
                "the sqlite execution engine requires SQLite >= "
                + ".".join(str(v) for v in MIN_SQLITE_VERSION)
                + f" (found {sqlite3.sqlite_version})"
            )
        super().__init__(catalog)
        # check_same_thread=False: a server session's statements all run
        # serialized (one request at a time), but possibly on different
        # worker-pool threads; sqlite3's same-thread check would reject
        # that even though access is never concurrent.
        self.connection = sqlite3.connect(":memory:", check_same_thread=False)
        self.supports_full_join = sqlite3.sqlite_version_info >= FULL_JOIN_VERSION
        self.native_float_agg = sqlite3.sqlite_version_info < KAHAN_SUM_VERSION
        # table key -> (heap object, heap version, schema signature)
        self._mirror: dict[str, tuple] = {}
        self._register_udfs()

    # ------------------------------------------------------------------
    # User-defined functions: exact expr_eval semantics inside SQLite
    # ------------------------------------------------------------------
    def _register_udfs(self) -> None:
        from ..datatypes import arith, cast_value, negate

        for name, impl in _FUNCTIONS.items():
            self.connection.create_function(
                f"repro_{name}", -1, self._wrap_udf(impl), deterministic=True
            )
        for type_ in (SQLType.INT, SQLType.FLOAT, SQLType.TEXT, SQLType.BOOL):
            self.connection.create_function(
                f"repro_cast_{type_.name.lower()}",
                1,
                self._wrap_udf(lambda args, t=type_: cast_value(args[0], t)),
                deterministic=True,
            )
        for udf, insensitive in (("repro_like", False), ("repro_ilike", True)):
            self.connection.create_function(
                udf,
                2,
                self._wrap_udf(lambda args, ci=insensitive: _run_like(args, ci)),
                deterministic=True,
            )
        # Division/modulo with the engine's exact rules (raise on zero,
        # '%' requires integers); used when the divisor is not a nonzero
        # constant, where native SQLite arithmetic would return NULL.
        self.connection.create_function(
            "repro_div",
            2,
            self._wrap_udf(lambda args: arith("/", args[0], args[1])),
            deterministic=True,
        )
        self.connection.create_function(
            "repro_mod",
            2,
            self._wrap_udf(lambda args: arith("%", args[0], args[1])),
            deterministic=True,
        )
        # Exact integer arithmetic for expressions whose static interval
        # analysis (compile._prepare) cannot bound the result within
        # int64: native SQLite would silently promote an overflowing
        # result to REAL. These compute in Python (unbounded); a result
        # beyond int64 escapes to the row engine via _wrap_udf's range
        # check instead of wrapping or losing precision.
        for udf_name, op in (("iadd", "+"), ("isub", "-"), ("imul", "*")):
            self.connection.create_function(
                f"repro_{udf_name}",
                2,
                self._wrap_udf(lambda args, o=op: arith(o, args[0], args[1])),
                deterministic=True,
            )
        self.connection.create_function(
            "repro_ineg",
            1,
            self._wrap_udf(lambda args: negate(args[0])),
            deterministic=True,
        )
        # Sublink slot access: constant within one statement execution
        # (the executing op installs every state before running), so
        # deterministic is safe and lets SQLite hoist it out of loops.
        self.connection.create_function(
            "repro_slot", 1, self._wrap_udf(self._read_slot), deterministic=True
        )
        # Naive left-to-right float aggregation (AggregateAccumulator
        # semantics) for hosts whose native sum()/avg() uses compensated
        # summation (>= 3.44) and would drift in the low bits.
        for agg_name, agg_func in (("repro_fsum", "sum"), ("repro_favg", "avg")):
            self.connection.create_aggregate(
                agg_name, 1, _naive_aggregate_class(self, agg_func)
            )

    def _wrap_udf(self, impl):
        def wrapped(*args):
            try:
                result = adapt_value(impl(list(args)))
                if type(result) is int and not (INT64_MIN <= result <= INT64_MAX):
                    # The exact Python result exists but SQLite cannot
                    # hold it; abort the statement and let the row
                    # engine produce the full-precision answer.
                    raise IntegerRangeEscape(f"UDF result {result} exceeds int64")
                return result
            except Exception as exc:
                # sqlite3 reports UDF failures as a generic
                # OperationalError; stash the real exception so
                # run_statement can re-raise it with type and message
                # intact (identical error behavior across engines).
                self._pending_error = exc
                raise

        return wrapped

    # ------------------------------------------------------------------
    # Mirroring
    # ------------------------------------------------------------------
    def _mirror_columns(self, heap: "HeapTable") -> list[str]:
        """Column definitions of the mirror table. Blank affinity:
        values keep their storage class exactly."""
        return [quote_identifier(a.name) for a in heap.schema]

    def _mirror_rows(self, heap: "HeapTable") -> Iterable[Row]:
        """Rows to load into the mirror (already storage-adapted)."""
        if any(a.type is SQLType.BOOL for a in heap.schema):
            return (adapt_row(r) for r in heap.rows)
        # Fast path: heap rows are plain tuples of SQLite-native
        # values, no per-row conversion needed.
        return heap.rows

    def sync_table(self, name: str) -> None:
        """Bring the SQLite mirror of catalog table *name* up to date.

        Cheap when nothing changed: the mirror entry stores the heap's
        identity, version stamp and schema signature; a full reload
        happens only after DML or a drop/recreate. ``heap.version`` and
        ``heap.rows`` resolve through the active transaction
        (:mod:`repro.storage.mvcc`), so the mirror is keyed on *snapshot
        identity*: inside a transaction the backend executes against the
        transaction's stable snapshot (or its own staged writes), and
        concurrent commits elsewhere re-sync only the next statement
        that runs outside it."""
        entry = self.catalog.scan_entry(name)
        heap = entry.table
        key = name.lower()
        # The signature holds the heap object itself (not id(heap)): a
        # dropped table's reused address plus a coinciding version
        # counter must never read as "already synced".
        signature = (
            heap,
            heap.version,
            tuple((a.name, a.type) for a in heap.schema),
        )
        known = self._mirror.get(key)
        if known is not None and known[0] is heap and known[1:] == signature[1:]:
            return
        qname = f"main.{quote_identifier(key)}"
        columns = ", ".join(self._mirror_columns(heap))
        self.connection.execute(f"DROP TABLE IF EXISTS {qname}")
        self.connection.execute(f"CREATE TABLE {qname} ({columns})")
        placeholders = ", ".join("?" for _ in self._mirror_columns(heap))
        insert = f"INSERT INTO {qname} VALUES ({placeholders})"
        try:
            self.connection.executemany(insert, self._mirror_rows(heap))
        except OverflowError as exc:
            # A stored integer beyond int64 cannot be mirrored; escape to
            # the row engine, which reads the heap directly and computes
            # with full precision.
            self._mirror.pop(key, None)
            raise IntegerRangeEscape(
                f"table {name!r} holds an integer beyond int64"
            ) from exc
        except sqlite3.Error as exc:
            self._mirror.pop(key, None)
            raise ExecutionError(
                f"cannot mirror table {name!r} into the sqlite backend: {exc}"
            ) from exc
        self._mirror[key] = signature
        self.tables_synced += 1

    def scan_source(self, table_key: str) -> str:
        return f"main.{quote_identifier(table_key)}"

    def scan_ordinal(self, columns: Sequence[str]) -> Optional[str]:
        """SQLite's implicit rowid reproduces heap insertion order; pick
        whichever alias the scanned columns leave available."""
        stored = {c.lower() for c in columns}
        return next((r for r in _ROWID_NAMES if r not in stored), None)

    def materialize_fragment(self, frag: str, rows: list[Row], width: int) -> None:
        """(Re)create temp fragment *frag* holding *rows* — used for
        row-engine fallback subtrees and IN-sublink value lists. The
        implicit rowid preserves the row engine's output order."""
        qname = f"temp.{quote_identifier(frag)}"
        self.connection.execute(f"DROP TABLE IF EXISTS {qname}")
        columns = ", ".join(f"c{i}" for i in range(width))
        self.connection.execute(f"CREATE TEMP TABLE {quote_identifier(frag)} ({columns})")
        placeholders = ", ".join("?" for _ in range(width))
        try:
            self.connection.executemany(
                f"INSERT INTO {qname} VALUES ({placeholders})",
                (adapt_row(r) for r in rows),
            )
        except OverflowError as exc:
            # A row-engine fragment (fallback subtree / IN list) produced
            # an integer beyond int64: the fragment cannot flow through
            # SQLite, so the whole statement escapes to the row engine.
            raise IntegerRangeEscape(
                f"fragment {frag!r} holds an integer beyond int64"
            ) from exc

    def fragment_source(self, frag: str) -> str:
        return f"temp.{quote_identifier(frag)}"

    def drop_fragment(self, frag: str) -> None:
        try:
            self.connection.execute(f"DROP TABLE IF EXISTS temp.{quote_identifier(frag)}")
        except sqlite3.Error:  # pragma: no cover - connection already closed
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_statement(self, sql: str, binds: dict[str, Value]) -> list[Row]:
        self._pending_error = None
        try:
            cursor = self.connection.execute(sql, binds)
            rows = cursor.fetchall()
        except OverflowError as exc:
            # Parameter/slot value outside SQLite's 64-bit integer range
            # (the engine's Python ints are unbounded): the row engine
            # handles such values natively, so escape instead of erroring.
            raise IntegerRangeEscape(f"bound value exceeds int64 ({exc})") from exc
        except sqlite3.Error as exc:
            pending, self._pending_error = self._pending_error, None
            if pending is not None:
                raise pending
            if "integer overflow" in str(exc):
                # Native integer sum() overflowed int64. The engines
                # return the exact arbitrary-precision total; rather than
                # gating every integer SUM statically (the common case
                # never overflows), keep the fast native aggregate and
                # escape to the row engine only when it actually trips.
                raise IntegerRangeEscape(str(exc)) from exc
            raise ExecutionError(f"sqlite backend: {exc}") from exc
        self.statements_executed += 1
        return rows

    def make_query_op(self, *args, **kwargs):
        return SQLiteQueryOp(self, *args, **kwargs)

    def close(self) -> None:
        self.connection.close()


def _naive_aggregate_class(backend: SQLiteBackend, func: str):
    """An sqlite3 aggregate class accumulating exactly like the row
    engine's :class:`AggregateAccumulator` (left-to-right, no
    compensation), with errors routed through the backend's channel."""
    from ..executor.expr_eval import AggregateAccumulator

    class NaiveAggregate:
        __slots__ = ("accumulator",)

        def __init__(self):
            self.accumulator = AggregateAccumulator(func, distinct=False)

        def step(self, value):
            try:
                self.accumulator.add(value)
            except Exception as exc:
                backend._pending_error = exc
                raise

        def finalize(self):
            try:
                result = adapt_value(self.accumulator.result())
                if type(result) is int and not (INT64_MIN <= result <= INT64_MAX):
                    raise IntegerRangeEscape(
                        f"aggregate result {result} exceeds int64"
                    )
                return result
            except Exception as exc:
                backend._pending_error = exc
                raise

    return NaiveAggregate


def _run_like(args: list[Value], case_insensitive: bool) -> Optional[bool]:
    value, pattern = args
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExecutionError("LIKE requires text operands")
    regex = _like_to_regex(pattern.lower() if case_insensitive else pattern)
    target = value.lower() if case_insensitive else value
    return regex.match(target) is not None
