"""SQLite pushdown backend: runtime layer.

The paper's Perm prototype computes provenance by rewriting query trees
and letting PostgreSQL execute the rewritten query. This backend
reproduces that architecture against the DBMS Python ships with: the
provenance-rewritten plan is compiled to a single SQL statement
(:mod:`repro.backend.compile`) and executed by an in-memory ``sqlite3``
database whose tables lazily mirror the engine's heap tables.

Pieces:

* :class:`SQLiteBackend` — owns the ``sqlite3`` connection, mirrors
  catalog tables (synced per :class:`~repro.storage.table.HeapTable`
  version), registers the ``repro_*`` user-defined functions that give
  SQLite *exactly* the scalar semantics of
  :mod:`repro.executor.expr_eval` (including raised errors, which
  travel through a side channel because sqlite3 swallows exception
  details), and materializes row-engine fallback fragments into temp
  tables.
* :class:`SQLiteQueryOp` — the physical plan object the planner emits
  for ``engine="sqlite"``; satisfies the executor contract
  (``schema`` + ``rows(env)``) so :func:`repro.executor.execute_plan`
  and the whole DB-API surface work unchanged.

Value mapping: INT/FLOAT/TEXT/NULL map 1:1 onto SQLite storage classes;
mirror columns are declared without a type (blank affinity) so values
round-trip without coercion. BOOL has no SQLite storage class: ``True``
/``False`` become 1/0 on the way in and are restored on the way out
using the plan's static output types.
"""

from __future__ import annotations

import sqlite3
from itertools import count
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from ..algebra.to_sql import quote_identifier_always as quote_identifier
from ..catalog.schema import Schema
from ..datatypes import SQLType, Value, arith, negate
from ..errors import ExecutionError, ProgrammingError
from ..executor.expr_eval import (
    _FUNCTIONS,
    _like_to_regex,
    CompiledExpr,
    Env,
    ParamContext,
    Row,
)
from ..executor.iterators import PhysicalOp, evaluate_limit_count

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog.catalog import Catalog

MIN_SQLITE_VERSION = (3, 25, 0)  # window functions (ordering channel)
FULL_JOIN_VERSION = (3, 39, 0)  # RIGHT / FULL OUTER JOIN support
# From 3.44.0 SQLite computes sum()/avg() with Kahan-Babuska compensated
# summation — more accurate, but not bit-identical to the engines' naive
# left-to-right accumulation. On such hosts float sum/avg pushdown uses
# the repro_fsum/repro_favg aggregate UDFs instead of native sum/avg.
KAHAN_SUM_VERSION = (3, 44, 0)

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


class IntegerRangeEscape(Exception):
    """A value crossed SQLite's 64-bit integer boundary mid-statement.

    The engine's integers are unbounded Python ints; SQLite's are 64-bit.
    Rather than diverging (silent REAL promotion) or erroring (the row
    engine computes these queries fine), every place a too-wide integer
    can enter or leave a pushed-down statement raises this escape —
    UDF/aggregate return values, parameter and fragment binds, mirror
    sync of stored big integers, and SQLite's own native ``sum()``
    overflow — and :class:`SQLiteQueryOp` re-runs the whole query on the
    row engine, whose exact arbitrary-precision result is returned
    instead. Internal control flow only: it must never surface to users.
    """


def adapt_value(value: Value) -> Value:
    """Python -> SQLite: booleans become 1/0, the rest maps directly."""
    if isinstance(value, bool):
        return int(value)
    return value


def adapt_row(row: Row) -> Row:
    return tuple(int(v) if isinstance(v, bool) else v for v in row)


class SubplanSlot:
    """One execution-time obligation of a compiled statement.

    Three kinds, all evaluated by the row engine immediately before the
    SQL statement runs (sublink subplans always use the row engine, the
    same policy the vectorized engine follows):

    * ``"rows"`` — a fallback subtree (or IN-sublink value list): the
      row plan's output is loaded into a temp-schema fragment table the
      statement reads from;
    * ``"scalar"`` — an uncorrelated scalar sublink: its single value
      (or the row engine's multi-row error);
    * ``"exists"`` — an uncorrelated EXISTS sublink: 1/0 with the
      negation already applied.

    Sublink slots (``slot_id`` set) surface through the ``repro_slot``
    UDF rather than plain bound parameters, so an error raised while
    evaluating the subplan fires only if the statement actually
    evaluates the expression — exactly like the row engine's lazy
    uncorrelated-subquery cache (an empty outer relation never touches
    the sublink on any engine). Fragment slots for fallback *subtrees*
    (``slot_id`` None) are data sources the statement always scans, so
    their errors raise immediately.
    """

    __slots__ = ("kind", "plan", "slot_id", "negated", "frag_table")

    def __init__(
        self,
        kind: str,
        plan: PhysicalOp,
        slot_id: Optional[int] = None,
        negated: bool = False,
        frag_table: Optional[str] = None,
    ):
        self.kind = kind
        self.plan = plan
        self.slot_id = slot_id
        self.negated = negated
        self.frag_table = frag_table


class LimitBind:
    """A LIMIT/OFFSET expression evaluated per execution and bound as a
    named parameter (reusing the row engine's evaluation and errors)."""

    __slots__ = ("bind_name", "compiled", "what")

    def __init__(self, bind_name: str, compiled: Optional[CompiledExpr], what: str):
        self.bind_name = bind_name
        self.compiled = compiled
        self.what = what


class SQLiteBackend:
    """One in-memory SQLite database mirroring one catalog."""

    def __init__(self, catalog: "Catalog"):
        if sqlite3.sqlite_version_info < MIN_SQLITE_VERSION:
            raise ProgrammingError(
                "the sqlite execution engine requires SQLite >= "
                + ".".join(str(v) for v in MIN_SQLITE_VERSION)
                + f" (found {sqlite3.sqlite_version})"
            )
        self.catalog = catalog
        # check_same_thread=False: a server session's statements all run
        # serialized (one request at a time), but possibly on different
        # worker-pool threads; sqlite3's same-thread check would reject
        # that even though access is never concurrent.
        self.connection = sqlite3.connect(":memory:", check_same_thread=False)
        self.supports_full_join = sqlite3.sqlite_version_info >= FULL_JOIN_VERSION
        self.native_float_agg = sqlite3.sqlite_version_info < KAHAN_SUM_VERSION
        # table key -> (heap object, heap version, schema signature)
        self._mirror: dict[str, tuple] = {}
        self._frag_names = count()
        self._slot_ids = count()
        # slot id -> ("ok", value) | ("error", exception); installed by
        # the executing SQLiteQueryOp, read by the repro_slot UDF.
        self._slot_states: dict[int, tuple[str, object]] = {}
        self._pending_error: Optional[BaseException] = None
        self.statements_executed = 0
        self.tables_synced = 0
        self._register_udfs()

    # ------------------------------------------------------------------
    # User-defined functions: exact expr_eval semantics inside SQLite
    # ------------------------------------------------------------------
    def _register_udfs(self) -> None:
        for name, impl in _FUNCTIONS.items():
            self.connection.create_function(
                f"repro_{name}", -1, self._wrap_udf(impl), deterministic=True
            )
        for type_ in (SQLType.INT, SQLType.FLOAT, SQLType.TEXT, SQLType.BOOL):
            from ..datatypes import cast_value

            self.connection.create_function(
                f"repro_cast_{type_.name.lower()}",
                1,
                self._wrap_udf(lambda args, t=type_: cast_value(args[0], t)),
                deterministic=True,
            )
        for udf, insensitive in (("repro_like", False), ("repro_ilike", True)):
            self.connection.create_function(
                udf,
                2,
                self._wrap_udf(lambda args, ci=insensitive: _run_like(args, ci)),
                deterministic=True,
            )
        # Division/modulo with the engine's exact rules (raise on zero,
        # '%' requires integers); used when the divisor is not a nonzero
        # constant, where native SQLite arithmetic would return NULL.
        self.connection.create_function(
            "repro_div",
            2,
            self._wrap_udf(lambda args: arith("/", args[0], args[1])),
            deterministic=True,
        )
        self.connection.create_function(
            "repro_mod",
            2,
            self._wrap_udf(lambda args: arith("%", args[0], args[1])),
            deterministic=True,
        )
        # Exact integer arithmetic for expressions whose static interval
        # analysis (compile._prepare) cannot bound the result within
        # int64: native SQLite would silently promote an overflowing
        # result to REAL. These compute in Python (unbounded); a result
        # beyond int64 escapes to the row engine via _wrap_udf's range
        # check instead of wrapping or losing precision.
        for udf_name, op in (("iadd", "+"), ("isub", "-"), ("imul", "*")):
            self.connection.create_function(
                f"repro_{udf_name}",
                2,
                self._wrap_udf(lambda args, o=op: arith(o, args[0], args[1])),
                deterministic=True,
            )
        self.connection.create_function(
            "repro_ineg",
            1,
            self._wrap_udf(lambda args: negate(args[0])),
            deterministic=True,
        )
        # Sublink slot access: constant within one statement execution
        # (the executing op installs every state before running), so
        # deterministic is safe and lets SQLite hoist it out of loops.
        self.connection.create_function(
            "repro_slot", 1, self._wrap_udf(self._read_slot), deterministic=True
        )
        # Naive left-to-right float aggregation (AggregateAccumulator
        # semantics) for hosts whose native sum()/avg() uses compensated
        # summation (>= 3.44) and would drift in the low bits.
        for agg_name, agg_func in (("repro_fsum", "sum"), ("repro_favg", "avg")):
            self.connection.create_aggregate(
                agg_name, 1, _naive_aggregate_class(self, agg_func)
            )

    def _read_slot(self, args):
        kind, payload = self._slot_states[args[0]]
        if kind == "error":
            raise payload  # re-raised with type+message via the channel
        return payload

    def _wrap_udf(self, impl):
        def wrapped(*args):
            try:
                result = adapt_value(impl(list(args)))
                if type(result) is int and not (INT64_MIN <= result <= INT64_MAX):
                    # The exact Python result exists but SQLite cannot
                    # hold it; abort the statement and let the row
                    # engine produce the full-precision answer.
                    raise IntegerRangeEscape(f"UDF result {result} exceeds int64")
                return result
            except Exception as exc:
                # sqlite3 reports UDF failures as a generic
                # OperationalError; stash the real exception so
                # run_statement can re-raise it with type and message
                # intact (identical error behavior across engines).
                self._pending_error = exc
                raise

        return wrapped

    # ------------------------------------------------------------------
    # Mirroring
    # ------------------------------------------------------------------
    def sync_table(self, name: str) -> None:
        """Bring the SQLite mirror of catalog table *name* up to date.

        Cheap when nothing changed: the mirror entry stores the heap's
        identity, version stamp and schema signature; a full reload
        happens only after DML or a drop/recreate. ``heap.version`` and
        ``heap.rows`` resolve through the active transaction
        (:mod:`repro.storage.mvcc`), so the mirror is keyed on *snapshot
        identity*: inside a transaction the backend executes against the
        transaction's stable snapshot (or its own staged writes), and
        concurrent commits elsewhere re-sync only the next statement
        that runs outside it."""
        entry = self.catalog.table(name)
        heap = entry.table
        key = name.lower()
        # The signature holds the heap object itself (not id(heap)): a
        # dropped table's reused address plus a coinciding version
        # counter must never read as "already synced".
        signature = (
            heap,
            heap.version,
            tuple((a.name, a.type) for a in heap.schema),
        )
        known = self._mirror.get(key)
        if known is not None and known[0] is heap and known[1:] == signature[1:]:
            return
        qname = f"main.{quote_identifier(key)}"
        # Blank column affinity: values keep their storage class exactly.
        columns = ", ".join(quote_identifier(a.name) for a in heap.schema)
        self.connection.execute(f"DROP TABLE IF EXISTS {qname}")
        self.connection.execute(f"CREATE TABLE {qname} ({columns})")
        placeholders = ", ".join("?" for _ in heap.schema)
        insert = f"INSERT INTO {qname} VALUES ({placeholders})"
        has_bool = any(a.type is SQLType.BOOL for a in heap.schema)
        try:
            if has_bool:
                self.connection.executemany(insert, (adapt_row(r) for r in heap.rows))
            else:
                # Fast path: heap rows are plain tuples of SQLite-native
                # values, no per-row conversion needed.
                self.connection.executemany(insert, heap.rows)
        except OverflowError as exc:
            # A stored integer beyond int64 cannot be mirrored; escape to
            # the row engine, which reads the heap directly and computes
            # with full precision.
            self._mirror.pop(key, None)
            raise IntegerRangeEscape(
                f"table {name!r} holds an integer beyond int64"
            ) from exc
        except sqlite3.Error as exc:
            self._mirror.pop(key, None)
            raise ExecutionError(
                f"cannot mirror table {name!r} into the sqlite backend: {exc}"
            ) from exc
        self._mirror[key] = signature
        self.tables_synced += 1

    def fresh_fragment_name(self) -> str:
        return f"_frag_{next(self._frag_names)}"

    def fresh_slot_id(self) -> int:
        return next(self._slot_ids)

    def materialize_fragment(self, frag: str, rows: list[Row], width: int) -> None:
        """(Re)create temp fragment *frag* holding *rows* — used for
        row-engine fallback subtrees and IN-sublink value lists. The
        implicit rowid preserves the row engine's output order."""
        qname = f"temp.{quote_identifier(frag)}"
        self.connection.execute(f"DROP TABLE IF EXISTS {qname}")
        columns = ", ".join(f"c{i}" for i in range(width))
        self.connection.execute(f"CREATE TEMP TABLE {quote_identifier(frag)} ({columns})")
        placeholders = ", ".join("?" for _ in range(width))
        try:
            self.connection.executemany(
                f"INSERT INTO {qname} VALUES ({placeholders})",
                (adapt_row(r) for r in rows),
            )
        except OverflowError as exc:
            # A row-engine fragment (fallback subtree / IN list) produced
            # an integer beyond int64: the fragment cannot flow through
            # SQLite, so the whole statement escapes to the row engine.
            raise IntegerRangeEscape(
                f"fragment {frag!r} holds an integer beyond int64"
            ) from exc

    def drop_fragment(self, frag: str) -> None:
        try:
            self.connection.execute(f"DROP TABLE IF EXISTS temp.{quote_identifier(frag)}")
        except sqlite3.Error:  # pragma: no cover - connection already closed
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_statement(self, sql: str, binds: dict[str, Value]) -> list[Row]:
        self._pending_error = None
        try:
            cursor = self.connection.execute(sql, binds)
            rows = cursor.fetchall()
        except OverflowError as exc:
            # Parameter/slot value outside SQLite's 64-bit integer range
            # (the engine's Python ints are unbounded): the row engine
            # handles such values natively, so escape instead of erroring.
            raise IntegerRangeEscape(f"bound value exceeds int64 ({exc})") from exc
        except sqlite3.Error as exc:
            pending, self._pending_error = self._pending_error, None
            if pending is not None:
                raise pending
            if "integer overflow" in str(exc):
                # Native integer sum() overflowed int64. The engines
                # return the exact arbitrary-precision total; rather than
                # gating every integer SUM statically (the common case
                # never overflows), keep the fast native aggregate and
                # escape to the row engine only when it actually trips.
                raise IntegerRangeEscape(str(exc)) from exc
            raise ExecutionError(f"sqlite backend: {exc}") from exc
        self.statements_executed += 1
        return rows

    def close(self) -> None:
        self.connection.close()


def _naive_aggregate_class(backend: SQLiteBackend, func: str):
    """An sqlite3 aggregate class accumulating exactly like the row
    engine's :class:`AggregateAccumulator` (left-to-right, no
    compensation), with errors routed through the backend's channel."""
    from ..executor.expr_eval import AggregateAccumulator

    class NaiveAggregate:
        __slots__ = ("accumulator",)

        def __init__(self):
            self.accumulator = AggregateAccumulator(func, distinct=False)

        def step(self, value):
            try:
                self.accumulator.add(value)
            except Exception as exc:
                backend._pending_error = exc
                raise

        def finalize(self):
            try:
                result = adapt_value(self.accumulator.result())
                if type(result) is int and not (INT64_MIN <= result <= INT64_MAX):
                    raise IntegerRangeEscape(
                        f"aggregate result {result} exceeds int64"
                    )
                return result
            except Exception as exc:
                backend._pending_error = exc
                raise

    return NaiveAggregate


def _run_like(args: list[Value], case_insensitive: bool) -> Optional[bool]:
    value, pattern = args
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExecutionError("LIKE requires text operands")
    regex = _like_to_regex(pattern.lower() if case_insensitive else pattern)
    target = value.lower() if case_insensitive else value
    return regex.match(target) is not None


class SQLiteQueryOp(PhysicalOp):
    """A compiled SQLite statement as a physical plan.

    ``rows(env)`` (the executor contract) syncs the mirrored base
    tables, evaluates sublink/fallback slots with the row engine, binds
    parameters from the shared :class:`ParamContext`, runs the single
    SQL statement, and adapts values back (0/1 -> bool per the static
    output schema).
    """

    __slots__ = (
        "backend",
        "sql",
        "table_names",
        "slots",
        "limit_binds",
        "param_labels",
        "params",
        "_bool_columns",
        "_rescue_planner",
        "_rescue_node",
        "_rescue_plan",
    )

    def __init__(
        self,
        backend: SQLiteBackend,
        sql: str,
        schema: Schema,
        table_names: Sequence[str],
        slots: Sequence[SubplanSlot],
        limit_binds: Sequence[LimitBind],
        param_labels: dict[int, str],
        params: ParamContext,
        rescue_planner=None,
        rescue_node=None,
    ):
        self.backend = backend
        self.sql = sql
        self.schema = schema
        self.table_names = tuple(table_names)
        self.slots = tuple(slots)
        self.limit_binds = tuple(limit_binds)
        self.param_labels = dict(param_labels)
        self.params = params
        self._bool_columns = tuple(
            i for i, a in enumerate(schema) if a.type is SQLType.BOOL
        )
        # Exact-integer rescue: when execution raises
        # IntegerRangeEscape (a value crossed the int64 boundary), the
        # original algebra tree is planned on the row engine — lazily,
        # once — and its exact result returned instead. The row plan
        # shares this op's ParamContext, so per-execution parameter
        # values flow through unchanged.
        self._rescue_planner = rescue_planner
        self._rescue_node = rescue_node
        self._rescue_plan: Optional[PhysicalOp] = None

    # ------------------------------------------------------------------
    def rows(self, env: Env) -> Iterator[Row]:
        return iter(self._execute(env))

    def _execute(self, env: Env) -> list[Row]:
        try:
            for name in self.table_names:
                self.backend.sync_table(name)
        except IntegerRangeEscape:
            return self._rescue(env)

        binds: dict[str, Value] = {}
        values = self.params.values
        for index, label in self.param_labels.items():
            if index >= len(values):
                raise ExecutionError(
                    f"parameter {label} has no bound value ({len(values)} bound)"
                )
            binds[f"p{index}"] = adapt_value(values[index])

        for bind in self.limit_binds:
            value = evaluate_limit_count(bind.compiled, env, bind.what)
            if value is None:
                value = -1 if bind.what == "LIMIT" else 0
            binds[bind.bind_name] = value

        try:
            for slot in self.slots:
                self._evaluate_slot(slot, env)
            raw = self.backend.run_statement(self.sql, binds)
        except IntegerRangeEscape:
            return self._rescue(env)
        finally:
            self._release_slots()
        return self._adapt(raw)

    def _rescue(self, env: Env) -> list[Row]:
        """Re-run the whole query on the row engine after an integer
        crossed the int64 boundary. Row-engine rows are already in
        engine-native values (real booleans, unbounded ints), so they
        bypass :meth:`_adapt`."""
        if self._rescue_planner is None or self._rescue_node is None:
            raise ExecutionError(
                "sqlite backend: integer beyond the 64-bit range with no "
                "row-engine rescue plan available"
            )
        plan = self._rescue_plan
        if plan is None:
            plan = self._rescue_planner.plan(self._rescue_node)
            self._rescue_plan = plan
        return list(plan.rows(env))

    def _release_slots(self) -> None:
        """Drop per-execution slot state so a long-lived connection does
        not accumulate fragment rows and stored exceptions across the
        distinct queries it has ever run."""
        for slot in self.slots:
            if slot.slot_id is not None:
                self.backend._slot_states.pop(slot.slot_id, None)
            if slot.frag_table is not None:
                self.backend.drop_fragment(slot.frag_table)

    def _evaluate_slot(self, slot: SubplanSlot, env: Env) -> None:
        """Run one slot's row plan. Sublink slots store their value —
        or the exception — for the ``repro_slot`` UDF, so errors fire
        only if the statement evaluates the expression; fallback-subtree
        fragments (no slot id) are unconditional sources and raise now."""
        states = self.backend._slot_states
        if slot.kind == "rows":
            assert slot.frag_table is not None
            width = len(slot.plan.schema)
            if slot.slot_id is None:
                rows = list(slot.plan.rows(env))
                self.backend.materialize_fragment(slot.frag_table, rows, width)
                return
            try:
                rows = list(slot.plan.rows(env))
            except Exception as exc:  # noqa: BLE001 - deferred to evaluation
                self.backend.materialize_fragment(slot.frag_table, [], width)
                states[slot.slot_id] = ("error", exc)
                return
            self.backend.materialize_fragment(slot.frag_table, rows, width)
            states[slot.slot_id] = ("ok", 1)
            return
        assert slot.slot_id is not None
        try:
            if slot.kind == "scalar":
                rows = list(slot.plan.rows(env))
                if len(rows) > 1:
                    raise ExecutionError("scalar subquery returned more than one row")
                value = adapt_value(rows[0][0]) if rows else None
            elif slot.kind == "exists":
                found = next(iter(slot.plan.rows(env)), None) is not None
                value = int((not found) if slot.negated else found)
            else:  # pragma: no cover - compiler emits only the kinds above
                raise ExecutionError(f"unknown subplan slot kind {slot.kind!r}")
        except Exception as exc:  # noqa: BLE001 - deferred to evaluation
            states[slot.slot_id] = ("error", exc)
            return
        states[slot.slot_id] = ("ok", value)

    def _adapt(self, raw: list[Row]) -> list[Row]:
        if not self._bool_columns:
            return raw
        bool_columns = self._bool_columns
        adapted = []
        for row in raw:
            out = list(row)
            for i in bool_columns:
                if out[i] is not None:
                    out[i] = bool(out[i])
            adapted.append(tuple(out))
        return adapted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SQLiteQueryOp {len(self.sql)} chars, {len(self.slots)} slot(s)>"
