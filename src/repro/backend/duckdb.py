"""DuckDB pushdown backend (optional).

The second proof of backend pluggability: the same shared plan compiler
(:mod:`repro.backend.compile`) drives an embedded DuckDB mirror through
the :class:`~repro.backend.runtime.MirrorAdapter` contract and the
:class:`~repro.backend.dialects.duckdb.DuckDBDialect`. The module is
*optional*: :mod:`repro.backend.registry` only registers the
``"duckdb"`` engine when the :mod:`duckdb` module is importable, so on
hosts without it the engine name is simply unknown (and this module is
never imported — importing it directly raises ImportError).

Differences from the SQLite adapter, all expressed through the contract
rather than special cases in the compiler:

* *Mirrors are typed.* DuckDB columns need declared types; mirrors use
  the dialect's type names, except BOOL which is stored as BIGINT 0/1 —
  the storage convention every adapter shares (plans restore booleans
  from the static output schema).
* *The scan ordinal is explicit.* Instead of relying on a rowid
  pseudo-column, mirrors and fragments carry a materialized position
  column in heap/insertion order (fragments name theirs ``rowid``
  because the fallback SQL addresses fragment order by that name — the
  documented adapter contract).
* *UDF registration is typed.* DuckDB's Python scalar functions take
  declared signatures; the engine-exact ``repro_*`` helpers register
  with ANY-typed parameters where the host build supports them.

Like every pushdown backend, correctness is defined by the N-way
differential harness: on hosts with DuckDB installed the ``duckdb``
engine joins the registered-backend matrix and must be bit-identical
(or fall back) against the row engine; where it is absent all of its
tests skip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import duckdb

from ..datatypes import SQLType, Value
from ..errors import ExecutionError
from ..executor.expr_eval import _FUNCTIONS, Row
from .dialects.base import quote_identifier_always as quote_identifier
from .dialects.duckdb import DuckDBDialect, INT64_MAX, INT64_MIN
from .runtime import IntegerRangeEscape, MirrorAdapter, adapt_row, adapt_value
from .sqlite import _run_like

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog.catalog import Catalog
    from ..storage.table import HeapTable

#: Hidden mirror column carrying heap order (DuckDB exposes no stable
#: rowid contract for in-memory tables, so the ordinal is materialized).
POS_COLUMN = "#pos"

#: Mirror storage types: BOOL rides as BIGINT 0/1 (shared convention).
_STORAGE_TYPES = {
    SQLType.INT: "BIGINT",
    SQLType.FLOAT: "DOUBLE",
    SQLType.TEXT: "VARCHAR",
    SQLType.BOOL: "BIGINT",
    SQLType.NULL: "VARCHAR",
}


class DuckDBBackend(MirrorAdapter):
    """One in-memory DuckDB database mirroring one catalog."""

    dialect_class = DuckDBDialect
    supports_full_join = True  # native RIGHT/FULL OUTER JOIN
    native_float_agg = False  # DuckDB parallelizes/compensates sum()

    def __init__(self, catalog: "Catalog"):
        super().__init__(catalog)
        self.connection = duckdb.connect(":memory:")
        # table key -> (heap object, heap version, schema signature)
        self._mirror: dict[str, tuple] = {}
        self._register_udfs()

    # ------------------------------------------------------------------
    # User-defined functions: exact expr_eval semantics inside DuckDB
    # ------------------------------------------------------------------
    def _register_udfs(self) -> None:
        from ..datatypes import arith, cast_value, negate

        try:
            any_type = duckdb.typing.DuckDBPyType("ANY")
        except Exception:  # pragma: no cover - host-version dependent
            any_type = None

        def create(name: str, impl, arity: int) -> None:
            wrapped = self._wrap_udf(impl)
            kwargs = {"null_handling": "special", "exception_handling": "default"}
            parameters = [any_type] * arity if any_type is not None else None
            try:
                self.connection.create_function(
                    f"repro_{name}", wrapped, parameters, any_type, **kwargs
                )
            except Exception as exc:  # pragma: no cover - host-dependent
                # A host build that cannot register this signature keeps
                # the engine usable: statements that reference the
                # function raise a binder error, surfaced as an
                # ExecutionError by run_statement.
                self._udf_failures[f"repro_{name}"] = str(exc)

        self._udf_failures: dict[str, str] = {}
        for name, impl in _FUNCTIONS.items():
            create(name, impl, 2)
        for type_ in (SQLType.INT, SQLType.FLOAT, SQLType.TEXT, SQLType.BOOL):
            create(
                f"cast_{type_.name.lower()}",
                lambda args, t=type_: cast_value(args[0], t),
                1,
            )
        create("like", lambda args: _run_like(args, False), 2)
        create("ilike", lambda args: _run_like(args, True), 2)
        create("div", lambda args: arith("/", args[0], args[1]), 2)
        create("mod", lambda args: arith("%", args[0], args[1]), 2)
        create("iadd", lambda args: arith("+", args[0], args[1]), 2)
        create("isub", lambda args: arith("-", args[0], args[1]), 2)
        create("imul", lambda args: arith("*", args[0], args[1]), 2)
        create("ineg", lambda args: negate(args[0]), 1)
        create("slot", self._read_slot, 1)
        # Naive left-to-right float aggregation is not expressible as a
        # DuckDB Python aggregate; the compiler's order-sensitivity
        # gates already fall back for float sum/avg (native_float_agg
        # is False and fsum/favg stay unregistered, so any statement
        # reaching for them delegates through the fallback machinery).

    def _wrap_udf(self, impl):
        def wrapped(*args):
            try:
                result = adapt_value(impl(list(args)))
                if type(result) is int and not (INT64_MIN <= result <= INT64_MAX):
                    raise IntegerRangeEscape(f"UDF result {result} exceeds int64")
                return result
            except Exception as exc:
                # DuckDB rewraps Python exceptions; stash the original so
                # run_statement re-raises it with type and message intact.
                self._pending_error = exc
                raise

        return wrapped

    # ------------------------------------------------------------------
    # Mirroring
    # ------------------------------------------------------------------
    def sync_table(self, name: str) -> None:
        entry = self.catalog.scan_entry(name)
        heap = entry.table
        key = name.lower()
        signature = (
            heap,
            heap.version,
            tuple((a.name, a.type) for a in heap.schema),
        )
        known = self._mirror.get(key)
        if known is not None and known[0] is heap and known[1:] == signature[1:]:
            return
        qname = f"main.{quote_identifier(key)}"
        columns = ", ".join(
            f"{quote_identifier(a.name)} {_STORAGE_TYPES[a.type]}"
            for a in heap.schema
        ) + f", {quote_identifier(POS_COLUMN)} BIGINT"
        self.connection.execute(f"DROP TABLE IF EXISTS {qname}")
        self.connection.execute(f"CREATE TABLE {qname} ({columns})")
        placeholders = ", ".join("?" for _ in range(len(heap.schema) + 1))
        insert = f"INSERT INTO {qname} VALUES ({placeholders})"
        rows = [adapt_row(r) + (pos,) for pos, r in enumerate(heap.rows)]
        for row in rows:
            for value in row:
                if type(value) is int and not (INT64_MIN <= value <= INT64_MAX):
                    self._mirror.pop(key, None)
                    raise IntegerRangeEscape(
                        f"table {name!r} holds an integer beyond int64"
                    )
        try:
            self.connection.executemany(insert, rows)
        except duckdb.Error as exc:
            self._mirror.pop(key, None)
            raise ExecutionError(
                f"cannot mirror table {name!r} into the duckdb backend: {exc}"
            ) from exc
        self._mirror[key] = signature
        self.tables_synced += 1

    def scan_source(self, table_key: str) -> str:
        return f"main.{quote_identifier(table_key)}"

    def scan_ordinal(self, columns: Sequence[str]) -> Optional[str]:
        if POS_COLUMN in {c.lower() for c in columns}:
            return None
        return POS_COLUMN

    def materialize_fragment(self, frag: str, rows: list[Row], width: int) -> None:
        # The fallback SQL addresses fragment order as ``rowid`` (the
        # adapter contract); DuckDB gets it as a real column.
        qname = f"temp.{quote_identifier(frag)}"
        self.connection.execute(f"DROP TABLE IF EXISTS {qname}")
        columns = ", ".join(
            [f"c{i} {_fragment_type(rows, i)}" for i in range(width)]
            + ["rowid BIGINT"]
        )
        self.connection.execute(f"CREATE TEMP TABLE {qname} ({columns})")
        placeholders = ", ".join("?" for _ in range(width + 1))
        adapted = [adapt_row(r) + (pos,) for pos, r in enumerate(rows)]
        for row in adapted:
            for value in row:
                if type(value) is int and not (INT64_MIN <= value <= INT64_MAX):
                    raise IntegerRangeEscape(
                        f"fragment {frag!r} holds an integer beyond int64"
                    )
        self.connection.executemany(
            f"INSERT INTO {qname} VALUES ({placeholders})", adapted
        )

    def fragment_source(self, frag: str) -> str:
        return f"temp.{quote_identifier(frag)}"

    def drop_fragment(self, frag: str) -> None:
        try:
            self.connection.execute(
                f"DROP TABLE IF EXISTS temp.{quote_identifier(frag)}"
            )
        except duckdb.Error:  # pragma: no cover - connection already closed
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_statement(self, sql: str, binds: dict[str, Value]) -> list[Row]:
        self._pending_error = None
        for value in binds.values():
            if type(value) is int and not (INT64_MIN <= value <= INT64_MAX):
                raise IntegerRangeEscape("bound value exceeds int64")
        try:
            rows = self.connection.execute(sql, binds).fetchall()
        except duckdb.Error as exc:
            pending, self._pending_error = self._pending_error, None
            if pending is not None:
                raise pending
            if "out of range" in str(exc).lower() or "overflow" in str(exc).lower():
                raise IntegerRangeEscape(str(exc)) from exc
            raise ExecutionError(f"duckdb backend: {exc}") from exc
        self.statements_executed += 1
        return rows

    def close(self) -> None:
        self.connection.close()


def _fragment_type(rows: list[Row], index: int) -> str:
    """Declared type of fragment column *index*, from the first non-NULL
    value (fragments carry row-engine output; a column's values share
    one static type)."""
    for row in rows:
        value = row[index]
        if value is None:
            continue
        if isinstance(value, bool) or isinstance(value, int):
            return "BIGINT"
        if isinstance(value, float):
            return "DOUBLE"
        return "VARCHAR"
    return "VARCHAR"
