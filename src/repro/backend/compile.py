"""Algebra -> one pushdown SQL statement, preserving engine semantics.

This is the shared plan compiler behind every pushdown backend
(``engine="sqlite"`` and friends). It walks the optimized
(provenance-rewritten) algebra tree and emits nested-subselect SQL,
mirroring the paper's architecture: the rewritten query tree is
deparsed and handed to a conventional DBMS. Everything target-specific
is supplied by two objects — a
:class:`~repro.backend.dialects.base.Dialect` (string rendering, UDF
addressing, integer bounds) and a
:class:`~repro.backend.runtime.MirrorAdapter` (mirroring, scan/fragment
sources, capability flags) — so the compiler itself never names an
engine.

Two things make this more than a deparser:

**The ordering channel.** The row and vectorized engines produce rows in
a deterministic order (heap order scans, probe-side-major hash joins,
first-seen groups) and the differential harness asserts bit-identical
order across engines. SQL result order, however, is only defined by
ORDER BY. So every compiled subquery carries hidden ordinal columns — a
total order reproducing the row engine's output order — built from the
adapter's scan ordinal (rowid) at the leaves, concatenated across
joins, collapsed through GROUP BY via
``min(row_number() OVER (ORDER BY <child ordinals>))``, and consumed by
one final top-level ORDER BY (NULL placement encoded as ``(x IS NULL)``
prefix terms, so outer-join padding sorts exactly where the row engine
puts it).

**Per-subtree fallback.** Constructs the target cannot express with
identical semantics raise :class:`Unsupported`; the enclosing subtree is
then planned on the row engine and its output materialized into a temp
fragment table the statement reads (the pattern
:class:`~repro.executor.vectorized.VFromRows` uses, one level up).
Fallback triggers for: set operations (compound SELECTs reorder rows),
correlated sublinks beyond EXISTS/IN (SQL targets silently take the
first row of a multi-row scalar subquery where this engine raises),
quantified comparisons, grouped or unordered float SUM/AVG (float
addition is order-sensitive and GROUP BY sorters do not preserve
first-seen accumulation order), and statically boolean-typed operands
of arithmetic/functions (0/1 storage cannot raise the engine's type
errors).

Everything else — filters, projections, all join kinds, integer and
min/max/count aggregation, DISTINCT, ORDER BY, LIMIT, parameter
placeholders, EXISTS/IN sublinks (correlated or not) — runs natively in
the target's engine.

**Exact integer semantics.** The engine's Python integers are unbounded
while pushdown targets hold 64-bit integers, and e.g. SQLite silently
promotes overflowing integer arithmetic to REAL (losing precision)
where the engines return exact big integers. Two mechanisms close the
gap:

* *Static interval analysis* (:meth:`PushdownCompiler._prepare`): every
  integer ``+``/``-``/``*``/unary ``-`` gets conservative value bounds
  computed bottom-up (constants are exact, stored columns and parameters
  are in-range by construction); a node whose result interval cannot be
  proven within the dialect's :attr:`~repro.backend.dialects.base
  .Dialect.integer_bounds` is rewritten to the exact ``iadd`` / ``isub``
  / ``imul`` / ``ineg`` UDFs, which compute in Python. Integer constants
  beyond the bounds (lexed as REAL by the target) make the subtree fall
  back to the row engine outright.
* *Runtime escape + rescue* (:class:`~repro.backend.runtime
  .IntegerRangeEscape`): any integer that still crosses the boundary at
  runtime — a UDF or aggregate result, native ``sum()`` overflow, an
  oversized parameter at bind, a stored or fragment value out of range
  — aborts the statement and re-runs the whole query on the row engine,
  whose exact result is returned. Integer SUM therefore stays on the
  target's fast native aggregate and only pays for rescue in the rare
  overflow case; all engines agree on the exact bignum.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Optional

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..algebra.tree import walk_tree
from ..catalog.schema import Schema
from ..datatypes import SQLType
from ..errors import PlanError
from .dialects.base import expr_to_sql, quote_identifier_always as q
from .runtime import LimitBind, MirrorAdapter, SubplanSlot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.planner import Planner


class Unsupported(Exception):
    """Raised when a (sub)tree cannot be pushed down with identical
    semantics; the compiler falls back to the row engine for it."""


class OrdKey:
    """One hidden ordinal column of a compiled subquery.

    ``nulls_first`` is ``None`` when the column can never be NULL;
    otherwise it fixes NULL placement (outer-join padding, sort keys).
    """

    __slots__ = ("column", "descending", "nulls_first")

    def __init__(
        self,
        column: str,
        descending: bool = False,
        nulls_first: Optional[bool] = None,
    ):
        self.column = column
        self.descending = descending
        self.nulls_first = nulls_first



class _Compiled:
    """A compiled subquery: SQL text exposing the node's schema columns
    (under their quoted attribute names) plus hidden ordinal columns."""

    __slots__ = ("sql", "ords")

    def __init__(self, sql: str, ords: list[OrdKey]):
        self.sql = sql
        self.ords = ords


# Rewrites of +/-/* whose result interval escapes the dialect's integer
# bounds: exact Python arithmetic UDFs registered by the backend.
_EXACT_ARITH_UDFS = {"+": "iadd", "-": "isub", "*": "imul"}


def _arith_interval(
    op: str, left: tuple[int, int], right: tuple[int, int]
) -> tuple[int, int]:
    """Exact interval arithmetic for integer ``+``/``-``/``*``."""
    (a, b), (c, d) = left, right
    if op == "+":
        return (a + c, b + d)
    if op == "-":
        return (a - d, b - c)
    products = (a * c, a * d, b * c, b * d)
    return (min(products), max(products))
# Operators whose compiled SQL is scanned in a *physically guaranteed*
# order (see _order_realized): safe below an order-sensitive aggregate.
_ORDER_PRESERVING = (an.Select, an.Project)


class PushdownCompiler:
    """Compiles one algebra tree into one pushdown query operator,
    parameterized by the backend's :class:`MirrorAdapter` (and, through
    it, the backend's dialect)."""

    def __init__(self, planner: "Planner", backend: MirrorAdapter):
        self.planner = planner
        self.backend = backend
        # A plain dialect instance for rendering that needs no sublink
        # support (slot handles, UDF names, bind labels).
        self.dialect = backend.dialect()
        bounds = self.dialect.integer_bounds
        self._int_min, self._int_max = (
            bounds if bounds is not None else (None, None)
        )
        self._aliases = count()
        self._ords = count()
        self.table_names: list[str] = []
        self.slots: list[SubplanSlot] = []
        self.limit_binds: list[LimitBind] = []
        self.param_labels: dict[int, str] = {}
        # Enclosing sublink scopes, innermost last:
        # (holder input Schema, lowercased names of the holder's plan tree)
        self._scopes: list[tuple[Schema, set[str]]] = []
        self._current_tree: set[str] = set()

    # ------------------------------------------------------------------
    def compile_root(self, node: an.Node):
        """Compile *node*; returns the backend's query operator, or a
        plain row-engine plan when the root itself cannot be pushed
        down."""
        self._current_tree = _tree_names(node)
        try:
            compiled = self._dispatch(node)
        except Unsupported:
            return self.planner.plan(node)
        alias = self._alias()
        columns = ", ".join(f"{alias}.{q(a.name)}" for a in node.schema)
        sql = f"SELECT {columns} FROM ({compiled.sql}) AS {alias}"
        if compiled.ords:
            sql += f" ORDER BY {self._order_by(compiled.ords, alias)}"
        return self.backend.make_query_op(
            sql,
            node.schema,
            self.table_names,
            self.slots,
            self.limit_binds,
            self.param_labels,
            self.planner.params,
            rescue_planner=self.planner,
            rescue_node=node,
        )

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------
    def _alias(self) -> str:
        return f"s{next(self._aliases)}"

    def _ord_name(self) -> str:
        # '#' keeps generated ordinals out of any attribute namespace the
        # analyzer or rewriter can produce.
        return f"#o:{next(self._ords)}"

    def _order_by(self, ords: list[OrdKey], alias: Optional[str] = None) -> str:
        terms = []
        for key in ords:
            ref = f"{alias}.{q(key.column)}" if alias else q(key.column)
            direction = "DESC" if key.descending else "ASC"
            if key.nulls_first is not None:
                terms.append(f"({ref} IS NULL) {'DESC' if key.nulls_first else 'ASC'}")
            terms.append(f"{ref} {direction}")
        return ", ".join(terms)

    def _node(self, node: an.Node) -> _Compiled:
        """Compile a subtree, falling back to a row-engine fragment when
        it (or an expression in it) is unsupported. Side effects of the
        abandoned attempt (slots, limit binds, parameter labels, table
        references) are rolled back so the fallback plan does not drag
        orphaned subplans through every execution."""
        slots = len(self.slots)
        limits = len(self.limit_binds)
        tables = len(self.table_names)
        labels = dict(self.param_labels)
        try:
            return self._dispatch(node)
        except Unsupported:
            del self.slots[slots:]
            del self.limit_binds[limits:]
            del self.table_names[tables:]
            self.param_labels = labels
            return self._fallback(node)

    def _dispatch(self, node: an.Node) -> _Compiled:
        method = getattr(self, "_compile_" + type(node).__name__.lower(), None)
        if method is None:
            raise Unsupported(type(node).__name__)
        return method(node)

    def _fallback(self, node: an.Node) -> _Compiled:
        """Plan *node* on the row engine; its output is materialized into
        a temp fragment per execution (order preserved via rowid, which
        the adapter contract guarantees on fragment tables)."""
        if self._scopes and ax.plan_is_correlated(node):
            # Inside a pushed-down correlated sublink a correlated
            # subtree cannot be materialized ahead of execution; bubble
            # up so the whole enclosing operator falls back instead.
            raise Unsupported("correlated subtree inside a pushed-down sublink")
        plan = self.planner.plan(node)
        frag = self.backend.fresh_fragment_name()
        self.slots.append(SubplanSlot("rows", plan, frag_table=frag))
        alias = self._alias()
        items = [
            f"{alias}.c{i} AS {q(a.name)}" for i, a in enumerate(node.schema)
        ]
        ord_name = self._ord_name()
        items.append(f"{alias}.rowid AS {q(ord_name)}")
        sql = (
            f"SELECT {', '.join(items)} "
            f"FROM {self.backend.fragment_source(frag)} AS {alias}"
        )
        return _Compiled(sql, [OrdKey(ord_name)])

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _compile_scan(self, node: an.Scan) -> _Compiled:
        rowid = self.backend.scan_ordinal(node.columns)
        if rowid is None:
            raise Unsupported("mirror table cannot expose a scan ordinal")
        key = node.table_name.lower()
        if key not in {t.lower() for t in self.table_names}:
            self.table_names.append(node.table_name)
        alias = self._alias()
        items = [
            f"{alias}.{q(col)} AS {q(out.name)}"
            for col, out in zip(node.columns, node.schema)
        ]
        ord_name = self._ord_name()
        items.append(f"{alias}.{q(rowid)} AS {q(ord_name)}")
        sql = (
            f"SELECT {', '.join(items)} "
            f"FROM {self.backend.scan_source(key)} AS {alias}"
        )
        return _Compiled(sql, [OrdKey(ord_name)])

    def _compile_singlerow(self, node: an.SingleRow) -> _Compiled:
        ord_name = self._ord_name()
        return _Compiled(f"SELECT 0 AS {q(ord_name)}", [OrdKey(ord_name)])

    def _compile_baserelationnode(self, node: an.BaseRelationNode) -> _Compiled:
        return self._node(node.child)

    def _compile_provenancenode(self, node: an.ProvenanceNode) -> _Compiled:
        raise PlanError(
            "ProvenanceNode reached the planner — the provenance rewriter "
            "must run before planning (engine bug or misuse of Planner)"
        )

    def _compile_project(self, node: an.Project) -> _Compiled:
        child = self._node(node.child)
        alias = self._alias()
        items = [
            f"{self._expr(expr, node.child.schema)} AS {q(name)}"
            for name, expr in node.items
        ]
        items += [f"{alias}.{q(k.column)} AS {q(k.column)}" for k in child.ords]
        sql = f"SELECT {', '.join(items)} FROM ({child.sql}) AS {alias}"
        return _Compiled(sql, child.ords)

    def _compile_select(self, node: an.Select) -> _Compiled:
        child = self._node(node.child)
        alias = self._alias()
        condition = self._expr(node.condition, node.child.schema)
        columns = [f"{alias}.{q(a.name)}" for a in node.schema]
        columns += [f"{alias}.{q(k.column)}" for k in child.ords]
        sql = (
            f"SELECT {', '.join(columns)} FROM ({child.sql}) AS {alias} "
            f"WHERE {condition}"
        )
        return _Compiled(sql, child.ords)

    def _compile_join(self, node: an.Join) -> _Compiled:
        if node.kind in ("right", "full") and not self.backend.supports_full_join:
            raise Unsupported(f"{node.kind} join unsupported by this backend")
        left = self._node(node.left)
        right = self._node(node.right)
        la, ra = self._alias(), self._alias()

        left_ords = left.ords
        if node.kind in ("right", "full"):
            # Unmatched right rows (NULL-padded left side) must sort
            # after every real row, the way the row engine appends them.
            # A constant marker ordinal makes padding unambiguous even
            # when the left ordinals can legitimately be NULL themselves
            # (a sort key below) or are absent (one-row left input).
            marker = self._ord_name()
            left = _Compiled(
                f"SELECT *, 0 AS {q(marker)} FROM ({left.sql})",
                [OrdKey(marker, nulls_first=False)] + left_ords,
            )
            left_ords = left.ords

        columns = [f"{la}.{q(a.name)}" for a in node.left.schema]
        columns += [f"{ra}.{q(a.name)}" for a in node.right.schema]
        columns += [f"{la}.{q(k.column)}" for k in left_ords]
        columns += [f"{ra}.{q(k.column)}" for k in right.ords]

        keyword = {
            "inner": "JOIN",
            "left": "LEFT JOIN",
            "right": "RIGHT JOIN",
            "full": "FULL JOIN",
            "cross": "CROSS JOIN",
        }[node.kind]
        sql = (
            f"SELECT {', '.join(columns)} FROM ({left.sql}) AS {la} "
            f"{keyword} ({right.sql}) AS {ra}"
        )
        if node.condition is not None:
            sql += f" ON {self._expr(node.condition, node.schema)}"

        # Row-engine order: probe(left)-major, then build(right) order;
        # unmatched build rows (right/full) appended last via the left
        # pad marker above. Left/full padding (NULL right ordinals) is a
        # single row per left row, so right ordinals are only ever
        # compared among real matches of one left row and keep their
        # own semantics unchanged.
        return _Compiled(sql, left_ords + right.ords)

    def _compile_aggregate(self, node: an.Aggregate) -> _Compiled:
        child_schema = node.child.schema
        outers = self._outer_schemas()
        order_sensitive = False
        float_aggs: set[int] = set()
        int_avgs: set[int] = set()
        for index, (_, agg) in enumerate(node.agg_items):
            if agg.func in ("sum", "avg"):
                arg_type = ax.infer_type(agg.arg, child_schema, outers)
                if arg_type not in (SQLType.INT, SQLType.FLOAT):
                    # sum/avg over bool/text raises in the engine;
                    # a SQL target would happily coerce and compute.
                    raise Unsupported(f"{agg.func}() over {arg_type} input")
                if arg_type is SQLType.FLOAT:
                    if agg.distinct:
                        # SQL targets iterate the distinct set in b-tree
                        # (sorted) order; the engine sums first-seen.
                        raise Unsupported("DISTINCT float sum/avg is order-sensitive")
                    order_sensitive = True
                    float_aggs.add(index)
                elif agg.func == "avg":
                    # Native integer avg() accumulates in int64 and
                    # silently switches to double accumulation on
                    # overflow — not the engine's correctly-rounded
                    # exact-total / count. The exact accumulator UDF is
                    # order-insensitive for integers (bignum total,
                    # one division at the end), so grouping is fine.
                    # Integer sum() stays native: it is exact until
                    # overflow, which escapes to the row-engine rescue.
                    int_avgs.add(index)

        if order_sensitive:
            if node.group_items:
                # GROUP BY sorters do not preserve per-group arrival
                # order, so float accumulation order (and hence the
                # exact IEEE sum) could differ from the row engine.
                raise Unsupported("grouped float sum/avg is order-sensitive")
            if not _order_realized(node.child):
                raise Unsupported("float sum/avg over an unordered input")

        child = self._node(node.child)
        agg_sqls = []
        for index, (name, agg) in enumerate(node.agg_items):
            if agg.arg is None:
                agg_sqls.append(f"count(*) AS {q(name)}")
                continue
            distinct = "DISTINCT " if agg.distinct else ""
            arg_sql = self._expr(agg.arg, child_schema)
            func = agg.func
            if index in float_aggs and not self.backend.native_float_agg:
                # This host's native sum/avg is not bit-identical to the
                # engine's naive accumulation (e.g. compensated
                # summation); route through the naive aggregate UDFs.
                func = self.dialect.udf_name("fsum" if func == "sum" else "favg")
            elif index in int_avgs:
                # Exact integer average (see the gate above).
                func = self.dialect.udf_name("favg")
            agg_sqls.append(f"{func}({distinct}{arg_sql}) AS {q(name)}")

        if not node.group_items:
            alias = self._alias()
            sql = f"SELECT {', '.join(agg_sqls)} FROM ({child.sql}) AS {alias}"
            return _Compiled(sql, [])  # exactly one row: no ordinal needed

        # First-seen group order: number the input rows by the child
        # ordinals, group, and order groups by min(row number).
        inner_alias = self._alias()
        rn = self._ord_name()
        over = (
            f"OVER (ORDER BY {self._order_by(child.ords, inner_alias)})"
            if child.ords
            else "OVER ()"
        )
        inner_columns = [f"{inner_alias}.{q(a.name)}" for a in child_schema]
        inner_sql = (
            f"SELECT {', '.join(inner_columns)}, row_number() {over} AS {q(rn)} "
            f"FROM ({child.sql}) AS {inner_alias}"
        )
        outer_alias = self._alias()
        group_sqls = [
            (self._expr(expr, child_schema), name) for name, expr in node.group_items
        ]
        items = [f"{sql_text} AS {q(name)}" for sql_text, name in group_sqls]
        items += agg_sqls
        ord_name = self._ord_name()
        items.append(f"min({q(rn)}) AS {q(ord_name)}")
        sql = (
            f"SELECT {', '.join(items)} FROM ({inner_sql}) AS {outer_alias} "
            f"GROUP BY {', '.join(sql_text for sql_text, _ in group_sqls)}"
        )
        return _Compiled(sql, [OrdKey(ord_name)])

    def _compile_distinct(self, node: an.Distinct) -> _Compiled:
        child = self._node(node.child)
        inner_alias = self._alias()
        rn = self._ord_name()
        over = (
            f"OVER (ORDER BY {self._order_by(child.ords, inner_alias)})"
            if child.ords
            else "OVER ()"
        )
        inner_columns = [f"{inner_alias}.{q(a.name)}" for a in node.schema]
        inner_sql = (
            f"SELECT {', '.join(inner_columns)}, row_number() {over} AS {q(rn)} "
            f"FROM ({child.sql}) AS {inner_alias}"
        )
        outer_alias = self._alias()
        ord_name = self._ord_name()
        names = [q(a.name) for a in node.schema]
        sql = (
            f"SELECT {', '.join(names)}, min({q(rn)}) AS {q(ord_name)} "
            f"FROM ({inner_sql}) AS {outer_alias} "
            f"GROUP BY {', '.join(names)}"
        )
        return _Compiled(sql, [OrdKey(ord_name)])

    def _compile_sort(self, node: an.Sort) -> _Compiled:
        child = self._node(node.child)
        alias = self._alias()
        columns = [f"{alias}.{q(a.name)}" for a in node.schema]
        key_ords = []
        for key in node.keys:
            ord_name = self._ord_name()
            columns.append(f"{self._expr(key.expr, node.child.schema)} AS {q(ord_name)}")
            # PostgreSQL default NULL placement (the row engine's
            # SortSpec): NULLS LAST ascending, NULLS FIRST descending.
            nulls_first = key.descending if key.nulls_first is None else key.nulls_first
            key_ords.append(OrdKey(ord_name, key.descending, nulls_first))
        columns += [f"{alias}.{q(k.column)}" for k in child.ords]
        sql = f"SELECT {', '.join(columns)} FROM ({child.sql}) AS {alias}"
        # Stable sort: the child ordinals break ties exactly like the
        # row engine's stable multi-key sort.
        return _Compiled(sql, key_ords + child.ords)

    def _compile_limit(self, node: an.Limit) -> _Compiled:
        child = self._node(node.child)
        alias = self._alias()
        columns = [f"{alias}.{q(a.name)}" for a in node.schema]
        columns += [f"{alias}.{q(k.column)}" for k in child.ords]
        sql = f"SELECT {', '.join(columns)} FROM ({child.sql}) AS {alias}"
        if child.ords:
            sql += f" ORDER BY {self._order_by(child.ords, alias)}"
        compiler = self.planner._compiler(Schema(()), ())
        if node.limit is not None:
            bind = f"limit{len(self.limit_binds)}"
            self.limit_binds.append(LimitBind(bind, compiler.compile(node.limit), "LIMIT"))
            sql += f" LIMIT {self.dialect.bind_label(bind)}"
        else:
            sql += f" {self.dialect.limit_all()}"
        if node.offset is not None:
            bind = f"offset{len(self.limit_binds)}"
            self.limit_binds.append(
                LimitBind(bind, compiler.compile(node.offset), "OFFSET")
            )
            sql += f" OFFSET {self.dialect.bind_label(bind)}"
        return _Compiled(sql, child.ords)

    def _compile_setopnode(self, node: an.SetOpNode) -> _Compiled:
        # Compound SELECTs dedupe through a sorter, losing the engine's
        # first-seen/left-major order; run on the row engine.
        raise Unsupported("set operations reorder rows on pushdown")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _outer_schemas(self) -> tuple[Schema, ...]:
        """Enclosing scopes for static typing, innermost first."""
        return tuple(schema for schema, _ in reversed(self._scopes))

    def _expr(self, expr: ax.Expr, schema: Schema) -> str:
        prepared = self._prepare(expr, schema)
        dialect = self.backend.dialect(
            subquery_renderer=lambda sub: self._sublink(sub, schema)
        )
        for part in ax.walk_expr(prepared):
            if isinstance(part, ax.Param):
                label = f":{part.name}" if part.name is not None else f"${part.index + 1}"
                self.param_labels[part.index] = label
        return expr_to_sql(prepared, dialect)

    def _within_bounds(self, interval: tuple[int, int]) -> bool:
        return self._int_min <= interval[0] and interval[1] <= self._int_max

    def _prepare(self, expr: ax.Expr, schema: Schema) -> ax.Expr:
        """Static semantic gate + rewrite pass.

        Rejects expressions the target cannot evaluate with identical
        semantics (boolean operands where the engine raises type errors,
        quantified sublinks) and rewrites division/modulo to the exact
        ``div``/``mod`` UDFs unless the divisor is a nonzero constant
        (where native arithmetic provably matches)."""
        outers = self._outer_schemas()
        int_gated = self._int_min is not None
        int_bounds = (self._int_min, self._int_max) if int_gated else None

        def static_type(e: ax.Expr) -> SQLType:
            if isinstance(e, ax.FuncExpr) and e.name in ("div", "mod"):
                # Our own rewrites of '/' and '%' — infer_type does not
                # know them; mirror the BinOp typing so enclosing gates
                # (e.g. ||, comparisons) still see the numeric type.
                if e.name == "mod":
                    return SQLType.INT
                lt, rt = static_type(e.args[0]), static_type(e.args[1])
                if SQLType.FLOAT in (lt, rt):
                    return SQLType.FLOAT
                if lt is SQLType.NULL or rt is SQLType.NULL:
                    return SQLType.NULL
                return SQLType.INT
            if isinstance(e, ax.FuncExpr) and e.name in ("iadd", "isub", "imul"):
                lt, rt = static_type(e.args[0]), static_type(e.args[1])
                if lt is SQLType.NULL or rt is SQLType.NULL:
                    return SQLType.NULL
                return SQLType.INT
            if isinstance(e, ax.FuncExpr) and e.name == "ineg":
                return static_type(e.args[0])
            try:
                return ax.infer_type(e, schema, outers)
            except Exception:
                return SQLType.NULL

        def int_interval(e: ax.Expr) -> Optional[tuple[int, int]]:
            """Conservative runtime-value bounds of an integer-typed
            expression, or ``None`` when it is not statically integer.

            Sound because every integer that enters a compiled statement
            is bounded by construction — mirrored columns refuse wider
            values, parameters escape at bind, UDF and sublink-slot
            results are range-checked on return — and because unsafe
            arithmetic below has already been rewritten to the escaping
            ``i*`` UDFs when this runs (``map_expr`` is bottom-up), so
            any surviving native node was itself proven in-range."""
            if isinstance(e, ax.Const):
                if e.value is None:
                    return (0, 0)  # NULL propagates; no value to bound
                if isinstance(e.value, int) and not isinstance(e.value, bool):
                    return (e.value, e.value)
                return None
            t = static_type(e)
            if t in (SQLType.FLOAT, SQLType.TEXT, SQLType.BOOL):
                return None
            if isinstance(e, ax.BinOp):
                if e.op in ("+", "-", "*"):
                    li = int_interval(e.left) or int_bounds
                    ri = int_interval(e.right) or int_bounds
                    return _arith_interval(e.op, li, ri)
                if e.op == "/":
                    # Surviving native division has |divisor| >= 1, so
                    # |quotient| <= |dividend| (the INT_MIN / -1 edge
                    # is forced through the div UDF below).
                    lo, hi = int_interval(e.left) or int_bounds
                    magnitude = max(abs(lo), abs(hi))
                    return (-magnitude, magnitude)
                if e.op == "%":
                    # Surviving native modulo has an integer constant
                    # divisor; the result is smaller in magnitude.
                    if isinstance(e.right, ax.Const) and isinstance(e.right.value, int):
                        bound = abs(e.right.value) - 1
                        return (-bound, bound)
                    return int_bounds
            if isinstance(e, ax.UnOp) and e.op == "-":
                lo, hi = int_interval(e.operand) or int_bounds
                return (-hi, -lo)
            return int_bounds

        def gate(e: ax.Expr) -> Optional[ax.Expr]:
            if isinstance(e, ax.Const) and isinstance(e.value, float) and (
                e.value != e.value or e.value in (float("inf"), float("-inf"))
            ):
                # repr() would render a bare `inf`/`nan` token, which
                # SQL lexers read as a column name; there is no literal
                # with identical semantics.
                raise Unsupported("non-finite float constant")
            if (
                int_gated
                and isinstance(e, ax.Const)
                and isinstance(e.value, int)
                and not isinstance(e.value, bool)
                and not (self._int_min <= e.value <= self._int_max)
            ):
                # The target lexes an over-wide integer literal as REAL,
                # silently losing precision; the row engine keeps it
                # exact, so the subtree must run there.
                raise Unsupported("integer constant beyond the target's range")
            if isinstance(e, ax.UnOp):
                ot = static_type(e.operand)
                if e.op == "-" and ot in (SQLType.BOOL, SQLType.TEXT):
                    raise Unsupported("unary minus over non-numeric raises in-engine")
                if e.op == "not" and ot not in (SQLType.BOOL, SQLType.NULL):
                    raise Unsupported("NOT over non-boolean raises in-engine")
                if int_gated and e.op == "-" and ot in (SQLType.INT, SQLType.NULL):
                    lo, hi = int_interval(e.operand) or int_bounds
                    if not self._within_bounds((-hi, -lo)):
                        return ax.FuncExpr("ineg", (e.operand,))
            if isinstance(e, ax.BinOp):
                lt, rt = static_type(e.left), static_type(e.right)
                if e.op in ("and", "or") and any(
                    t not in (SQLType.BOOL, SQLType.NULL) for t in (lt, rt)
                ):
                    raise Unsupported("AND/OR over non-boolean raises in-engine")
                if e.op == "||" and any(
                    t not in (SQLType.TEXT, SQLType.NULL) for t in (lt, rt)
                ):
                    raise Unsupported("|| over non-text raises in-engine")
                if e.op in ("=", "<>", "<", "<=", ">", ">="):
                    if (lt is SQLType.BOOL) != (rt is SQLType.BOOL) and SQLType.NULL not in (lt, rt):
                        raise Unsupported("bool/non-bool comparison raises in-engine")
                    if not _statically_comparable(lt, rt):
                        raise Unsupported(f"comparison of {lt} with {rt} raises in-engine")
                if e.op in ("+", "-", "*", "/", "%") and any(
                    t not in (SQLType.INT, SQLType.FLOAT, SQLType.NULL)
                    for t in (lt, rt)
                ):
                    # bool/text operands raise in the engine; SQL targets
                    # would coerce ('a' + 1 -> 1) and silently diverge.
                    raise Unsupported("arithmetic over non-numeric raises in-engine")
                if (
                    int_gated
                    and e.op in ("+", "-", "*")
                    and lt in (SQLType.INT, SQLType.NULL)
                    and rt in (SQLType.INT, SQLType.NULL)
                ):
                    # Integer arithmetic: native targets silently promote
                    # an overflowing result to REAL. When the statically
                    # derived result interval cannot be proven within the
                    # dialect's bounds, compute exactly in Python instead
                    # (the UDF escapes to the row engine if the exact
                    # result itself exceeds the bounds).
                    li = int_interval(e.left) or int_bounds
                    ri = int_interval(e.right) or int_bounds
                    if not self._within_bounds(_arith_interval(e.op, li, ri)):
                        return ax.FuncExpr(_EXACT_ARITH_UDFS[e.op], (e.left, e.right))
                if e.op in ("/", "%"):
                    native = (
                        isinstance(e.right, ax.Const)
                        and not isinstance(e.right.value, bool)
                        and isinstance(e.right.value, (int, float))
                        and e.right.value != 0
                    )
                    if e.op == "%" and not (lt is SQLType.INT and rt is SQLType.INT):
                        native = False
                    if native and int_gated and e.op == "/" and e.right.value == -1:
                        # INT_MIN / -1 = -INT_MIN, the one in-range
                        # operand pair whose quotient escapes the bounds;
                        # route through the exact UDF unless the dividend
                        # provably avoids INT_MIN.
                        dividend = int_interval(e.left)
                        if dividend is None or dividend[0] <= self._int_min:
                            native = False
                    if not native:
                        return ax.FuncExpr("div" if e.op == "/" else "mod", (e.left, e.right))
            elif isinstance(e, ax.DistinctTest):
                lt, rt = static_type(e.left), static_type(e.right)
                if (lt is SQLType.BOOL) != (rt is SQLType.BOOL) and SQLType.NULL not in (lt, rt):
                    raise Unsupported("bool/non-bool IS DISTINCT FROM raises in-engine")
                if not _statically_comparable(lt, rt):
                    raise Unsupported(f"IS DISTINCT FROM over {lt}/{rt} raises in-engine")
            elif isinstance(e, ax.FuncExpr) and e.name not in ("div", "mod"):
                if any(static_type(a) is SQLType.BOOL for a in e.args):
                    # Most scalar functions reject booleans at runtime;
                    # through the mirror they would arrive as plain 0/1.
                    raise Unsupported(f"{e.name}() over a boolean argument")
            elif isinstance(e, ax.CaseExpr) and e.operand is not None:
                ot = static_type(e.operand)
                for when, _ in e.whens:
                    wt = static_type(when)
                    if (ot is SQLType.BOOL) != (wt is SQLType.BOOL) and SQLType.NULL not in (ot, wt):
                        raise Unsupported("CASE operand/WHEN bool mismatch")
                    if not _statically_comparable(ot, wt):
                        raise Unsupported("CASE operand/WHEN type mismatch")
            elif isinstance(e, ax.InListExpr):
                ot = static_type(e.operand)
                for item in e.items:
                    it = static_type(item)
                    if (ot is SQLType.BOOL) != (it is SQLType.BOOL) and SQLType.NULL not in (ot, it):
                        raise Unsupported("bool/non-bool IN list raises in-engine")
                    if not _statically_comparable(ot, it):
                        raise Unsupported("IN list type mismatch raises in-engine")
            return None

        return ax.map_expr(expr, gate)

    # ------------------------------------------------------------------
    # Sublinks
    # ------------------------------------------------------------------
    def _sublink(self, sub: ax.SubqueryExpr, schema: Schema) -> str:
        correlated = ax.plan_is_correlated(sub.plan)
        if sub.kind == "quant":
            raise Unsupported("quantified comparison (ANY/ALL) sublink")
        if not correlated:
            return self._uncorrelated_sublink(sub, schema)
        if sub.kind not in ("exists", "in"):
            # A correlated scalar sublink: SQL targets silently yield the
            # first row where the engine raises on multi-row results.
            raise Unsupported(f"correlated {sub.kind} sublink")
        self._validate_outer_refs(sub.plan, schema)
        saved_tree = self._current_tree
        self._scopes.append((schema, saved_tree))
        self._current_tree = _tree_names(sub.plan)
        try:
            inner = self._dispatch(sub.plan)
        except Unsupported:
            # No materialization point inside a correlated sublink.
            raise
        finally:
            self._scopes.pop()
            self._current_tree = saved_tree
        if sub.kind == "exists":
            prefix = "NOT " if sub.negated else ""
            return f"({prefix}EXISTS ({inner.sql}))"
        assert sub.operand is not None
        operand = self._expr(sub.operand, schema)
        alias = self._alias()
        value = q(sub.plan.schema[0].name)
        maybe_not = "NOT " if sub.negated else ""
        return (
            f"({operand} {maybe_not}IN "
            f"(SELECT {alias}.{value} FROM ({inner.sql}) AS {alias}))"
        )

    def _uncorrelated_sublink(self, sub: ax.SubqueryExpr, schema: Schema) -> str:
        """Evaluate once per execution with the row engine; surface the
        value through the slot UDF so an evaluation error (or multi-row
        scalar result) fires only if the statement actually evaluates
        the expression — matching the row engine's lazy
        uncorrelated-subquery cache."""
        plan = self.planner.plan(sub.plan)
        slot_id = self.backend.fresh_slot_id()
        if sub.kind == "scalar":
            self.slots.append(SubplanSlot("scalar", plan, slot_id=slot_id))
            return self.dialect.slot_expr(slot_id)
        if sub.kind == "exists":
            self.slots.append(
                SubplanSlot("exists", plan, slot_id=slot_id, negated=sub.negated)
            )
            return self.dialect.slot_expr(slot_id)
        if sub.kind == "in":
            assert sub.operand is not None
            frag = self.backend.fresh_fragment_name()
            self.slots.append(
                SubplanSlot("rows", plan, slot_id=slot_id, frag_table=frag)
            )
            operand = self._expr(sub.operand, schema)
            maybe_not = "NOT " if sub.negated else ""
            # The CASE guard evaluates the slot first: raises the stored
            # error if subplan evaluation failed, yields the IN result
            # (true/false/NULL) otherwise.
            return (
                f"(CASE WHEN {self.dialect.slot_expr(slot_id)} = 1 THEN "
                f"({operand} {maybe_not}IN "
                f"(SELECT c0 FROM {self.backend.fragment_source(frag)})) END)"
            )
        raise Unsupported(f"sublink kind {sub.kind!r}")

    def _validate_outer_refs(self, plan: an.Node, schema: Schema) -> None:
        """A pushed-down correlated sublink resolves outer references by
        *name* through the target's scoping rules; refuse pushdown
        whenever a name could bind to the wrong scope (shadowed by any
        relation the resolution path crosses)."""
        plan_names = _tree_names(plan)
        # Scopes outward from the sublink: level 1 is the holder's input.
        scopes_out: list[tuple[set[str], set[str]]] = [
            ({a.name.lower() for a in schema}, self._current_tree)
        ]
        scopes_out += [
            ({a.name.lower() for a in s}, tree) for s, tree in reversed(self._scopes)
        ]
        for level in range(1, len(scopes_out) + 2):
            names = {n.lower() for n in ax._outer_columns_of_plan(plan, level)}
            if not names:
                continue
            if level > len(scopes_out):
                raise Unsupported("correlated reference beyond available scopes")
            target_names, _ = scopes_out[level - 1]
            shadows = set(plan_names)
            for schema_names, tree_names in scopes_out[: level - 1]:
                shadows |= schema_names | tree_names
            for name in names:
                if name not in target_names:
                    raise Unsupported(f"outer reference {name!r} not in target scope")
                if name in shadows:
                    raise Unsupported(f"outer reference {name!r} shadowed on pushdown")


#: Historic name — the compiler predates the backend registry.
SQLiteCompiler = PushdownCompiler


def _statically_comparable(a: SQLType, b: SQLType) -> bool:
    numeric = (SQLType.INT, SQLType.FLOAT)
    if a is SQLType.NULL or b is SQLType.NULL:
        return True
    if a in numeric and b in numeric:
        return True
    return a is b


def _order_realized(node: an.Node) -> bool:
    """Whether the compiled SQL for *node* is physically scanned in its
    ordinal order, making order-sensitive (float) aggregation above it
    safe: table scans walk the mirror's ordinal, LIMIT subqueries carry
    an inner ORDER BY, single-row subqueries are trivially ordered;
    filters and projections never reorder."""
    while isinstance(node, an.BaseRelationNode):
        node = node.child
    if isinstance(node, (an.Scan, an.SingleRow, an.Limit)):
        return True
    if isinstance(node, an.Aggregate) and not node.group_items:
        return True
    if isinstance(node, _ORDER_PRESERVING):
        return _order_realized(node.child)
    return False


def _tree_names(node: an.Node) -> set[str]:
    """Lowercased attribute names appearing anywhere in *node*'s tree."""
    names: set[str] = set()
    for part in walk_tree(node):
        names.update(a.name.lower() for a in part.schema)
    return names


def compile_pushdown_plan(planner: "Planner", backend: MirrorAdapter, node: an.Node):
    """Compile *node* for a pushdown backend (entry point for the
    planner); returns the backend's query operator or, when nothing at
    all can be pushed down, the equivalent row-engine plan."""
    return PushdownCompiler(planner, backend).compile_root(node)


#: Historic name for :func:`compile_pushdown_plan`.
compile_sqlite_plan = compile_pushdown_plan
