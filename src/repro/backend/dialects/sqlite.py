"""SQL executable by ``sqlite3``.

Booleans become 0/1 (SQLite has no boolean storage class; the backend
converts results back using the plan's static types). Scalar functions,
CAST and LIKE go through ``repro_*`` UDFs the backend registers, so
every value — including raised execution errors — matches the row
engine bit for bit. Sublinks are handled by the plan compiler
(:mod:`repro.backend.compile`), which installs itself via
``subquery_renderer``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...datatypes import SQLType, Value
from ...errors import PermError
from ...algebra.expressions import Param, SubqueryExpr
from .base import Dialect, quote_identifier_always

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


class SQLiteDialect(Dialect):
    """The pushdown dialect for the embedded ``sqlite3`` mirror."""

    name = "sqlite"

    type_names = {
        SQLType.INT: "INTEGER",
        SQLType.FLOAT: "REAL",
        SQLType.TEXT: "TEXT",
        SQLType.BOOL: "INTEGER",
        SQLType.NULL: "BLOB",
    }

    #: Prefix under which the backend registers its exact-semantics UDFs.
    udf_prefix = "repro_"

    #: SQLite integers are 64-bit; wider values escape to the row engine.
    integer_bounds = (INT64_MIN, INT64_MAX)

    def __init__(
        self, subquery_renderer: Optional[Callable[[SubqueryExpr], str]] = None
    ):
        self.subquery_renderer = subquery_renderer

    def identifier(self, name: str) -> str:
        # Always quote: bare lowercase names can hit SQLite keywords.
        return quote_identifier_always(name)

    def literal(self, value: Value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(value)

    def param(self, expr: Param) -> str:
        # Slot-ordered named parameters; the backend binds values from
        # the shared ParamContext under these names per execution.
        return f":p{expr.index}"

    def function(self, name: str, args: list[str]) -> str:
        return f"{self.udf_prefix}{name}({', '.join(args)})"

    def cast(self, operand: str, target: SQLType) -> str:
        # SQLite CAST semantics differ ('abc' -> 0, no bool); the UDFs
        # wrap repro.datatypes.cast_value for exact behavior.
        return f"{self.udf_prefix}cast_{target.name.lower()}({operand})"

    def like(self, left: str, right: str, case_insensitive: bool) -> str:
        # SQLite's native LIKE is case-insensitive for ASCII; the UDF
        # reproduces the engine's case-sensitive regex LIKE exactly.
        udf = "ilike" if case_insensitive else "like"
        return f"{self.udf_prefix}{udf}({left}, {right})"

    def distinct_test(self, left: str, right: str, negated: bool) -> str:
        # SQLite's IS / IS NOT *is* the null-safe comparison.
        op = "IS" if negated else "IS NOT"
        return f"({left} {op} {right})"

    def subquery(self, expr: SubqueryExpr) -> str:
        if self.subquery_renderer is None:
            raise PermError(
                "sublink rendering for the sqlite dialect requires the "
                "backend plan compiler (repro.backend.compile)"
            )
        return self.subquery_renderer(expr)
