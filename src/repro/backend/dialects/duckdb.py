"""DuckDB pushdown dialect (optional).

DuckDB speaks near-PostgreSQL SQL: ``IS [NOT] DISTINCT FROM`` exists,
its BIGINT is 64-bit (overflow *raises* instead of promoting to REAL,
so the same interval-gated exact-arithmetic rewrites apply), and Python
scalar UDFs register through ``duckdb.create_function``. Everything
engine-exact still routes through registered ``repro_*`` UDFs, exactly
like the SQLite dialect, because DuckDB's native CAST/LIKE/division
semantics differ from the engine's.

This module intentionally does not import :mod:`duckdb`: the dialect is
pure string rendering, and the matching backend registration
(:mod:`repro.backend.registry`) is gated on the module's availability —
in environments without DuckDB the engine simply is not registered.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...datatypes import SQLType, Value
from ...errors import PermError
from ...algebra.expressions import Param, SubqueryExpr
from .base import Dialect, quote_identifier_always
from .sqlite import INT64_MAX, INT64_MIN


class DuckDBDialect(Dialect):
    """The pushdown dialect for an embedded DuckDB mirror."""

    name = "duckdb"

    type_names = {
        SQLType.INT: "BIGINT",
        SQLType.FLOAT: "DOUBLE",
        SQLType.TEXT: "VARCHAR",
        SQLType.BOOL: "BOOLEAN",
        SQLType.NULL: "VARCHAR",
    }

    udf_prefix = "repro_"

    #: DuckDB BIGINT is 64-bit; wider values escape to the row engine.
    integer_bounds = (INT64_MIN, INT64_MAX)

    def __init__(
        self, subquery_renderer: Optional[Callable[[SubqueryExpr], str]] = None
    ):
        self.subquery_renderer = subquery_renderer

    def identifier(self, name: str) -> str:
        return quote_identifier_always(name)

    def literal(self, value: Value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(value)

    def param(self, expr: Param) -> str:
        # DuckDB's named-parameter syntax ($name) over the shared slot
        # numbering; the backend binds the same p{index} labels.
        return f"$p{expr.index}"

    def function(self, name: str, args: list[str]) -> str:
        return f"{self.udf_prefix}{name}({', '.join(args)})"

    def cast(self, operand: str, target: SQLType) -> str:
        return f"{self.udf_prefix}cast_{target.name.lower()}({operand})"

    def like(self, left: str, right: str, case_insensitive: bool) -> str:
        udf = "ilike" if case_insensitive else "like"
        return f"{self.udf_prefix}{udf}({left}, {right})"

    def bind_label(self, name: str) -> str:
        return f"${name}"

    def limit_all(self) -> str:
        # DuckDB rejects LIMIT -1; int64 max is effectively "all".
        return f"LIMIT {INT64_MAX}"

    def subquery(self, expr: SubqueryExpr) -> str:
        if self.subquery_renderer is None:
            raise PermError(
                "sublink rendering for the duckdb dialect requires the "
                "backend plan compiler (repro.backend.compile)"
            )
        return self.subquery_renderer(expr)
