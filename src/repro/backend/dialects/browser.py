"""The engine's own SQL dialect: what :mod:`repro.sql.parser` reads and
the Perm browser displays (Figure 4, marker 2)."""

from __future__ import annotations

from ...datatypes import SQLType, Value
from ...errors import PermError
from ...algebra.expressions import Param, SubqueryExpr
from .base import Dialect, expr_to_sql


class BrowserDialect(Dialect):
    """SQL in this engine's own dialect, re-parseable by the parser."""

    name = "browser"

    type_names = {
        SQLType.INT: "int",
        SQLType.FLOAT: "float",
        SQLType.TEXT: "text",
        SQLType.BOOL: "bool",
        SQLType.NULL: "text",
    }

    def literal(self, value: Value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(value)

    def param(self, expr: Param) -> str:
        # Re-parseable placeholder syntax (named slots keep their name).
        return f":{expr.name}" if expr.name is not None else "?"

    def function(self, name: str, args: list[str]) -> str:
        return f"{name}({', '.join(args)})"

    def like(self, left: str, right: str, case_insensitive: bool) -> str:
        op = "ILIKE" if case_insensitive else "LIKE"
        return f"({left} {op} {right})"

    def subquery(self, expr: SubqueryExpr) -> str:
        # Imported lazily: the algebra deparser itself renders scalars
        # through this dialect, so a module-level import would cycle.
        from ...algebra.to_sql import algebra_to_sql

        inner = algebra_to_sql(expr.plan, pretty=False)
        if expr.kind == "scalar":
            return f"({inner})"
        if expr.kind == "exists":
            prefix = "NOT " if expr.negated else ""
            return f"({prefix}EXISTS ({inner}))"
        if expr.kind == "in":
            assert expr.operand is not None
            maybe_not = "NOT " if expr.negated else ""
            return f"({expr_to_sql(expr.operand, self)} {maybe_not}IN ({inner}))"
        if expr.kind == "quant":
            assert expr.operand is not None and expr.op and expr.quantifier
            return (
                f"({expr_to_sql(expr.operand, self)} {expr.op} "
                f"{expr.quantifier.upper()} ({inner}))"
            )
        raise PermError(f"unknown sublink kind {expr.kind!r}")


BROWSER_DIALECT = BrowserDialect()
