"""The :class:`Dialect` interface: everything that differs between SQL
targets, behind one object.

A dialect bundles two layers of knobs:

* *Scalar rendering* — identifiers, literals, parameter placeholders,
  function/cast/LIKE spelling, sublinks. This is what the algebra
  deparser (:func:`expr_to_sql`) consumes for every target.
* *Pushdown hooks* — the points where the generic plan compiler
  (:mod:`repro.backend.compile`) must diverge per engine without naming
  any engine: how a null-safe comparison is spelled
  (:meth:`distinct_test`), how scalar UDFs and the sublink side channel
  are addressed (:attr:`udf_prefix`, :meth:`udf_name`,
  :meth:`slot_expr`), and the integer-interval gate bounds
  (:attr:`integer_bounds`) driving the exact-arithmetic rewrites.

Concrete dialects: :class:`~repro.backend.dialects.browser
.BrowserDialect` (the engine's own SQL, re-parseable),
:class:`~repro.backend.dialects.sqlite.SQLiteDialect` (executable by
``sqlite3``), and the optional :class:`~repro.backend.dialects.duckdb
.DuckDBDialect`. Third-party backends subclass :class:`Dialect` and
register through :func:`repro.backend.register`.
"""

from __future__ import annotations

from typing import Optional

from ...datatypes import SQLType, Value
from ...algebra.expressions import (
    AggExpr,
    BinOp,
    CaseExpr,
    CastExpr,
    Column,
    Const,
    DistinctTest,
    Expr,
    FuncExpr,
    InListExpr,
    IsNullTest,
    OuterColumn,
    Param,
    SubqueryExpr,
    UnOp,
)

_BARE = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def quote_identifier(name: str) -> str:
    """Quote *name* only when a bare spelling would be ambiguous."""
    if name and all(c in _BARE for c in name) and not name[0].isdigit():
        return name
    return '"' + name.replace('"', '""') + '"'


def quote_identifier_always(name: str) -> str:
    """Unconditionally quote *name* — required for SQLite/DuckDB, whose
    keyword lists (CASE, ORDER, ...) would collide with bare aliases."""
    return '"' + name.replace('"', '""') + '"'


class Dialect:
    """Scalar-rendering and pushdown knobs that differ between targets."""

    name = "abstract"

    #: SQL spellings of the static types (CAST targets, typed NULLs).
    type_names: dict[SQLType, str] = {}

    #: Prefix under which the backend registers exact-semantics UDFs
    #: (empty for dialects that use plain function names).
    udf_prefix = ""

    #: Inclusive bounds of the target's native integer type, or ``None``
    #: when its integers are unbounded. The plan compiler's static
    #: interval analysis gates every integer ``+``/``-``/``*``/``-x`` on
    #: these bounds, rewriting unprovable arithmetic to the exact UDFs.
    integer_bounds: Optional[tuple[int, int]] = None

    def identifier(self, name: str) -> str:
        return quote_identifier(name)

    def literal(self, value: Value) -> str:
        raise NotImplementedError

    def typed_null(self, type_: SQLType) -> str:
        return f"CAST(NULL AS {self.type_names[type_]})"

    def param(self, expr: Param) -> str:
        raise NotImplementedError

    def function(self, name: str, args: list[str]) -> str:
        raise NotImplementedError

    def udf_name(self, name: str) -> str:
        """The callable name of the backend-registered UDF *name*."""
        return f"{self.udf_prefix}{name}"

    def cast(self, operand: str, target: SQLType) -> str:
        return f"CAST({operand} AS {self.type_names[target]})"

    def like(self, left: str, right: str, case_insensitive: bool) -> str:
        raise NotImplementedError

    def distinct_test(self, left: str, right: str, negated: bool) -> str:
        """Render the null-safe comparison ``left IS [NOT] DISTINCT FROM
        right``. Dialects without the standard spelling override this
        (SQLite's bare ``IS`` / ``IS NOT`` *is* the null-safe form)."""
        maybe_not = " NOT" if negated else ""
        return f"({left} IS{maybe_not} DISTINCT FROM {right})"

    def bind_label(self, name: str) -> str:
        """Placeholder spelling of the named bind parameter *name*
        (LIMIT/OFFSET counts evaluated per execution)."""
        return f":{name}"

    def limit_all(self) -> str:
        """The LIMIT clause meaning "no limit" (needed when an OFFSET
        follows without a LIMIT)."""
        return "LIMIT -1"

    def slot_expr(self, slot_id: int) -> str:
        """Render the sublink side-channel access for *slot_id* (the
        compiled statement's handle on lazily evaluated uncorrelated
        sublinks; see :class:`repro.backend.runtime.SubplanSlot`)."""
        return f"{self.udf_prefix}slot({slot_id})"

    def subquery(self, expr: SubqueryExpr) -> str:
        """Render a sublink. Dialects that cannot inline arbitrary
        subplans (SQLite) override this to delegate or refuse."""
        raise NotImplementedError


#: Historic name — the interface predates the backend registry.
SqlDialect = Dialect


def expr_to_sql(expr: Expr, dialect: Optional[Dialect] = None) -> str:
    """Render a resolved expression as SQL text in *dialect* (the
    browser dialect when none is given)."""
    if dialect is None:
        from .browser import BROWSER_DIALECT

        dialect = BROWSER_DIALECT
    if isinstance(expr, Column):
        return dialect.identifier(expr.name)
    if isinstance(expr, OuterColumn):
        # Correlated reference: rendered as a bare name; the enclosing
        # query exposes it (display + re-parse inside the right scope).
        return dialect.identifier(expr.name)
    if isinstance(expr, Const):
        if expr.value is None and expr.type is not SQLType.NULL:
            return dialect.typed_null(expr.type)
        return dialect.literal(expr.value)
    if isinstance(expr, Param):
        return dialect.param(expr)
    if isinstance(expr, BinOp):
        if expr.op in ("like", "ilike"):
            return dialect.like(
                expr_to_sql(expr.left, dialect),
                expr_to_sql(expr.right, dialect),
                expr.op == "ilike",
            )
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        return f"({expr_to_sql(expr.left, dialect)} {op} {expr_to_sql(expr.right, dialect)})"
    if isinstance(expr, UnOp):
        if expr.op == "not":
            return f"(NOT {expr_to_sql(expr.operand, dialect)})"
        return f"({expr.op}{expr_to_sql(expr.operand, dialect)})"
    if isinstance(expr, IsNullTest):
        maybe_not = " NOT" if expr.negated else ""
        return f"({expr_to_sql(expr.operand, dialect)} IS{maybe_not} NULL)"
    if isinstance(expr, DistinctTest):
        return dialect.distinct_test(
            expr_to_sql(expr.left, dialect),
            expr_to_sql(expr.right, dialect),
            expr.negated,
        )
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(expr_to_sql(expr.operand, dialect))
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {expr_to_sql(condition, dialect)} "
                f"THEN {expr_to_sql(result, dialect)}"
            )
        if expr.else_result is not None:
            parts.append(f"ELSE {expr_to_sql(expr.else_result, dialect)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, FuncExpr):
        return dialect.function(expr.name, [expr_to_sql(a, dialect) for a in expr.args])
    if isinstance(expr, CastExpr):
        return dialect.cast(expr_to_sql(expr.operand, dialect), expr.target)
    if isinstance(expr, InListExpr):
        maybe_not = "NOT " if expr.negated else ""
        items = ", ".join(expr_to_sql(i, dialect) for i in expr.items)
        return f"({expr_to_sql(expr.operand, dialect)} {maybe_not}IN ({items}))"
    if isinstance(expr, AggExpr):
        if expr.arg is None:
            return f"{expr.func}(*)"
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.func}({distinct}{expr_to_sql(expr.arg, dialect)})"
    if isinstance(expr, SubqueryExpr):
        return dialect.subquery(expr)
    raise TypeError(f"cannot deparse expression {type(expr).__name__}")
