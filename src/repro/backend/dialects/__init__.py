"""SQL dialects behind the :class:`~repro.backend.dialects.base.Dialect`
interface.

One dialect per SQL target: the browser dialect (the engine's own SQL,
shown in the Perm browser and re-parseable), the SQLite pushdown
dialect, and the optional DuckDB pushdown dialect. The generic plan
compiler (:mod:`repro.backend.compile`) is parameterized by a dialect
plus a :class:`~repro.backend.runtime.MirrorAdapter`; adding an engine
means providing those two objects and registering them
(:func:`repro.backend.register`) — not forking the compiler.
"""

from .base import (  # noqa: F401
    Dialect,
    SqlDialect,
    expr_to_sql,
    quote_identifier,
    quote_identifier_always,
)
from .browser import BROWSER_DIALECT, BrowserDialect  # noqa: F401
from .duckdb import DuckDBDialect  # noqa: F401
from .sqlite import SQLiteDialect  # noqa: F401
