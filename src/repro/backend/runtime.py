"""Backend-agnostic pushdown runtime.

The pushdown architecture (the paper's: rewrite the query tree, hand one
SQL statement to a conventional DBMS) splits per backend into three
pieces with distinct responsibilities:

* a :class:`~repro.backend.dialects.base.Dialect` — pure SQL string
  rendering (quoting, literals, parameter syntax, UDF naming);
* a :class:`MirrorAdapter` (this module) — the stateful half: owns the
  target DBMS connection, mirrors heap tables into it, registers the
  exact-semantics UDFs, materializes fallback fragments, and runs
  statements;
* the shared plan compiler (:mod:`repro.backend.compile`) — one
  implementation of the ordering channel, the fallback machinery and
  the integer gates, parameterized by the two objects above.

This module holds the adapter interface and everything the compiled
plans need at *execution* time regardless of target: the
:class:`PushdownQueryOp` physical operator, subplan slots, limit binds,
and the :class:`IntegerRangeEscape` rescue protocol.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from ..catalog.schema import Schema
from ..datatypes import SQLType, Value
from ..errors import ExecutionError
from ..executor.expr_eval import CompiledExpr, Env, ParamContext, Row
from ..executor.iterators import PhysicalOp, evaluate_limit_count

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog.catalog import Catalog
    from .dialects.base import Dialect


class IntegerRangeEscape(Exception):
    """A value crossed the target DBMS's integer boundary mid-statement.

    The engine's integers are unbounded Python ints; pushdown targets
    hold 64-bit integers. Rather than diverging (silent REAL promotion)
    or erroring (the row engine computes these queries fine), every
    place a too-wide integer can enter or leave a pushed-down statement
    raises this escape — UDF/aggregate return values, parameter and
    fragment binds, mirror sync of stored big integers, native ``sum()``
    overflow — and :class:`PushdownQueryOp` re-runs the whole query on
    the row engine, whose exact arbitrary-precision result is returned
    instead. Internal control flow only: it must never surface to users.
    """


def adapt_value(value: Value) -> Value:
    """Python -> mirror storage: booleans become 1/0, the rest maps
    directly (the convention every current adapter shares)."""
    if isinstance(value, bool):
        return int(value)
    return value


def adapt_row(row: Row) -> Row:
    return tuple(int(v) if isinstance(v, bool) else v for v in row)


class SubplanSlot:
    """One execution-time obligation of a compiled statement.

    Three kinds, all evaluated by the row engine immediately before the
    SQL statement runs (sublink subplans always use the row engine, the
    same policy the vectorized engine follows):

    * ``"rows"`` — a fallback subtree (or IN-sublink value list): the
      row plan's output is loaded into a temp-schema fragment table the
      statement reads from;
    * ``"scalar"`` — an uncorrelated scalar sublink: its single value
      (or the row engine's multi-row error);
    * ``"exists"`` — an uncorrelated EXISTS sublink: 1/0 with the
      negation already applied.

    Sublink slots (``slot_id`` set) surface through the slot UDF
    (:meth:`Dialect.slot_expr`) rather than plain bound parameters, so
    an error raised while evaluating the subplan fires only if the
    statement actually evaluates the expression — exactly like the row
    engine's lazy uncorrelated-subquery cache (an empty outer relation
    never touches the sublink on any engine). Fragment slots for
    fallback *subtrees* (``slot_id`` None) are data sources the
    statement always scans, so their errors raise immediately.
    """

    __slots__ = ("kind", "plan", "slot_id", "negated", "frag_table")

    def __init__(
        self,
        kind: str,
        plan: PhysicalOp,
        slot_id: Optional[int] = None,
        negated: bool = False,
        frag_table: Optional[str] = None,
    ):
        self.kind = kind
        self.plan = plan
        self.slot_id = slot_id
        self.negated = negated
        self.frag_table = frag_table


class LimitBind:
    """A LIMIT/OFFSET expression evaluated per execution and bound as a
    named parameter (reusing the row engine's evaluation and errors)."""

    __slots__ = ("bind_name", "compiled", "what")

    def __init__(self, bind_name: str, compiled: Optional[CompiledExpr], what: str):
        self.bind_name = bind_name
        self.compiled = compiled
        self.what = what


class MirrorAdapter:
    """The stateful half of a pushdown backend: one mirror database.

    Subclasses own a connection to the target DBMS, keep its tables in
    sync with the engine's heap tables, and execute compiled statements.
    The contract the shared compiler and :class:`PushdownQueryOp`
    depend on:

    * :meth:`sync_table` — bring the mirror of a catalog table up to
      date (keyed on snapshot identity; must raise
      :class:`IntegerRangeEscape` for values the target cannot hold).
    * :meth:`scan_source` / :meth:`scan_ordinal` — how a base-table
      scan is spelled and which hidden column yields the engine's heap
      order (``None`` if no such column can be exposed).
    * :meth:`materialize_fragment` / :meth:`fragment_source` /
      :meth:`drop_fragment` — row-engine fallback fragments; fragment
      tables must expose ``rowid`` in insertion order.
    * :meth:`run_statement` — execute one statement; must translate
      UDF-side-channel errors back to the original exception and map
      integer-range conditions to :class:`IntegerRangeEscape`.
    * :meth:`dialect` — a fresh rendering dialect, optionally wired to
      the compiler's sublink renderer; :attr:`dialect_class` exposes
      static facts (integer bounds, UDF prefix) without an instance.
    * :meth:`make_query_op` — wrap a compiled statement in this
      backend's physical operator (:class:`PushdownQueryOp` unless the
      backend overrides execution).
    * :attr:`supports_full_join` / :attr:`native_float_agg` —
      capability flags the compiler's gates consult.

    The base class provides the generic bookkeeping every adapter
    shares: fragment/slot id allocation, the slot-state table the slot
    UDF reads, the pending-error side channel, and counters.
    """

    #: Dialect class for this adapter (static facts; no instance needed).
    dialect_class: type = None  # type: ignore[assignment]

    #: Whether the target can run RIGHT/FULL OUTER JOIN natively.
    supports_full_join = False

    #: Whether native sum()/avg() accumulates naively left-to-right
    #: (bit-identical to the engine); otherwise the compiler routes
    #: float aggregation through the naive aggregate UDFs.
    native_float_agg = False

    def __init__(self, catalog: "Catalog"):
        self.catalog = catalog
        self._frag_names = count()
        self._slot_ids = count()
        # slot id -> ("ok", value) | ("error", exception); installed by
        # the executing PushdownQueryOp, read by the slot UDF.
        self._slot_states: dict[int, tuple[str, object]] = {}
        self._pending_error: Optional[BaseException] = None
        self.statements_executed = 0
        self.tables_synced = 0

    # -- identifiers ---------------------------------------------------
    def fresh_fragment_name(self) -> str:
        return f"_frag_{next(self._frag_names)}"

    def fresh_slot_id(self) -> int:
        return next(self._slot_ids)

    def _read_slot(self, args):
        kind, payload = self._slot_states[args[0]]
        if kind == "error":
            raise payload  # re-raised with type+message via the channel
        return payload

    # -- rendering -----------------------------------------------------
    def dialect(self, subquery_renderer=None) -> "Dialect":
        """A fresh dialect instance for rendering one statement."""
        return self.dialect_class(subquery_renderer)

    # -- contract points (subclass responsibilities) -------------------
    def sync_table(self, name: str) -> None:
        raise NotImplementedError

    def scan_source(self, table_key: str) -> str:
        """FROM-clause spelling of the mirror of catalog table
        *table_key* (already lowercased)."""
        raise NotImplementedError

    def scan_ordinal(self, columns: Sequence[str]) -> Optional[str]:
        """The hidden column of a mirrored table that yields the
        engine's heap order (*columns* are the scan's stored column
        names, for collision avoidance), or ``None`` when the target
        cannot expose one — the compiler then refuses the scan."""
        raise NotImplementedError

    def materialize_fragment(self, frag: str, rows: list[Row], width: int) -> None:
        raise NotImplementedError

    def fragment_source(self, frag: str) -> str:
        """FROM-clause spelling of fragment table *frag*."""
        raise NotImplementedError

    def drop_fragment(self, frag: str) -> None:
        raise NotImplementedError

    def run_statement(self, sql: str, binds: dict[str, Value]) -> list[Row]:
        raise NotImplementedError

    def make_query_op(
        self,
        sql: str,
        schema: Schema,
        table_names: Sequence[str],
        slots: Sequence["SubplanSlot"],
        limit_binds: Sequence["LimitBind"],
        param_labels: dict[int, str],
        params: ParamContext,
        rescue_planner=None,
        rescue_node=None,
    ) -> "PushdownQueryOp":
        return PushdownQueryOp(
            self,
            sql,
            schema,
            table_names,
            slots,
            limit_binds,
            param_labels,
            params,
            rescue_planner=rescue_planner,
            rescue_node=rescue_node,
        )

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class PushdownQueryOp(PhysicalOp):
    """A compiled pushdown statement as a physical plan.

    ``rows(env)`` (the executor contract) syncs the mirrored base
    tables, evaluates sublink/fallback slots with the row engine, binds
    parameters from the shared :class:`ParamContext`, runs the single
    SQL statement, and adapts values back (0/1 -> bool per the static
    output schema).
    """

    __slots__ = (
        "backend",
        "sql",
        "table_names",
        "slots",
        "limit_binds",
        "param_labels",
        "params",
        "_bool_columns",
        "_rescue_planner",
        "_rescue_node",
        "_rescue_plan",
    )

    def __init__(
        self,
        backend: MirrorAdapter,
        sql: str,
        schema: Schema,
        table_names: Sequence[str],
        slots: Sequence[SubplanSlot],
        limit_binds: Sequence[LimitBind],
        param_labels: dict[int, str],
        params: ParamContext,
        rescue_planner=None,
        rescue_node=None,
    ):
        self.backend = backend
        self.sql = sql
        self.schema = schema
        self.table_names = tuple(table_names)
        self.slots = tuple(slots)
        self.limit_binds = tuple(limit_binds)
        self.param_labels = dict(param_labels)
        self.params = params
        self._bool_columns = tuple(
            i for i, a in enumerate(schema) if a.type is SQLType.BOOL
        )
        # Exact-integer rescue: when execution raises
        # IntegerRangeEscape (a value crossed the int64 boundary), the
        # original algebra tree is planned on the row engine — lazily,
        # once — and its exact result returned instead. The row plan
        # shares this op's ParamContext, so per-execution parameter
        # values flow through unchanged.
        self._rescue_planner = rescue_planner
        self._rescue_node = rescue_node
        self._rescue_plan: Optional[PhysicalOp] = None

    # ------------------------------------------------------------------
    def rows(self, env: Env) -> Iterator[Row]:
        return iter(self._execute(env))

    def _execute(self, env: Env) -> list[Row]:
        try:
            for name in self.table_names:
                self.backend.sync_table(name)
        except IntegerRangeEscape:
            return self._rescue(env)

        binds = self._bind_params(env)
        try:
            for slot in self.slots:
                self._evaluate_slot(slot, env)
            raw = self.backend.run_statement(self.sql, binds)
        except IntegerRangeEscape:
            return self._rescue(env)
        finally:
            self._release_slots()
        return self._adapt(raw)

    def _bind_params(self, env: Env) -> dict[str, Value]:
        binds: dict[str, Value] = {}
        values = self.params.values
        for index, label in self.param_labels.items():
            if index >= len(values):
                raise ExecutionError(
                    f"parameter {label} has no bound value ({len(values)} bound)"
                )
            binds[f"p{index}"] = adapt_value(values[index])
        for bind in self.limit_binds:
            value = evaluate_limit_count(bind.compiled, env, bind.what)
            if value is None:
                value = -1 if bind.what == "LIMIT" else 0
            binds[bind.bind_name] = value
        return binds

    def _rescue(self, env: Env) -> list[Row]:
        """Re-run the whole query on the row engine after an integer
        crossed the int64 boundary. Row-engine rows are already in
        engine-native values (real booleans, unbounded ints), so they
        bypass :meth:`_adapt`."""
        if self._rescue_planner is None or self._rescue_node is None:
            raise ExecutionError(
                "pushdown backend: integer beyond the 64-bit range with no "
                "row-engine rescue plan available"
            )
        plan = self._rescue_plan
        if plan is None:
            plan = self._rescue_planner.plan(self._rescue_node)
            self._rescue_plan = plan
        return list(plan.rows(env))

    def _release_slots(self) -> None:
        """Drop per-execution slot state so a long-lived connection does
        not accumulate fragment rows and stored exceptions across the
        distinct queries it has ever run."""
        for slot in self.slots:
            if slot.slot_id is not None:
                self.backend._slot_states.pop(slot.slot_id, None)
            if slot.frag_table is not None:
                self.backend.drop_fragment(slot.frag_table)

    def _evaluate_slot(self, slot: SubplanSlot, env: Env) -> None:
        """Run one slot's row plan. Sublink slots store their value —
        or the exception — for the slot UDF, so errors fire only if the
        statement evaluates the expression; fallback-subtree fragments
        (no slot id) are unconditional sources and raise now."""
        states = self.backend._slot_states
        if slot.kind == "rows":
            assert slot.frag_table is not None
            width = len(slot.plan.schema)
            if slot.slot_id is None:
                rows = list(slot.plan.rows(env))
                self.backend.materialize_fragment(slot.frag_table, rows, width)
                return
            try:
                rows = list(slot.plan.rows(env))
            except Exception as exc:  # noqa: BLE001 - deferred to evaluation
                self.backend.materialize_fragment(slot.frag_table, [], width)
                states[slot.slot_id] = ("error", exc)
                return
            self.backend.materialize_fragment(slot.frag_table, rows, width)
            states[slot.slot_id] = ("ok", 1)
            return
        assert slot.slot_id is not None
        try:
            if slot.kind == "scalar":
                rows = list(slot.plan.rows(env))
                if len(rows) > 1:
                    raise ExecutionError("scalar subquery returned more than one row")
                value = adapt_value(rows[0][0]) if rows else None
            elif slot.kind == "exists":
                found = next(iter(slot.plan.rows(env)), None) is not None
                value = int((not found) if slot.negated else found)
            else:  # pragma: no cover - compiler emits only the kinds above
                raise ExecutionError(f"unknown subplan slot kind {slot.kind!r}")
        except Exception as exc:  # noqa: BLE001 - deferred to evaluation
            states[slot.slot_id] = ("error", exc)
            return
        states[slot.slot_id] = ("ok", value)

    def _adapt(self, raw: list[Row]) -> list[Row]:
        if not self._bool_columns:
            return raw
        bool_columns = self._bool_columns
        adapted = []
        for row in raw:
            out = list(row)
            for i in bool_columns:
                if out[i] is not None:
                    out[i] = bool(out[i])
            adapted.append(tuple(out))
        return adapted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {len(self.sql)} chars, "
            f"{len(self.slots)} slot(s)>"
        )
