"""Pushdown execution backends.

The paper's Perm prototype executes provenance-rewritten query trees by
deparsing them to SQL and handing them to a conventional DBMS
(PostgreSQL). This package reproduces that architecture: compiled plans
run inside an embedded ``sqlite3`` database mirroring the engine's
catalog, selected with ``repro.connect(engine="sqlite")``.
"""

from .compile import SQLiteCompiler, Unsupported, compile_sqlite_plan  # noqa: F401
from .sqlite import SQLiteBackend, SQLiteQueryOp  # noqa: F401
