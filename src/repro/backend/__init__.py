"""Pushdown execution backends.

The paper's Perm prototype executes provenance-rewritten query trees by
deparsing them to SQL and handing them to a conventional DBMS
(PostgreSQL). This package reproduces that architecture: compiled plans
run inside an embedded mirror database, selected with
``repro.connect(engine="sqlite")`` (or ``"sqlite-partition"``,
``"duckdb"``, ...).

Backends are pluggable. A backend is three objects behind two
interfaces —

* a :class:`~repro.backend.dialects.base.Dialect` (how SQL is spelled),
* a :class:`~repro.backend.runtime.MirrorAdapter` (how tables are
  mirrored and statements run),
* a :class:`BackendSpec` tying them into the planner,

— registered through :func:`register`. The shared plan compiler
(:mod:`repro.backend.compile`) provides the ordering channel, fallback
machinery and exact-integer gates once, for every backend.

This module stays import-light: the registry loads eagerly (engine
validation must know the names), while the sqlite/duckdb/partition
modules — and their connections — load only when first used.
"""

from .registry import (  # noqa: F401
    BackendSpec,
    backend_specs,
    differential_engines,
    engine_names,
    get_spec,
    register,
    register_builtins,
    unknown_engine_message,
    unregister,
)

register_builtins()

# Heavier names, resolved lazily (PEP 562) to keep `import repro` from
# touching sqlite3 and to preserve the historic import surface.
_LAZY = {
    "SQLiteCompiler": "compile",
    "PushdownCompiler": "compile",
    "Unsupported": "compile",
    "compile_sqlite_plan": "compile",
    "compile_pushdown_plan": "compile",
    "SQLiteBackend": "sqlite",
    "SQLiteQueryOp": "sqlite",
    "MirrorAdapter": "runtime",
    "PushdownQueryOp": "runtime",
    "IntegerRangeEscape": "runtime",
    "SubplanSlot": "runtime",
    "LimitBind": "runtime",
    "PartitionedSQLiteBackend": "partition",
    "PartitionedQueryOp": "partition",
    "resolve_shard_count": "partition",
    "Dialect": "dialects",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
