"""Hash-partitioned parallel SQLite backend (``engine="sqlite-partition"``).

The registry's proof that pushdown backends are genuinely pluggable: a
backend assembled entirely from the public contract — the
:class:`~repro.backend.dialects.sqlite.SQLiteDialect`, the
:class:`~repro.backend.runtime.MirrorAdapter` mirror hooks, and the
shared plan compiler — without touching any of them.

Architecture
------------

Every heap table is mirrored *N* ways: shard *i* holds the rows whose
global heap position satisfies ``pos % N == i``, stored together with
that position in a hidden ``#pos`` column. The shard adapter
(:class:`_ShardBackend`) is the stock SQLite backend with exactly three
hooks overridden: mirror columns (append ``#pos``), mirror rows (filter
the slice, append the position) and the scan ordinal (``#pos`` instead
of rowid). Because ``#pos`` is the *global* heap position, ordinals
taken from different shards stay mutually comparable — the whole
ordering channel works across shards unchanged.

A query is *partitioned* when it is a single-table pipeline
(Select/Project chains over one Scan, no sublinks) topped by an
Aggregate, a Distinct or a Sort (optionally under a pure-column
projection). The pipeline is compiled **once** through the shared
:class:`~repro.backend.compile.PushdownCompiler` against shard 0 — the
same statement text runs on every shard connection (identical schemas,
identical UDFs) via a thread pool (``sqlite3`` releases the GIL during
execution, so shards genuinely run in parallel). Per-shape merges
reassemble the engine-exact result:

* **aggregates** — shards compute partials (``count``/``sum``/``min``/
  ``max`` natively; ``avg`` as ``sum`` + ``count``) combined exactly in
  Python. Only statically-INT ``sum``/``avg`` partition: integer
  addition is associative so any shard interleaving is bit-identical,
  while float accumulation is order-sensitive and *delegates*. Per-shard
  native overflow escapes through the ordinary
  :class:`~repro.backend.runtime.IntegerRangeEscape` rescue.
* **grouped aggregates / DISTINCT** — shards group locally carrying
  ``min(#pos)``; groups merge on :func:`~repro.datatypes.value_identity`
  keys and emit in global first-seen order (ascending minimum
  position), the representative row coming from the shard that saw the
  group first.
* **ORDER BY** — each shard sorts its slice; slices merge on the full
  ordinal-key comparator with the globally-unique ``#pos`` breaking
  ties, reproducing the row engine's stable sort.

Everything else — joins, set operations, sublinks, LIMIT, plain
streams — *delegates* to a private full (unpartitioned) SQLite backend,
so the engine is always complete. Any shard-side error rescues the
whole statement to the row engine: shard errors can race (first failing
shard wins) while the harness requires deterministic, bit-identical
error behavior — the row engine's answer is canonical by definition.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from functools import cmp_to_key
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..datatypes import SQLType, Value, compare, value_identity
from ..errors import ExecutionError, ProgrammingError
from ..executor.expr_eval import Env, ParamContext, Row
from ..executor.iterators import PhysicalOp
from .compile import OrdKey, PushdownCompiler, Unsupported, compile_pushdown_plan
from .dialects.base import quote_identifier_always as q
from .dialects.sqlite import SQLiteDialect
from .runtime import adapt_row, adapt_value
from .sqlite import SQLiteBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog.catalog import Catalog
    from ..planner.planner import Planner
    from ..storage.table import HeapTable

PARTITIONS_ENV_VAR = "REPRO_PARTITIONS"

#: Hidden mirror column holding each row's global heap position; '#'
#: keeps it outside any attribute namespace the analyzer can produce.
POS_COLUMN = "#pos"


def resolve_shard_count() -> int:
    """Shard count for new partitioned backends: ``$REPRO_PARTITIONS``,
    else one shard per core within [2, 8]."""
    raw = os.environ.get(PARTITIONS_ENV_VAR)
    if raw is None or not raw.strip():
        return min(8, max(2, os.cpu_count() or 2))
    try:
        shards = int(raw)
    except ValueError:
        shards = 0
    if shards < 1:
        raise ProgrammingError(
            f"${PARTITIONS_ENV_VAR} must be a positive integer shard count "
            f"(got {raw!r})"
        )
    return shards


class _ShardBackend(SQLiteBackend):
    """One shard: the stock SQLite adapter over a slice of every table.

    The only changes are the three mirror hooks — each mirrored table
    stores rows with ``pos % shard_count == shard_index`` plus their
    global position, which doubles as the scan ordinal.
    """

    def __init__(self, catalog: "Catalog", shard_index: int, shard_count: int):
        super().__init__(catalog)
        self.shard_index = shard_index
        self.shard_count = shard_count

    def _mirror_columns(self, heap: "HeapTable") -> list[str]:
        return super()._mirror_columns(heap) + [q(POS_COLUMN)]

    def _mirror_rows(self, heap: "HeapTable") -> Iterable[Row]:
        index, modulus = self.shard_index, self.shard_count
        has_bool = any(a.type is SQLType.BOOL for a in heap.schema)
        for pos, row in enumerate(heap.rows):
            if pos % modulus != index:
                continue
            if has_bool:
                row = adapt_row(row)
            yield tuple(row) + (pos,)

    def scan_ordinal(self, columns: Sequence[str]) -> Optional[str]:
        if POS_COLUMN in {c.lower() for c in columns}:
            return None  # a stored column shadows the hidden position
        return POS_COLUMN


class PartitionedSQLiteBackend:
    """The composite backend behind ``engine="sqlite-partition"``: *N*
    shard adapters, a thread pool, and a lazily-created full
    (unpartitioned) SQLite backend for everything that delegates."""

    dialect_class = SQLiteDialect

    def __init__(self, catalog: "Catalog", shards: Optional[int] = None):
        count = shards if shards is not None else resolve_shard_count()
        if count < 1:
            raise ProgrammingError(
                f"partitioned backend needs at least one shard (got {count})"
            )
        self.catalog = catalog
        self.shard_count = count
        self.shards = [_ShardBackend(catalog, i, count) for i in range(count)]
        self._full: Optional[SQLiteBackend] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        # Observability: how plans split between the two paths.
        self.partitioned_plans = 0
        self.delegated_plans = 0
        self.partitioned_statements = 0
        self.rescues = 0

    @property
    def full_backend(self) -> SQLiteBackend:
        """The single-connection backend delegated plans run on."""
        if self._full is None:
            self._full = SQLiteBackend(self.catalog)
        return self._full

    @property
    def pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.shard_count, thread_name_prefix="repro-shard"
            )
        return self._pool

    def close(self) -> None:
        for shard in self.shards:
            shard.close()
        if self._full is not None:
            self._full.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Shape analysis: which plans partition
# ----------------------------------------------------------------------
class _Shape:
    """A partitionable plan: pipeline -> top (agg/group/distinct/sort),
    optionally under a pure-column projection of the top's schema."""

    __slots__ = ("kind", "top", "pipeline", "project")

    def __init__(
        self,
        kind: str,
        top: an.Node,
        pipeline: an.Node,
        project: Optional[tuple[int, ...]],
    ):
        self.kind = kind
        self.top = top
        self.pipeline = pipeline
        self.project = project


def _strip(node: an.Node) -> an.Node:
    while isinstance(node, an.BaseRelationNode):
        node = node.child
    return node


def _node_exprs(node: an.Node) -> tuple[ax.Expr, ...]:
    if isinstance(node, an.Select):
        return (node.condition,)
    if isinstance(node, an.Project):
        return tuple(expr for _, expr in node.items)
    if isinstance(node, an.Aggregate):
        return tuple(expr for _, expr in node.group_items) + tuple(
            agg.arg for _, agg in node.agg_items if agg.arg is not None
        )
    if isinstance(node, an.Sort):
        return tuple(key.expr for key in node.keys)
    return ()


def _reject_sublinks(node: an.Node) -> None:
    """A sublink inside a shard statement would scan *its* tables'
    1/N-row shard mirrors — silently wrong results. Delegate instead."""
    for expr in _node_exprs(node):
        for part in ax.walk_expr(expr):
            if isinstance(part, ax.SubqueryExpr):
                raise Unsupported("sublink inside a partitioned pipeline")


def _analyze(root: an.Node) -> _Shape:
    node = _strip(root)
    project: Optional[tuple[int, ...]] = None
    if isinstance(node, an.Project):
        inner = _strip(node.child)
        if not isinstance(inner, (an.Aggregate, an.Distinct, an.Sort)):
            raise Unsupported("plain stream pipelines delegate")
        positions = {a.name: i for i, a in enumerate(inner.schema)}
        if len(positions) != len(inner.schema):
            raise Unsupported("ambiguous column names under the projection")
        indices = []
        for _, expr in node.items:
            if not isinstance(expr, ax.Column) or expr.name not in positions:
                raise Unsupported("non-column projection above the merge point")
            indices.append(positions[expr.name])
        project = tuple(indices)
        node = inner
    if isinstance(node, an.Aggregate):
        kind = "group" if node.group_items else "agg"
    elif isinstance(node, an.Distinct):
        kind = "distinct"
    elif isinstance(node, an.Sort):
        kind = "sort"
    else:
        raise Unsupported("not a partitionable plan shape")
    _reject_sublinks(node)
    pipeline = node.child
    probe = _strip(pipeline)
    while isinstance(probe, (an.Select, an.Project)):
        _reject_sublinks(probe)
        probe = _strip(probe.child)
    if not isinstance(probe, an.Scan):
        raise Unsupported("pipeline is not a single-table scan chain")
    return _Shape(kind, node, pipeline, project)


# ----------------------------------------------------------------------
# Merge plans
# ----------------------------------------------------------------------
class _AggSpec:
    """One aggregate's partial-column layout: ``start`` indexes the
    shard row; ``avg`` occupies two columns (sum, count)."""

    __slots__ = ("func", "start")

    def __init__(self, func: str, start: int):
        self.func = func
        self.start = start

    def combine(self, rows: list[Row]) -> Value:
        """Exact cross-shard combination, matching the engine's
        :class:`~repro.executor.expr_eval.AggregateAccumulator`."""
        partials = [row[self.start] for row in rows]
        if self.func == "count":
            return sum(v for v in partials if v is not None)
        if self.func == "sum":
            present = [v for v in partials if v is not None]
            # Python integer addition: exact even past int64 (matching
            # the engines' unbounded totals — per-shard overflow already
            # escaped to the rescue path before reaching here).
            return sum(present) if present else None
        if self.func == "avg":
            total_count = sum(row[self.start + 1] for row in rows)
            if not total_count:
                return None
            total = sum(v for v in partials if v is not None)
            return total / total_count  # exact-total / count, one division
        best = None  # min / max via the engine's own comparator
        want = -1 if self.func == "min" else 1
        for value in partials:
            if value is None:
                continue
            if best is None or compare(value, best) == want:
                best = value
        return best


class _MergePlan:
    """How shard result sets reassemble into the engine-exact result."""

    __slots__ = ("kind", "group_width", "aggs", "ord_index", "ords", "data_width")

    def __init__(
        self,
        kind: str,
        group_width: int = 0,
        aggs: Sequence[_AggSpec] = (),
        ord_index: int = -1,
        ords: Sequence[OrdKey] = (),
        data_width: int = 0,
    ):
        self.kind = kind
        self.group_width = group_width
        self.aggs = tuple(aggs)
        self.ord_index = ord_index
        self.ords = tuple(ords)
        self.data_width = data_width


def _ord_comparator(ords: Sequence[OrdKey], base: int):
    """Row comparator equivalent to the compiled ORDER BY over the
    ordinal columns stored at positions ``base..`` of each row."""

    def compare_rows(a: Row, b: Row) -> int:
        for offset, key in enumerate(ords):
            va, vb = a[base + offset], b[base + offset]
            if va is None or vb is None:
                if va is None and vb is None:
                    continue
                # SQLite default NULL placement (smallest) unless the
                # key pins it; keys from Sort nodes always pin it.
                nulls_first = key.nulls_first
                if nulls_first is None:
                    nulls_first = not key.descending
                if va is None:
                    return -1 if nulls_first else 1
                return 1 if nulls_first else -1
            rel = compare(va, vb)
            if not rel:
                continue
            return -rel if key.descending else rel
        return 0

    return compare_rows


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
_PARTITIONED_FUNCS = ("count", "sum", "min", "max", "avg")


def _agg_partials(
    compiler: PushdownCompiler,
    top: an.Aggregate,
    child_schema,
    width: int,
) -> tuple[list[str], list[_AggSpec]]:
    """Per-shard partial columns + combine specs for the aggregate
    list, or :class:`Unsupported` when any aggregate cannot be split."""
    columns: list[str] = []
    specs: list[_AggSpec] = []
    for _, agg in top.agg_items:
        if agg.distinct or agg.func not in _PARTITIONED_FUNCS:
            raise Unsupported(f"aggregate {agg.func}() does not partition")
        if agg.arg is None:
            columns.append(f'count(*) AS {q(f"#p{width}")}')
            specs.append(_AggSpec("count", width))
            width += 1
            continue
        if agg.func in ("sum", "avg"):
            try:
                arg_type = ax.infer_type(agg.arg, child_schema, ())
            except Exception:
                raise Unsupported("untypeable aggregate argument") from None
            if arg_type is not SQLType.INT:
                # Float accumulation is order-sensitive; sum/avg over
                # non-numerics raises in-engine. Both delegate to the
                # full backend, whose existing gates decide.
                raise Unsupported(f"{agg.func}() over {arg_type} does not partition")
        arg_sql = compiler._expr(agg.arg, child_schema)
        if agg.func == "avg":
            columns.append(f'sum({arg_sql}) AS {q(f"#p{width}")}')
            columns.append(f'count({arg_sql}) AS {q(f"#p{width + 1}")}')
            specs.append(_AggSpec("avg", width))
            width += 2
        else:
            columns.append(f'{agg.func}({arg_sql}) AS {q(f"#p{width}")}')
            specs.append(_AggSpec(agg.func, width))
            width += 1
    return columns, specs


def _compile_partitioned(
    planner: "Planner", backend: PartitionedSQLiteBackend, root: an.Node
) -> "PartitionedQueryOp":
    shape = _analyze(root)
    compiler = PushdownCompiler(planner, backend.shards[0])
    top = shape.top

    if shape.kind == "sort":
        compiled = compiler._dispatch(top)
        _check_clean(compiler)
        if len(compiled.ords) != len(top.keys) + 1:
            raise Unsupported("sort input has a composite ordinal")
        alias = compiler._alias()
        columns = [f"{alias}.{q(a.name)}" for a in top.schema]
        columns += [f"{alias}.{q(key.column)}" for key in compiled.ords]
        sql = (
            f"SELECT {', '.join(columns)} FROM ({compiled.sql}) AS {alias} "
            f"ORDER BY {compiler._order_by(compiled.ords, alias)}"
        )
        plan = _MergePlan("sort", ords=compiled.ords, data_width=len(top.schema))
        return _make_op(backend, sql, root, compiler, planner, plan, shape.project)

    child = compiler._node(shape.pipeline)
    _check_clean(compiler)
    if len(child.ords) != 1:
        raise Unsupported("pipeline exposes a composite ordinal")
    ord_sql = q(child.ords[0].column)
    child_schema = top.child.schema
    alias = compiler._alias()

    if shape.kind == "agg":
        columns, specs = _agg_partials(compiler, top, child_schema, 0)
        sql = f"SELECT {', '.join(columns)} FROM ({child.sql}) AS {alias}"
        plan = _MergePlan("agg", aggs=specs)
    elif shape.kind == "group":
        group_sqls = [
            compiler._expr(expr, child_schema) for _, expr in top.group_items
        ]
        width = len(group_sqls)
        columns = [
            f"{sql_text} AS {q(f'#g{i}')}" for i, sql_text in enumerate(group_sqls)
        ]
        agg_columns, specs = _agg_partials(compiler, top, child_schema, width)
        width += sum(2 if s.func == "avg" else 1 for s in specs)
        columns += agg_columns
        columns.append(f"min({ord_sql}) AS {q('#m')}")
        sql = (
            f"SELECT {', '.join(columns)} FROM ({child.sql}) AS {alias} "
            f"GROUP BY {', '.join(group_sqls)}"
        )
        plan = _MergePlan(
            "group", group_width=len(group_sqls), aggs=specs, ord_index=width
        )
    else:  # distinct
        names = [q(a.name) for a in top.schema]
        sql = (
            f"SELECT {', '.join(names)}, min({ord_sql}) AS {q('#m')} "
            f"FROM ({child.sql}) AS {alias} GROUP BY {', '.join(names)}"
        )
        plan = _MergePlan(
            "group", group_width=len(top.schema), ord_index=len(top.schema)
        )
    _check_clean(compiler)
    return _make_op(backend, sql, root, compiler, planner, plan, shape.project)


def _check_clean(compiler: PushdownCompiler) -> None:
    """The shard statement must be self-contained: a row-engine fragment
    or sublink slot would have to be materialized into *every* shard
    (and re-planned per shard) — delegate such plans instead. One base
    table keeps the modulo partition meaningful."""
    if compiler.slots or compiler.limit_binds:
        raise Unsupported("pipeline fell back to a row-engine fragment")
    if len(compiler.table_names) != 1:
        raise Unsupported("partitioning needs exactly one base table")


def _make_op(
    backend: PartitionedSQLiteBackend,
    sql: str,
    root: an.Node,
    compiler: PushdownCompiler,
    planner: "Planner",
    plan: _MergePlan,
    project: Optional[tuple[int, ...]],
) -> "PartitionedQueryOp":
    return PartitionedQueryOp(
        backend,
        sql,
        root.schema,
        compiler.table_names,
        compiler.param_labels,
        planner.params,
        plan,
        project,
        rescue_planner=planner,
        rescue_node=root,
    )


def compile_partitioned_plan(
    planner: "Planner", backend: PartitionedSQLiteBackend, node: an.Node
):
    """Entry point for ``engine="sqlite-partition"`` (the registered
    :attr:`BackendSpec.plan_root`): partition when the shape allows,
    delegate to the full single-connection backend otherwise."""
    try:
        op = _compile_partitioned(planner, backend, node)
    except Unsupported:
        backend.delegated_plans += 1
        return compile_pushdown_plan(planner, backend.full_backend, node)
    backend.partitioned_plans += 1
    return op


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class PartitionedQueryOp(PhysicalOp):
    """One compiled statement fanned out over every shard connection.

    ``rows(env)`` syncs the referenced table on each shard (serially, on
    the calling thread — heap snapshots resolve through the active
    transaction), runs the statement on the pool, and merges. *Any*
    shard-side exception — integer escapes and real evaluation errors
    alike — rescues to the row engine: shard failures race, and only
    the row engine's behavior is deterministic and canonical.
    """

    __slots__ = (
        "backend",
        "sql",
        "table_names",
        "param_labels",
        "params",
        "merge_plan",
        "project",
        "_bool_columns",
        "_rescue_planner",
        "_rescue_node",
        "_rescue_plan",
    )

    def __init__(
        self,
        backend: PartitionedSQLiteBackend,
        sql: str,
        schema,
        table_names: Sequence[str],
        param_labels: dict[int, str],
        params: ParamContext,
        merge_plan: _MergePlan,
        project: Optional[tuple[int, ...]],
        rescue_planner=None,
        rescue_node=None,
    ):
        self.backend = backend
        self.sql = sql
        self.schema = schema
        self.table_names = tuple(table_names)
        self.param_labels = dict(param_labels)
        self.params = params
        self.merge_plan = merge_plan
        self.project = project
        self._bool_columns = tuple(
            i for i, a in enumerate(schema) if a.type is SQLType.BOOL
        )
        self._rescue_planner = rescue_planner
        self._rescue_node = rescue_node
        self._rescue_plan: Optional[PhysicalOp] = None

    # ------------------------------------------------------------------
    def rows(self, env: Env) -> Iterator[Row]:
        return iter(self._execute(env))

    def _execute(self, env: Env) -> list[Row]:
        backend = self.backend
        binds = self._bind_params()
        try:
            for name in self.table_names:
                for shard in backend.shards:
                    shard.sync_table(name)
            futures = [
                backend.pool.submit(shard.run_statement, self.sql, binds)
                for shard in backend.shards
            ]
            shard_rows: list[list[Row]] = []
            error: Optional[BaseException] = None
            for future in futures:  # drain every future before rescuing
                try:
                    shard_rows.append(future.result())
                except Exception as exc:  # noqa: BLE001 - rescued below
                    error = error or exc
            if error is not None:
                raise error
            merged = self._adapt(self._merge(shard_rows))
        except Exception:  # noqa: BLE001 - row engine is canonical
            backend.rescues += 1
            return self._rescue(env)
        backend.partitioned_statements += 1
        return merged

    def _bind_params(self) -> dict[str, Value]:
        binds: dict[str, Value] = {}
        values = self.params.values
        for index, label in self.param_labels.items():
            if index >= len(values):
                raise ExecutionError(
                    f"parameter {label} has no bound value ({len(values)} bound)"
                )
            binds[f"p{index}"] = adapt_value(values[index])
        return binds

    def _rescue(self, env: Env) -> list[Row]:
        if self._rescue_planner is None or self._rescue_node is None:
            raise ExecutionError(
                "partitioned backend: shard execution failed with no "
                "row-engine rescue plan available"
            )
        plan = self._rescue_plan
        if plan is None:
            plan = self._rescue_planner.plan(self._rescue_node)
            self._rescue_plan = plan
        return list(plan.rows(env))

    # ------------------------------------------------------------------
    def _merge(self, shard_rows: list[list[Row]]) -> list[Row]:
        plan = self.merge_plan
        if plan.kind == "agg":
            merged = [self._merge_global(shard_rows, plan)]
        elif plan.kind == "group":
            merged = self._merge_groups(shard_rows, plan)
        else:
            merged = self._merge_sorted(shard_rows, plan)
        if self.project is not None:
            project = self.project
            merged = [tuple(row[i] for i in project) for row in merged]
        return merged

    @staticmethod
    def _merge_global(shard_rows: list[list[Row]], plan: _MergePlan) -> Row:
        rows = [rows[0] for rows in shard_rows]  # one partial row per shard
        return tuple(spec.combine(rows) for spec in plan.aggs)

    @staticmethod
    def _merge_groups(shard_rows: list[list[Row]], plan: _MergePlan) -> list[Row]:
        width, ord_index = plan.group_width, plan.ord_index
        # key -> [min global position, representative row, partial rows]
        groups: dict[tuple, list] = {}
        for rows in shard_rows:
            for row in rows:
                key = tuple(value_identity(v) for v in row[:width])
                entry = groups.get(key)
                if entry is None:
                    groups[key] = [row[ord_index], row, [row]]
                    continue
                if row[ord_index] < entry[0]:
                    entry[0] = row[ord_index]
                    entry[1] = row
                entry[2].append(row)
        merged = []
        for _, representative, partials in sorted(
            groups.values(), key=lambda entry: entry[0]
        ):
            values = list(representative[:width])
            values += [spec.combine(partials) for spec in plan.aggs]
            merged.append(tuple(values))
        return merged

    @staticmethod
    def _merge_sorted(shard_rows: list[list[Row]], plan: _MergePlan) -> list[Row]:
        rows = [row for shard in shard_rows for row in shard]
        rows.sort(key=cmp_to_key(_ord_comparator(plan.ords, plan.data_width)))
        width = plan.data_width
        return [row[:width] for row in rows]

    def _adapt(self, rows: list[Row]) -> list[Row]:
        if not self._bool_columns:
            return rows
        bool_columns = self._bool_columns
        adapted = []
        for row in rows:
            out = list(row)
            for i in bool_columns:
                if out[i] is not None:
                    out[i] = bool(out[i])
            adapted.append(tuple(out))
        return adapted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionedQueryOp {self.merge_plan.kind} over "
            f"{self.backend.shard_count} shard(s)>"
        )
