"""The execution-backend registry.

Every execution engine — the built-in row/vectorized interpreters, the
pushdown backends, and any third-party backend — is described by a
:class:`BackendSpec` and registered here. Everything that used to
hardcode the engine tuple (planner validation, ``resolve_engine``, the
plan-cache key, server/CLI ``--engine`` choices, the differential test
matrix) now consults this module, so adding a backend is one
:func:`register` call:

>>> import repro.backend as backend
>>> backend.register(backend.BackendSpec(          # doctest: +SKIP
...     name="mydb",
...     kind="pushdown",
...     description="pushdown onto MyDB",
...     requires=("mydb",),                        # importable modules
...     plan_root=my_plan_root,                    # (planner, node) -> op
...     create_backend=my_adapter_factory,         # (catalog, options) -> MirrorAdapter
... ))

Registration is *declarative about availability*: a spec whose
``requires`` modules cannot be imported is silently not registered
(:func:`register` returns ``False``), so optional backends degrade to
"unknown engine, valid engines are ..." instead of an import error at
first use. The DuckDB backend ships exactly this way.
"""

from __future__ import annotations

import importlib.util
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..errors import PlanError, ProgrammingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algebra import nodes as an
    from ..catalog.catalog import Catalog
    from ..planner.planner import Planner
    from .runtime import MirrorAdapter


class BackendSpec:
    """Everything the engine needs to know about one execution backend.

    * ``name`` — the public engine name (``engine="..."``,
      ``$REPRO_ENGINE``, server HELLO, CLI ``--engine``).
    * ``kind`` — ``"core"`` (interpreter over the heap) or
      ``"pushdown"`` (compiles plans to SQL for a mirror DBMS).
    * ``requires`` — importable module names the backend depends on;
      if any is missing the spec is not registered.
    * ``differential`` — whether the N-way differential harness should
      include this engine in its default matrix.
    * ``plan_root(planner, node)`` — build the top-level physical plan.
    * ``create_backend(catalog, options)`` — construct the backend's
      :class:`~repro.backend.runtime.MirrorAdapter` (pushdown only).
    * ``resolve_options()`` — resolve per-planner configuration
      (environment knobs like ``$REPRO_PARTITIONS``) into a hashable
      tuple, captured once at planner construction so the plan-cache
      token and the live backend can never disagree mid-connection.
    """

    __slots__ = (
        "name",
        "kind",
        "description",
        "requires",
        "differential",
        "plan_root",
        "create_backend",
        "resolve_options",
    )

    def __init__(
        self,
        name: str,
        kind: str = "core",
        description: str = "",
        requires: Sequence[str] = (),
        differential: bool = True,
        plan_root: Callable[["Planner", "an.Node"], object] = None,
        create_backend: Optional[
            Callable[["Catalog", tuple], "MirrorAdapter"]
        ] = None,
        resolve_options: Optional[Callable[[], tuple]] = None,
    ):
        if plan_root is None:
            raise ProgrammingError(f"backend {name!r} needs a plan_root callable")
        self.name = name.lower()
        self.kind = kind
        self.description = description
        self.requires = tuple(requires)
        self.differential = differential
        self.plan_root = plan_root
        self.create_backend = create_backend
        self.resolve_options = resolve_options if resolve_options is not None else tuple

    def available(self) -> bool:
        """Whether every required module can be imported here."""
        for module in self.requires:
            try:
                if importlib.util.find_spec(module) is None:
                    return False
            except (ImportError, ValueError):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BackendSpec {self.name!r} ({self.kind})>"


#: name -> BackendSpec, in registration order (the order user-facing
#: listings show).
_REGISTRY: dict[str, BackendSpec] = {}


def register(spec: BackendSpec) -> bool:
    """Register *spec*; returns whether it is now available.

    A second registration under an existing name is rejected
    (:class:`~repro.errors.ProgrammingError`) — backends are identities,
    not configuration to be silently swapped. A spec whose ``requires``
    modules are missing is skipped and ``False`` returned: the engine
    stays unknown (with a clean "valid engines are ..." error) rather
    than failing with an import error at first query.
    """
    if spec.name in _REGISTRY:
        raise ProgrammingError(
            f"execution backend {spec.name!r} is already registered"
        )
    if not spec.available():
        return False
    _REGISTRY[spec.name] = spec
    return True


def unregister(name: str) -> None:
    """Remove a registered backend (primarily for tests and reloads)."""
    _REGISTRY.pop(name.lower(), None)


def engine_names() -> tuple[str, ...]:
    """All registered engine names, in registration order."""
    return tuple(_REGISTRY)


def differential_engines() -> tuple[str, ...]:
    """Engines the N-way differential harness compares by default."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.differential)


def backend_specs() -> tuple[BackendSpec, ...]:
    return tuple(_REGISTRY.values())


def unknown_engine_message(name: str, env_var: Optional[str] = None) -> str:
    """The single source of truth for the invalid-engine error text.

    *env_var* names the environment variable the bad value came from
    (``$REPRO_ENGINE``), so a user who never passed ``engine=`` is told
    where to look.
    """
    origin = f" (from ${env_var})" if env_var else ""
    return (
        f"unknown execution engine {name!r}{origin} "
        f"(valid engines: {', '.join(engine_names())})"
    )


def get_spec(name: str, env_var: Optional[str] = None) -> BackendSpec:
    """Look up a backend by name; raises :class:`PlanError` with the
    canonical listing of registered engines when absent."""
    spec = _REGISTRY.get(name.lower())
    if spec is None:
        raise PlanError(unknown_engine_message(name, env_var))
    return spec


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
def _plan_row(planner: "Planner", node: "an.Node"):
    return planner.plan(node)


def _plan_vectorized(planner: "Planner", node: "an.Node"):
    return planner.plan_vectorized(node)


def _plan_pushdown(planner: "Planner", node: "an.Node"):
    from .compile import compile_pushdown_plan

    return compile_pushdown_plan(planner, planner.backend, node)


def _create_sqlite(catalog: "Catalog", options: tuple) -> "MirrorAdapter":
    from .sqlite import SQLiteBackend

    return SQLiteBackend(catalog)


def _plan_partitioned(planner: "Planner", node: "an.Node"):
    from .partition import compile_partitioned_plan

    return compile_partitioned_plan(planner, planner.backend, node)


def _create_partitioned(catalog: "Catalog", options: tuple) -> "MirrorAdapter":
    from .partition import PartitionedSQLiteBackend

    (shards,) = options
    return PartitionedSQLiteBackend(catalog, shards=shards)


def _partition_options() -> tuple:
    from .partition import resolve_shard_count

    return (resolve_shard_count(),)


def _create_duckdb(catalog: "Catalog", options: tuple) -> "MirrorAdapter":
    from .duckdb import DuckDBBackend

    return DuckDBBackend(catalog)


def register_builtins() -> None:
    """Install the in-tree backends (idempotent; called on package
    import)."""
    if "row" in _REGISTRY:
        return
    register(
        BackendSpec(
            name="row",
            kind="core",
            description="tuple-at-a-time interpreter (the reference engine)",
            plan_root=_plan_row,
        )
    )
    register(
        BackendSpec(
            name="vectorized",
            kind="core",
            description="batch-at-a-time columnar interpreter",
            plan_root=_plan_vectorized,
        )
    )
    register(
        BackendSpec(
            name="sqlite",
            kind="pushdown",
            description="single-statement pushdown onto embedded sqlite3",
            plan_root=_plan_pushdown,
            create_backend=_create_sqlite,
        )
    )
    register(
        BackendSpec(
            name="sqlite-partition",
            kind="pushdown",
            description=(
                "hash-partitioned sqlite3 mirrors executed on a thread "
                "pool ($REPRO_PARTITIONS shards)"
            ),
            plan_root=_plan_partitioned,
            create_backend=_create_partitioned,
            resolve_options=_partition_options,
        )
    )
    # Optional: only registered where the duckdb module is importable
    # (its tests skip cleanly elsewhere).
    register(
        BackendSpec(
            name="duckdb",
            kind="pushdown",
            description="single-statement pushdown onto embedded DuckDB",
            requires=("duckdb",),
            plan_root=_plan_pushdown,
            create_backend=_create_duckdb,
        )
    )
