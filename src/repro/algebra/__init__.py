"""Relational algebra: resolved expression trees and logical operators.

This is the representation the Perm provenance rewriter works on — the
equivalent of PostgreSQL's internal *query tree* that the paper's
Figure 3 shows flowing from the analyzer through the Perm rewrite module
into the planner.
"""

from .expressions import (  # noqa: F401
    AggExpr,
    BinOp,
    CaseExpr,
    CastExpr,
    Column,
    Const,
    DistinctTest,
    Expr,
    FuncExpr,
    InListExpr,
    IsNullTest,
    OuterColumn,
    SubqueryExpr,
    UnOp,
    infer_type,
    map_expr,
    walk_expr,
)
from .nodes import (  # noqa: F401
    Aggregate,
    BaseRelationNode,
    Distinct,
    Join,
    Limit,
    Node,
    Project,
    ProvenanceNode,
    Scan,
    Select,
    SetOpNode,
    SingleRow,
    Sort,
    SortKey,
)
from .render import render_tree  # noqa: F401
from .to_sql import algebra_to_sql  # noqa: F401
from .tree import copy_tree, replace_children, walk_tree  # noqa: F401
