"""ASCII rendering of algebra trees.

The Perm browser shows the algebra tree of the original query and of the
rewritten provenance query side by side (Figure 4, markers 3 and 4).
This module produces the text equivalent:

    Π[count, text]
    └─ α[v1.mId, text; count]
       └─ ⋈[v1.mId = a.mId]
          ├─ Scan(v1)
          └─ Scan(approved AS a)
"""

from __future__ import annotations

from typing import Callable, Optional

from .expressions import SubqueryExpr, walk_expr
from .nodes import Node

Annotator = Callable[[Node], Optional[str]]


def render_tree(
    root: Node,
    show_schema: bool = False,
    show_subplans: bool = True,
    annotate: Optional[Annotator] = None,
) -> str:
    """Render a plan as an indented ASCII tree.

    ``annotate(node)`` may supply a per-node suffix (EXPLAIN uses it for
    estimated rows/cost); returning ``None`` leaves the node bare.
    """
    lines: list[str] = []
    _render(root, "", "", lines, show_schema, show_subplans, annotate)
    return "\n".join(lines)


def _render(
    node: Node,
    prefix: str,
    child_prefix: str,
    lines: list[str],
    show_schema: bool,
    show_subplans: bool,
    annotate: Optional[Annotator] = None,
) -> None:
    label = node.label()
    if show_schema:
        label += "  :: (" + ", ".join(a.name for a in node.schema) + ")"
    if annotate is not None:
        suffix = annotate(node)
        if suffix:
            label += f"  {suffix}"
    lines.append(prefix + label)

    subplans: list[Node] = []
    if show_subplans:
        for expr in node.expressions():
            for sub in walk_expr(expr):
                if isinstance(sub, SubqueryExpr):
                    subplans.append(sub.plan)

    entries: list[tuple[str, Node]] = [("", child) for child in node.children]
    entries += [("sublink: ", plan) for plan in subplans]

    for index, (tag, child) in enumerate(entries):
        last = index == len(entries) - 1
        connector = "└─ " if last else "├─ "
        extension = "   " if last else "│  "
        _render(
            child,
            child_prefix + connector + tag,
            child_prefix + extension,
            lines,
            show_schema,
            show_subplans,
            annotate,
        )


def render_side_by_side(left: str, right: str, gap: int = 4, headers: tuple[str, str] | None = None) -> str:
    """Render two pre-formatted trees next to each other (original vs
    rewritten query, as in the browser)."""
    left_lines = left.splitlines() or [""]
    right_lines = right.splitlines() or [""]
    if headers is not None:
        left_lines = [headers[0], "=" * len(headers[0])] + left_lines
        right_lines = [headers[1], "=" * len(headers[1])] + right_lines
    width = max((len(l) for l in left_lines), default=0)
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        l.ljust(width + gap) + r for l, r in zip(left_lines, right_lines)
    )
