"""Algebra -> SQL text, parameterized by target dialect.

The Perm browser's pane 2 shows the *rewritten query as an SQL statement*
(Figure 4, marker 2). Perm obtains that text by deparsing the rewritten
PostgreSQL query tree; this module is the equivalent deparser for our
algebra trees. The generated SQL nests one subselect per operator, with
every intermediate attribute exposed under its unique (quoted) name, so
the output is both readable and re-parseable by :mod:`repro.sql.parser`.

Deparsing is split between tree shape (the :class:`_SqlBuilder` nesting)
and scalar rendering (a :class:`SqlDialect`), because the same algebra
trees are compiled to SQL for two different consumers:

* :class:`BrowserDialect` (default) — SQL in this engine's own dialect,
  shown in the browser and re-parseable by :mod:`repro.sql.parser`;
* :class:`SQLiteDialect` — SQL executable by a stock ``sqlite3``
  connection, used by the pushdown backend (:mod:`repro.backend`). It
  maps booleans to 0/1, renders parameters as named SQLite slots, and
  routes scalar functions, casts and LIKE through registered
  ``repro_*`` user-defined functions so the C engine computes exactly
  the semantics of :mod:`repro.executor.expr_eval`.

Dialects only cover scalar expressions; operator-tree compilation for
SQLite (ordering channel, fallbacks, sublink strategies) lives in
:mod:`repro.backend.compile`.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Optional

from ..datatypes import SQLType, Value
from ..errors import PermError
from . import nodes as n
from .expressions import (
    AggExpr,
    BinOp,
    CaseExpr,
    CastExpr,
    Column,
    Const,
    DistinctTest,
    Expr,
    FuncExpr,
    InListExpr,
    IsNullTest,
    OuterColumn,
    Param,
    SubqueryExpr,
    UnOp,
)

_BARE = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _quote(name: str) -> str:
    if name and all(c in _BARE for c in name) and not name[0].isdigit():
        return name
    return '"' + name.replace('"', '""') + '"'


def quote_identifier_always(name: str) -> str:
    """Unconditionally quote *name* — required for SQLite, whose keyword
    list (CASE, ORDER, ...) would otherwise collide with bare aliases."""
    return '"' + name.replace('"', '""') + '"'


class SqlDialect:
    """Scalar-rendering knobs that differ between SQL targets."""

    name = "abstract"

    #: SQL spellings of the static types (CAST targets, typed NULLs).
    type_names: dict[SQLType, str] = {}

    def identifier(self, name: str) -> str:
        return _quote(name)

    def literal(self, value: Value) -> str:
        raise NotImplementedError

    def typed_null(self, type_: SQLType) -> str:
        return f"CAST(NULL AS {self.type_names[type_]})"

    def param(self, expr: Param) -> str:
        raise NotImplementedError

    def function(self, name: str, args: list[str]) -> str:
        raise NotImplementedError

    def cast(self, operand: str, target: SQLType) -> str:
        return f"CAST({operand} AS {self.type_names[target]})"

    def like(self, left: str, right: str, case_insensitive: bool) -> str:
        raise NotImplementedError

    def subquery(self, expr: SubqueryExpr) -> str:
        """Render a sublink. Dialects that cannot inline arbitrary
        subplans (SQLite) override this to delegate or refuse."""
        raise NotImplementedError


class BrowserDialect(SqlDialect):
    """The engine's own SQL dialect: what :mod:`repro.sql.parser` reads
    and the Perm browser displays."""

    name = "browser"

    type_names = {
        SQLType.INT: "int",
        SQLType.FLOAT: "float",
        SQLType.TEXT: "text",
        SQLType.BOOL: "bool",
        SQLType.NULL: "text",
    }

    def literal(self, value: Value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(value)

    def param(self, expr: Param) -> str:
        # Re-parseable placeholder syntax (named slots keep their name).
        return f":{expr.name}" if expr.name is not None else "?"

    def function(self, name: str, args: list[str]) -> str:
        return f"{name}({', '.join(args)})"

    def like(self, left: str, right: str, case_insensitive: bool) -> str:
        op = "ILIKE" if case_insensitive else "LIKE"
        return f"({left} {op} {right})"

    def subquery(self, expr: SubqueryExpr) -> str:
        inner = algebra_to_sql(expr.plan, pretty=False)
        if expr.kind == "scalar":
            return f"({inner})"
        if expr.kind == "exists":
            prefix = "NOT " if expr.negated else ""
            return f"({prefix}EXISTS ({inner}))"
        if expr.kind == "in":
            assert expr.operand is not None
            maybe_not = "NOT " if expr.negated else ""
            return f"({expr_to_sql(expr.operand, self)} {maybe_not}IN ({inner}))"
        if expr.kind == "quant":
            assert expr.operand is not None and expr.op and expr.quantifier
            return (
                f"({expr_to_sql(expr.operand, self)} {expr.op} "
                f"{expr.quantifier.upper()} ({inner}))"
            )
        raise PermError(f"unknown sublink kind {expr.kind!r}")


class SQLiteDialect(SqlDialect):
    """SQL executable by ``sqlite3``.

    Booleans become 0/1 (SQLite has no boolean storage class; the
    backend converts results back using the plan's static types).
    Scalar functions, CAST and LIKE go through ``repro_*`` UDFs the
    backend registers, so every value — including raised execution
    errors — matches the row engine bit for bit. Sublinks are handled
    by the plan compiler (:mod:`repro.backend.compile`), which installs
    itself via ``subquery_renderer``.
    """

    name = "sqlite"

    type_names = {
        SQLType.INT: "INTEGER",
        SQLType.FLOAT: "REAL",
        SQLType.TEXT: "TEXT",
        SQLType.BOOL: "INTEGER",
        SQLType.NULL: "BLOB",
    }

    #: Prefix under which the backend registers its exact-semantics UDFs.
    udf_prefix = "repro_"

    def identifier(self, name: str) -> str:
        # Always quote: bare lowercase names can hit SQLite keywords.
        return quote_identifier_always(name)

    def __init__(
        self, subquery_renderer: Optional[Callable[[SubqueryExpr], str]] = None
    ):
        self.subquery_renderer = subquery_renderer

    def literal(self, value: Value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(value)

    def param(self, expr: Param) -> str:
        # Slot-ordered named parameters; the backend binds values from
        # the shared ParamContext under these names per execution.
        return f":p{expr.index}"

    def function(self, name: str, args: list[str]) -> str:
        return f"{self.udf_prefix}{name}({', '.join(args)})"

    def cast(self, operand: str, target: SQLType) -> str:
        # SQLite CAST semantics differ ('abc' -> 0, no bool); the UDFs
        # wrap repro.datatypes.cast_value for exact behavior.
        return f"{self.udf_prefix}cast_{target.name.lower()}({operand})"

    def like(self, left: str, right: str, case_insensitive: bool) -> str:
        # SQLite's native LIKE is case-insensitive for ASCII; the UDF
        # reproduces the engine's case-sensitive regex LIKE exactly.
        udf = "ilike" if case_insensitive else "like"
        return f"{self.udf_prefix}{udf}({left}, {right})"

    def subquery(self, expr: SubqueryExpr) -> str:
        if self.subquery_renderer is None:
            raise PermError(
                "sublink rendering for the sqlite dialect requires the "
                "backend plan compiler (repro.backend.compile)"
            )
        return self.subquery_renderer(expr)


BROWSER_DIALECT = BrowserDialect()


def expr_to_sql(expr: Expr, dialect: SqlDialect = BROWSER_DIALECT) -> str:
    """Render a resolved expression as SQL text in *dialect*."""
    if isinstance(expr, Column):
        return dialect.identifier(expr.name)
    if isinstance(expr, OuterColumn):
        # Correlated reference: rendered as a bare name; the enclosing
        # query exposes it (display + re-parse inside the right scope).
        return dialect.identifier(expr.name)
    if isinstance(expr, Const):
        if expr.value is None and expr.type is not SQLType.NULL:
            return dialect.typed_null(expr.type)
        return dialect.literal(expr.value)
    if isinstance(expr, Param):
        return dialect.param(expr)
    if isinstance(expr, BinOp):
        if expr.op in ("like", "ilike"):
            return dialect.like(
                expr_to_sql(expr.left, dialect),
                expr_to_sql(expr.right, dialect),
                expr.op == "ilike",
            )
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        return f"({expr_to_sql(expr.left, dialect)} {op} {expr_to_sql(expr.right, dialect)})"
    if isinstance(expr, UnOp):
        if expr.op == "not":
            return f"(NOT {expr_to_sql(expr.operand, dialect)})"
        return f"({expr.op}{expr_to_sql(expr.operand, dialect)})"
    if isinstance(expr, IsNullTest):
        maybe_not = " NOT" if expr.negated else ""
        return f"({expr_to_sql(expr.operand, dialect)} IS{maybe_not} NULL)"
    if isinstance(expr, DistinctTest):
        if dialect.name == "sqlite":
            # SQLite's IS / IS NOT *is* the null-safe comparison.
            op = "IS" if expr.negated else "IS NOT"
            return (
                f"({expr_to_sql(expr.left, dialect)} {op} "
                f"{expr_to_sql(expr.right, dialect)})"
            )
        maybe_not = " NOT" if expr.negated else ""
        return (
            f"({expr_to_sql(expr.left, dialect)} IS{maybe_not} DISTINCT FROM "
            f"{expr_to_sql(expr.right, dialect)})"
        )
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(expr_to_sql(expr.operand, dialect))
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {expr_to_sql(condition, dialect)} "
                f"THEN {expr_to_sql(result, dialect)}"
            )
        if expr.else_result is not None:
            parts.append(f"ELSE {expr_to_sql(expr.else_result, dialect)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, FuncExpr):
        return dialect.function(expr.name, [expr_to_sql(a, dialect) for a in expr.args])
    if isinstance(expr, CastExpr):
        return dialect.cast(expr_to_sql(expr.operand, dialect), expr.target)
    if isinstance(expr, InListExpr):
        maybe_not = "NOT " if expr.negated else ""
        items = ", ".join(expr_to_sql(i, dialect) for i in expr.items)
        return f"({expr_to_sql(expr.operand, dialect)} {maybe_not}IN ({items}))"
    if isinstance(expr, AggExpr):
        if expr.arg is None:
            return f"{expr.func}(*)"
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.func}({distinct}{expr_to_sql(expr.arg, dialect)})"
    if isinstance(expr, SubqueryExpr):
        return dialect.subquery(expr)
    raise TypeError(f"cannot deparse expression {type(expr).__name__}")


class _SqlBuilder:
    """Builds nested-subselect SQL for a plan (browser dialect)."""

    def __init__(self, pretty: bool):
        self._alias = (f"sub_{i}" for i in count())
        self._pretty = pretty

    def build(self, node: n.Node, depth: int = 0) -> str:
        method = getattr(self, "_" + type(node).__name__.lower(), None)
        if method is None:
            raise TypeError(f"cannot deparse operator {type(node).__name__}")
        return method(node, depth)

    # -- helpers ---------------------------------------------------------
    def _wrap(self, node: n.Node, depth: int) -> str:
        """Child as a FROM item: ``(sql) AS alias``."""
        inner = self.build(node, depth + 1)
        return f"({inner}) AS {next(self._alias)}"

    def _select_all(self, node: n.Node) -> str:
        return ", ".join(_quote(a.name) for a in node.schema)

    def _nl(self, depth: int) -> str:
        return ("\n" + "  " * depth) if self._pretty else " "

    # -- operators -------------------------------------------------------
    def _scan(self, node: n.Scan, depth: int) -> str:
        alias = _quote(node.alias)
        items = ", ".join(
            f"{alias}.{_quote(col)} AS {_quote(out.name)}"
            for col, out in zip(node.columns, node.schema)
        )
        return f"SELECT {items}{self._nl(depth)}FROM {_quote(node.table_name)} AS {alias}"

    def _singlerow(self, node: n.SingleRow, depth: int) -> str:
        return "SELECT 1 AS one_"

    def _project(self, node: n.Project, depth: int) -> str:
        items = ", ".join(f"{expr_to_sql(e)} AS {_quote(name)}" for name, e in node.items)
        if isinstance(node.child, n.SingleRow):
            return f"SELECT {items}"
        return f"SELECT {items}{self._nl(depth)}FROM {self._wrap(node.child, depth)}"

    def _select(self, node: n.Select, depth: int) -> str:
        return (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}{self._nl(depth)}"
            f"WHERE {expr_to_sql(node.condition)}"
        )

    def _join(self, node: n.Join, depth: int) -> str:
        keyword = {
            "inner": "JOIN",
            "left": "LEFT JOIN",
            "right": "RIGHT JOIN",
            "full": "FULL JOIN",
            "cross": "CROSS JOIN",
        }[node.kind]
        text = (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.left, depth)}{self._nl(depth)}"
            f"{keyword} {self._wrap(node.right, depth)}"
        )
        if node.condition is not None:
            text += f" ON {expr_to_sql(node.condition)}"
        return text

    def _aggregate(self, node: n.Aggregate, depth: int) -> str:
        items = [f"{expr_to_sql(e)} AS {_quote(name)}" for name, e in node.group_items]
        items += [f"{expr_to_sql(a)} AS {_quote(name)}" for name, a in node.agg_items]
        text = (
            f"SELECT {', '.join(items)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )
        if node.group_items:
            group = ", ".join(expr_to_sql(e) for _, e in node.group_items)
            text += f"{self._nl(depth)}GROUP BY {group}"
        return text

    def _setopnode(self, node: n.SetOpNode, depth: int) -> str:
        keyword = node.kind.upper() + (" ALL" if node.all else "")
        left = self.build(node.left, depth + 1)
        right = self.build(node.right, depth + 1)
        return f"({left}){self._nl(depth)}{keyword}{self._nl(depth)}({right})"

    def _distinct(self, node: n.Distinct, depth: int) -> str:
        return (
            f"SELECT DISTINCT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )

    def _sort(self, node: n.Sort, depth: int) -> str:
        keys = []
        for key in node.keys:
            text = expr_to_sql(key.expr) + (" DESC" if key.descending else " ASC")
            if key.nulls_first is True:
                text += " NULLS FIRST"
            elif key.nulls_first is False:
                text += " NULLS LAST"
            keys.append(text)
        return (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}{self._nl(depth)}"
            f"ORDER BY {', '.join(keys)}"
        )

    def _limit(self, node: n.Limit, depth: int) -> str:
        text = (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )
        if node.limit is not None:
            text += f"{self._nl(depth)}LIMIT {expr_to_sql(node.limit)}"
        if node.offset is not None:
            text += f"{self._nl(depth)}OFFSET {expr_to_sql(node.offset)}"
        return text

    def _provenancenode(self, node: n.ProvenanceNode, depth: int) -> str:
        # Only reachable before the provenance rewrite has run.
        inner = self.build(node.child, depth)
        marker = "SELECT PROVENANCE"
        if node.contribution != "influence":
            marker += f" ON CONTRIBUTION ({node.contribution.upper()})"
        return inner.replace("SELECT", marker, 1)

    def _baserelationnode(self, node: n.BaseRelationNode, depth: int) -> str:
        return self.build(node.child, depth)


def algebra_to_sql(node: n.Node, pretty: bool = True) -> str:
    """Deparse an algebra tree to SQL text (browser dialect)."""
    return _SqlBuilder(pretty).build(node)
