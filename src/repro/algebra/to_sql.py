"""Algebra -> SQL text: the browser deparser.

The Perm browser's pane 2 shows the *rewritten query as an SQL statement*
(Figure 4, marker 2). Perm obtains that text by deparsing the rewritten
PostgreSQL query tree; this module is the equivalent deparser for our
algebra trees. The generated SQL nests one subselect per operator, with
every intermediate attribute exposed under its unique (quoted) name, so
the output is both readable and re-parseable by :mod:`repro.sql.parser`.

Deparsing is split between tree shape (the :class:`_SqlBuilder` nesting
here) and scalar rendering, which is parameterized by a dialect object.
Dialects live in :mod:`repro.backend.dialects` behind the
:class:`~repro.backend.dialects.base.Dialect` interface — the browser
dialect for this module, the SQLite/DuckDB dialects for the pushdown
backends. The historic import surface (``SqlDialect``,
``BrowserDialect``, ``SQLiteDialect``, ``BROWSER_DIALECT``,
``quote_identifier_always``) is re-exported lazily below for
compatibility.

Dialects only cover scalar expressions; operator-tree compilation for
pushdown targets (ordering channel, fallbacks, sublink strategies)
lives in :mod:`repro.backend.compile`.
"""

from __future__ import annotations

from itertools import count

from . import nodes as n
from .expressions import Expr

_BARE = set("abcdefghijklmnopqrstuvwxyz0123456789_")

# Names re-exported from repro.backend.dialects on attribute access.
# Imported lazily (PEP 562): the dialect package imports the algebra
# expression classes, so a module-level import here would be circular
# whichever package is imported first.
_DIALECT_EXPORTS = (
    "Dialect",
    "SqlDialect",
    "BrowserDialect",
    "SQLiteDialect",
    "BROWSER_DIALECT",
    "quote_identifier_always",
)


def __getattr__(name: str):
    if name in _DIALECT_EXPORTS:
        from ..backend import dialects

        return getattr(dialects, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def expr_to_sql(expr: Expr, dialect=None) -> str:
    """Render a resolved expression as SQL text in *dialect* (the
    browser dialect when none is given)."""
    from ..backend.dialects.base import expr_to_sql as render

    return render(expr, dialect)


def _quote(name: str) -> str:
    if name and all(c in _BARE for c in name) and not name[0].isdigit():
        return name
    return '"' + name.replace('"', '""') + '"'


class _SqlBuilder:
    """Builds nested-subselect SQL for a plan (browser dialect)."""

    def __init__(self, pretty: bool):
        self._alias = (f"sub_{i}" for i in count())
        self._pretty = pretty

    def build(self, node: n.Node, depth: int = 0) -> str:
        method = getattr(self, "_" + type(node).__name__.lower(), None)
        if method is None:
            raise TypeError(f"cannot deparse operator {type(node).__name__}")
        return method(node, depth)

    # -- helpers ---------------------------------------------------------
    def _wrap(self, node: n.Node, depth: int) -> str:
        """Child as a FROM item: ``(sql) AS alias``."""
        inner = self.build(node, depth + 1)
        return f"({inner}) AS {next(self._alias)}"

    def _select_all(self, node: n.Node) -> str:
        return ", ".join(_quote(a.name) for a in node.schema)

    def _nl(self, depth: int) -> str:
        return ("\n" + "  " * depth) if self._pretty else " "

    # -- operators -------------------------------------------------------
    def _scan(self, node: n.Scan, depth: int) -> str:
        alias = _quote(node.alias)
        items = ", ".join(
            f"{alias}.{_quote(col)} AS {_quote(out.name)}"
            for col, out in zip(node.columns, node.schema)
        )
        return f"SELECT {items}{self._nl(depth)}FROM {_quote(node.table_name)} AS {alias}"

    def _singlerow(self, node: n.SingleRow, depth: int) -> str:
        return "SELECT 1 AS one_"

    def _project(self, node: n.Project, depth: int) -> str:
        items = ", ".join(f"{expr_to_sql(e)} AS {_quote(name)}" for name, e in node.items)
        if isinstance(node.child, n.SingleRow):
            return f"SELECT {items}"
        return f"SELECT {items}{self._nl(depth)}FROM {self._wrap(node.child, depth)}"

    def _select(self, node: n.Select, depth: int) -> str:
        return (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}{self._nl(depth)}"
            f"WHERE {expr_to_sql(node.condition)}"
        )

    def _join(self, node: n.Join, depth: int) -> str:
        keyword = {
            "inner": "JOIN",
            "left": "LEFT JOIN",
            "right": "RIGHT JOIN",
            "full": "FULL JOIN",
            "cross": "CROSS JOIN",
        }[node.kind]
        text = (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.left, depth)}{self._nl(depth)}"
            f"{keyword} {self._wrap(node.right, depth)}"
        )
        if node.condition is not None:
            text += f" ON {expr_to_sql(node.condition)}"
        return text

    def _aggregate(self, node: n.Aggregate, depth: int) -> str:
        items = [f"{expr_to_sql(e)} AS {_quote(name)}" for name, e in node.group_items]
        items += [f"{expr_to_sql(a)} AS {_quote(name)}" for name, a in node.agg_items]
        text = (
            f"SELECT {', '.join(items)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )
        if node.group_items:
            group = ", ".join(expr_to_sql(e) for _, e in node.group_items)
            text += f"{self._nl(depth)}GROUP BY {group}"
        return text

    def _setopnode(self, node: n.SetOpNode, depth: int) -> str:
        keyword = node.kind.upper() + (" ALL" if node.all else "")
        left = self.build(node.left, depth + 1)
        right = self.build(node.right, depth + 1)
        return f"({left}){self._nl(depth)}{keyword}{self._nl(depth)}({right})"

    def _distinct(self, node: n.Distinct, depth: int) -> str:
        return (
            f"SELECT DISTINCT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )

    def _sort(self, node: n.Sort, depth: int) -> str:
        keys = []
        for key in node.keys:
            text = expr_to_sql(key.expr) + (" DESC" if key.descending else " ASC")
            if key.nulls_first is True:
                text += " NULLS FIRST"
            elif key.nulls_first is False:
                text += " NULLS LAST"
            keys.append(text)
        return (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}{self._nl(depth)}"
            f"ORDER BY {', '.join(keys)}"
        )

    def _limit(self, node: n.Limit, depth: int) -> str:
        text = (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )
        if node.limit is not None:
            text += f"{self._nl(depth)}LIMIT {expr_to_sql(node.limit)}"
        if node.offset is not None:
            text += f"{self._nl(depth)}OFFSET {expr_to_sql(node.offset)}"
        return text

    def _provenancenode(self, node: n.ProvenanceNode, depth: int) -> str:
        # Only reachable before the provenance rewrite has run.
        inner = self.build(node.child, depth)
        marker = "SELECT PROVENANCE"
        if node.contribution != "influence":
            marker += f" ON CONTRIBUTION ({node.contribution.upper()})"
        return inner.replace("SELECT", marker, 1)

    def _baserelationnode(self, node: n.BaseRelationNode, depth: int) -> str:
        return self.build(node.child, depth)


def algebra_to_sql(node: n.Node, pretty: bool = True) -> str:
    """Deparse an algebra tree to SQL text (browser dialect)."""
    return _SqlBuilder(pretty).build(node)
