"""Algebra -> SQL text.

The Perm browser's pane 2 shows the *rewritten query as an SQL statement*
(Figure 4, marker 2). Perm obtains that text by deparsing the rewritten
PostgreSQL query tree; this module is the equivalent deparser for our
algebra trees. The generated SQL nests one subselect per operator, with
every intermediate attribute exposed under its unique (quoted) name, so
the output is both readable and re-parseable by :mod:`repro.sql.parser`.
"""

from __future__ import annotations

from itertools import count

from ..datatypes import SQLType, Value
from . import nodes as n
from .expressions import (
    AggExpr,
    BinOp,
    CaseExpr,
    CastExpr,
    Column,
    Const,
    DistinctTest,
    Expr,
    FuncExpr,
    InListExpr,
    IsNullTest,
    OuterColumn,
    Param,
    SubqueryExpr,
    UnOp,
)

_BARE = set("abcdefghijklmnopqrstuvwxyz0123456789_")
_TYPE_NAMES = {
    SQLType.INT: "int",
    SQLType.FLOAT: "float",
    SQLType.TEXT: "text",
    SQLType.BOOL: "bool",
    SQLType.NULL: "text",
}


def _quote(name: str) -> str:
    if name and all(c in _BARE for c in name) and not name[0].isdigit():
        return name
    return '"' + name.replace('"', '""') + '"'


def _literal(value: Value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def expr_to_sql(expr: Expr) -> str:
    """Render a resolved expression as SQL text."""
    if isinstance(expr, Column):
        return _quote(expr.name)
    if isinstance(expr, OuterColumn):
        # Correlated reference: rendered as a bare name; the enclosing
        # query exposes it (display + re-parse inside the right scope).
        return _quote(expr.name)
    if isinstance(expr, Const):
        if expr.value is None and expr.type is not SQLType.NULL:
            return f"CAST(NULL AS {_TYPE_NAMES[expr.type]})"
        return _literal(expr.value)
    if isinstance(expr, Param):
        # Re-parseable placeholder syntax (named slots keep their name).
        return f":{expr.name}" if expr.name is not None else "?"
    if isinstance(expr, BinOp):
        op = expr.op.upper() if expr.op in ("and", "or", "like", "ilike") else expr.op
        return f"({expr_to_sql(expr.left)} {op} {expr_to_sql(expr.right)})"
    if isinstance(expr, UnOp):
        if expr.op == "not":
            return f"(NOT {expr_to_sql(expr.operand)})"
        return f"({expr.op}{expr_to_sql(expr.operand)})"
    if isinstance(expr, IsNullTest):
        maybe_not = " NOT" if expr.negated else ""
        return f"({expr_to_sql(expr.operand)} IS{maybe_not} NULL)"
    if isinstance(expr, DistinctTest):
        maybe_not = " NOT" if expr.negated else ""
        return f"({expr_to_sql(expr.left)} IS{maybe_not} DISTINCT FROM {expr_to_sql(expr.right)})"
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(expr_to_sql(expr.operand))
        for condition, result in expr.whens:
            parts.append(f"WHEN {expr_to_sql(condition)} THEN {expr_to_sql(result)}")
        if expr.else_result is not None:
            parts.append(f"ELSE {expr_to_sql(expr.else_result)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, FuncExpr):
        return f"{expr.name}({', '.join(expr_to_sql(a) for a in expr.args)})"
    if isinstance(expr, CastExpr):
        return f"CAST({expr_to_sql(expr.operand)} AS {_TYPE_NAMES[expr.target]})"
    if isinstance(expr, InListExpr):
        maybe_not = "NOT " if expr.negated else ""
        items = ", ".join(expr_to_sql(i) for i in expr.items)
        return f"({expr_to_sql(expr.operand)} {maybe_not}IN ({items}))"
    if isinstance(expr, AggExpr):
        if expr.arg is None:
            return f"{expr.func}(*)"
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.func}({distinct}{expr_to_sql(expr.arg)})"
    if isinstance(expr, SubqueryExpr):
        inner = algebra_to_sql(expr.plan, pretty=False)
        if expr.kind == "scalar":
            return f"({inner})"
        if expr.kind == "exists":
            prefix = "NOT " if expr.negated else ""
            return f"({prefix}EXISTS ({inner}))"
        if expr.kind == "in":
            assert expr.operand is not None
            maybe_not = "NOT " if expr.negated else ""
            return f"({expr_to_sql(expr.operand)} {maybe_not}IN ({inner}))"
        if expr.kind == "quant":
            assert expr.operand is not None and expr.op and expr.quantifier
            return f"({expr_to_sql(expr.operand)} {expr.op} {expr.quantifier.upper()} ({inner}))"
    raise TypeError(f"cannot deparse expression {type(expr).__name__}")


class _SqlBuilder:
    """Builds nested-subselect SQL for a plan."""

    def __init__(self, pretty: bool):
        self._alias = (f"sub_{i}" for i in count())
        self._pretty = pretty

    def build(self, node: n.Node, depth: int = 0) -> str:
        method = getattr(self, "_" + type(node).__name__.lower(), None)
        if method is None:
            raise TypeError(f"cannot deparse operator {type(node).__name__}")
        return method(node, depth)

    # -- helpers ---------------------------------------------------------
    def _wrap(self, node: n.Node, depth: int) -> str:
        """Child as a FROM item: ``(sql) AS alias``."""
        inner = self.build(node, depth + 1)
        return f"({inner}) AS {next(self._alias)}"

    def _select_all(self, node: n.Node) -> str:
        return ", ".join(_quote(a.name) for a in node.schema)

    def _nl(self, depth: int) -> str:
        return ("\n" + "  " * depth) if self._pretty else " "

    # -- operators -------------------------------------------------------
    def _scan(self, node: n.Scan, depth: int) -> str:
        alias = _quote(node.alias)
        items = ", ".join(
            f"{alias}.{_quote(col)} AS {_quote(out.name)}"
            for col, out in zip(node.columns, node.schema)
        )
        return f"SELECT {items}{self._nl(depth)}FROM {_quote(node.table_name)} AS {alias}"

    def _singlerow(self, node: n.SingleRow, depth: int) -> str:
        return "SELECT 1 AS one_"

    def _project(self, node: n.Project, depth: int) -> str:
        items = ", ".join(f"{expr_to_sql(e)} AS {_quote(name)}" for name, e in node.items)
        if isinstance(node.child, n.SingleRow):
            return f"SELECT {items}"
        return f"SELECT {items}{self._nl(depth)}FROM {self._wrap(node.child, depth)}"

    def _select(self, node: n.Select, depth: int) -> str:
        return (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}{self._nl(depth)}"
            f"WHERE {expr_to_sql(node.condition)}"
        )

    def _join(self, node: n.Join, depth: int) -> str:
        keyword = {
            "inner": "JOIN",
            "left": "LEFT JOIN",
            "right": "RIGHT JOIN",
            "full": "FULL JOIN",
            "cross": "CROSS JOIN",
        }[node.kind]
        text = (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.left, depth)}{self._nl(depth)}"
            f"{keyword} {self._wrap(node.right, depth)}"
        )
        if node.condition is not None:
            text += f" ON {expr_to_sql(node.condition)}"
        return text

    def _aggregate(self, node: n.Aggregate, depth: int) -> str:
        items = [f"{expr_to_sql(e)} AS {_quote(name)}" for name, e in node.group_items]
        items += [f"{expr_to_sql(a)} AS {_quote(name)}" for name, a in node.agg_items]
        text = (
            f"SELECT {', '.join(items)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )
        if node.group_items:
            group = ", ".join(expr_to_sql(e) for _, e in node.group_items)
            text += f"{self._nl(depth)}GROUP BY {group}"
        return text

    def _setopnode(self, node: n.SetOpNode, depth: int) -> str:
        keyword = node.kind.upper() + (" ALL" if node.all else "")
        left = self.build(node.left, depth + 1)
        right = self.build(node.right, depth + 1)
        return f"({left}){self._nl(depth)}{keyword}{self._nl(depth)}({right})"

    def _distinct(self, node: n.Distinct, depth: int) -> str:
        return (
            f"SELECT DISTINCT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )

    def _sort(self, node: n.Sort, depth: int) -> str:
        keys = []
        for key in node.keys:
            text = expr_to_sql(key.expr) + (" DESC" if key.descending else " ASC")
            if key.nulls_first is True:
                text += " NULLS FIRST"
            elif key.nulls_first is False:
                text += " NULLS LAST"
            keys.append(text)
        return (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}{self._nl(depth)}"
            f"ORDER BY {', '.join(keys)}"
        )

    def _limit(self, node: n.Limit, depth: int) -> str:
        text = (
            f"SELECT {self._select_all(node)}{self._nl(depth)}"
            f"FROM {self._wrap(node.child, depth)}"
        )
        if node.limit is not None:
            text += f"{self._nl(depth)}LIMIT {expr_to_sql(node.limit)}"
        if node.offset is not None:
            text += f"{self._nl(depth)}OFFSET {expr_to_sql(node.offset)}"
        return text

    def _provenancenode(self, node: n.ProvenanceNode, depth: int) -> str:
        # Only reachable before the provenance rewrite has run.
        inner = self.build(node.child, depth)
        return inner.replace("SELECT", "SELECT PROVENANCE", 1)

    def _baserelationnode(self, node: n.BaseRelationNode, depth: int) -> str:
        return self.build(node.child, depth)


def algebra_to_sql(node: n.Node, pretty: bool = True) -> str:
    """Deparse an algebra tree to SQL text."""
    return _SqlBuilder(pretty).build(node)
