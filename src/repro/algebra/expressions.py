"""Resolved expression trees used inside algebra operators.

Unlike the AST (:mod:`repro.sql.ast`), every :class:`Column` here refers
to an attribute *name that is unique in the input schema* of the operator
holding the expression — the analyzer qualifies scan outputs as
``alias.column`` so two relations never clash. Correlated references
into an enclosing query are explicit :class:`OuterColumn` nodes with a
scope level, which is what lets the provenance rewriter reason about
sublinks (EDBT'09 companion paper) without re-running name resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from ..catalog.schema import Schema
from ..datatypes import SQLType, Value, type_of_value, unify_types
from ..errors import TypeCheckError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .nodes import Node


class Expr:
    """Base class for resolved expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Column(Expr):
    """Reference to an attribute of the current operator input by name."""

    name: str

    def __str__(self) -> str:  # pragma: no cover
        return self.name


@dataclass(frozen=True)
class OuterColumn(Expr):
    """Correlated reference to an attribute *level* scopes out (level >= 1)."""

    name: str
    level: int = 1

    def __str__(self) -> str:  # pragma: no cover
        return f"outer({self.level}).{self.name}"


@dataclass(frozen=True)
class Const(Expr):
    """A constant with an explicit static type (NULL constants keep the
    type of the attribute they stand in for — the rewrite rules pad
    non-contributing branches with *typed* NULLs)."""

    value: Value
    type: SQLType

    @staticmethod
    def of(value: Value) -> "Const":
        return Const(value, type_of_value(value))

    @staticmethod
    def null(type_: SQLType = SQLType.NULL) -> "Const":
        return Const(None, type_)

    def __str__(self) -> str:  # pragma: no cover
        return "null" if self.value is None else repr(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """A bind-parameter slot, filled in at execution time.

    The slot's value lives in the :class:`~repro.executor.expr_eval.ParamContext`
    shared by every compiled expression of one plan, so a prepared plan
    can be re-executed with fresh values without recompilation."""

    index: int
    name: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover
        return f":{self.name}" if self.name is not None else f"${self.index + 1}"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation: arithmetic, comparison, AND/OR, LIKE, ``||``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operation: ``not`` or ``-``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class IsNullTest(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class DistinctTest(Expr):
    """``IS [NOT] DISTINCT FROM`` — the null-safe comparison the
    aggregation/set-operation rewrite rules join on."""

    left: Expr
    right: Expr
    negated: bool = False  # True = IS NOT DISTINCT FROM


@dataclass(frozen=True)
class CaseExpr(Expr):
    operand: Optional[Expr]
    whens: tuple[tuple[Expr, Expr], ...]
    else_result: Optional[Expr] = None


@dataclass(frozen=True)
class FuncExpr(Expr):
    """Scalar function call (abs, upper, coalesce, ...)."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class CastExpr(Expr):
    operand: Expr
    target: SQLType


@dataclass(frozen=True)
class InListExpr(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class AggExpr(Expr):
    """Aggregate call; only valid in :class:`~repro.algebra.nodes.Aggregate`."""

    func: str  # count, sum, avg, min, max
    arg: Optional[Expr]  # None only for count(*)
    distinct: bool = False

    @property
    def star(self) -> bool:
        return self.arg is None


@dataclass(frozen=True, eq=False)
class SubqueryExpr(Expr):
    """A sublink: scalar / EXISTS / IN / quantified comparison.

    ``plan`` is a full algebra subtree whose :class:`OuterColumn`
    references (at level 1) bind to the schema of the operator holding
    this expression. ``eq=False`` because plans compare by identity.
    """

    kind: str  # "scalar" | "exists" | "in" | "quant"
    plan: "Node"
    operand: Optional[Expr] = None  # for "in" and "quant"
    op: Optional[str] = None  # comparison operator for "quant"
    quantifier: Optional[str] = None  # "any" | "all"
    negated: bool = False


# ---------------------------------------------------------------------------
# Traversal / transformation
# ---------------------------------------------------------------------------

def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield *expr* and all sub-expressions (not descending into subplans)."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, IsNullTest):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, DistinctTest):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, CaseExpr):
        if expr.operand is not None:
            yield from walk_expr(expr.operand)
        for condition, result in expr.whens:
            yield from walk_expr(condition)
            yield from walk_expr(result)
        if expr.else_result is not None:
            yield from walk_expr(expr.else_result)
    elif isinstance(expr, FuncExpr):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, CastExpr):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, InListExpr):
        yield from walk_expr(expr.operand)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, AggExpr):
        if expr.arg is not None:
            yield from walk_expr(expr.arg)
    elif isinstance(expr, SubqueryExpr):
        if expr.operand is not None:
            yield from walk_expr(expr.operand)


def map_expr(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up transformation. *fn* returns a replacement or ``None``
    to keep the (already child-rewritten) node.

    Identity-preserving: when neither *fn* nor any recursive call changes
    anything, the original object is returned, so callers can detect
    change with ``is`` (the optimizer's fixpoint loop relies on this).
    """

    def maybe(child: Optional[Expr]) -> Optional[Expr]:
        return map_expr(child, fn) if child is not None else None

    rebuilt: Expr = expr
    if isinstance(expr, BinOp):
        left, right = map_expr(expr.left, fn), map_expr(expr.right, fn)
        if left is not expr.left or right is not expr.right:
            rebuilt = BinOp(expr.op, left, right)
    elif isinstance(expr, UnOp):
        operand = map_expr(expr.operand, fn)
        if operand is not expr.operand:
            rebuilt = UnOp(expr.op, operand)
    elif isinstance(expr, IsNullTest):
        operand = map_expr(expr.operand, fn)
        if operand is not expr.operand:
            rebuilt = IsNullTest(operand, expr.negated)
    elif isinstance(expr, DistinctTest):
        left, right = map_expr(expr.left, fn), map_expr(expr.right, fn)
        if left is not expr.left or right is not expr.right:
            rebuilt = DistinctTest(left, right, expr.negated)
    elif isinstance(expr, CaseExpr):
        operand = maybe(expr.operand)
        whens = tuple((map_expr(c, fn), map_expr(r, fn)) for c, r in expr.whens)
        else_result = maybe(expr.else_result)
        if (
            operand is not expr.operand
            or else_result is not expr.else_result
            or any(c is not oc or r is not orr for (c, r), (oc, orr) in zip(whens, expr.whens))
        ):
            rebuilt = CaseExpr(operand, whens, else_result)
    elif isinstance(expr, FuncExpr):
        args = tuple(map_expr(a, fn) for a in expr.args)
        if any(a is not o for a, o in zip(args, expr.args)):
            rebuilt = FuncExpr(expr.name, args)
    elif isinstance(expr, CastExpr):
        operand = map_expr(expr.operand, fn)
        if operand is not expr.operand:
            rebuilt = CastExpr(operand, expr.target)
    elif isinstance(expr, InListExpr):
        operand = map_expr(expr.operand, fn)
        items = tuple(map_expr(i, fn) for i in expr.items)
        if operand is not expr.operand or any(i is not o for i, o in zip(items, expr.items)):
            rebuilt = InListExpr(operand, items, expr.negated)
    elif isinstance(expr, AggExpr):
        arg = maybe(expr.arg)
        if arg is not expr.arg:
            rebuilt = AggExpr(expr.func, arg, expr.distinct)
    elif isinstance(expr, SubqueryExpr):
        operand = maybe(expr.operand)
        if operand is not expr.operand:
            rebuilt = SubqueryExpr(
                expr.kind, expr.plan, operand, expr.op, expr.quantifier, expr.negated
            )
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def rename_columns(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rewrite :class:`Column` names according to *mapping*."""

    def rename(node: Expr) -> Optional[Expr]:
        if isinstance(node, Column) and node.name in mapping:
            return Column(mapping[node.name])
        return None

    return map_expr(expr, rename)


def columns_used(expr: Expr) -> set[str]:
    """Names of level-0 columns referenced by *expr* (subplans included:
    their level-1 outer references bind to this operator's input)."""
    used: set[str] = set()
    for node in walk_expr(expr):
        if isinstance(node, Column):
            used.add(node.name)
        elif isinstance(node, SubqueryExpr):
            used |= _outer_columns_of_plan(node.plan, level=1)
    return used


def plan_is_correlated(plan: "Node", min_level: int = 1) -> bool:
    """Whether *plan* references any enclosing scope at all — at any
    level. A plan with only level-2+ references still varies with its
    (grand)parent rows, so its result must not be cached per-plan."""
    from .tree import walk_tree

    for node in walk_tree(plan):
        for expr in node.expressions():
            for sub in walk_expr(expr):
                if isinstance(sub, OuterColumn) and sub.level >= min_level:
                    return True
                if isinstance(sub, SubqueryExpr) and plan_is_correlated(
                    sub.plan, min_level + 1
                ):
                    return True
    return False


def _outer_columns_of_plan(plan: "Node", level: int) -> set[str]:
    """Names referenced by *plan* as :class:`OuterColumn` at *level*.

    All operators inside one plan share the same correlation level;
    nesting increases only when crossing a :class:`SubqueryExpr`.
    """
    from .tree import walk_tree  # local import to avoid a cycle

    used: set[str] = set()
    for node in walk_tree(plan):
        for expr in node.expressions():
            for sub in walk_expr(expr):
                if isinstance(sub, OuterColumn) and sub.level == level:
                    used.add(sub.name)
                elif isinstance(sub, SubqueryExpr):
                    used |= _outer_columns_of_plan(sub.plan, level + 1)
    return used


# ---------------------------------------------------------------------------
# Static typing of expressions
# ---------------------------------------------------------------------------

_AGG_FUNCS = frozenset({"count", "sum", "avg", "min", "max"})

_SCALAR_FUNC_TYPES: dict[str, Callable[[list[SQLType]], SQLType]] = {}


def _register_func(name: str, fn: Callable[[list[SQLType]], SQLType]) -> None:
    _SCALAR_FUNC_TYPES[name] = fn


_register_func("abs", lambda ts: ts[0] if ts and ts[0] is not SQLType.NULL else SQLType.FLOAT)
_register_func("round", lambda ts: SQLType.FLOAT if len(ts) == 1 else SQLType.FLOAT)
_register_func("floor", lambda ts: SQLType.INT)
_register_func("ceil", lambda ts: SQLType.INT)
_register_func("sqrt", lambda ts: SQLType.FLOAT)
_register_func("power", lambda ts: SQLType.FLOAT)
_register_func("mod", lambda ts: SQLType.INT)
_register_func("upper", lambda ts: SQLType.TEXT)
_register_func("lower", lambda ts: SQLType.TEXT)
_register_func("length", lambda ts: SQLType.INT)
_register_func("char_length", lambda ts: SQLType.INT)
_register_func("substring", lambda ts: SQLType.TEXT)
_register_func("substr", lambda ts: SQLType.TEXT)
_register_func("trim", lambda ts: SQLType.TEXT)
_register_func("ltrim", lambda ts: SQLType.TEXT)
_register_func("rtrim", lambda ts: SQLType.TEXT)
_register_func("replace", lambda ts: SQLType.TEXT)
_register_func("concat", lambda ts: SQLType.TEXT)
_register_func("greatest", lambda ts: _unify_all(ts, "greatest"))
_register_func("least", lambda ts: _unify_all(ts, "least"))
_register_func("coalesce", lambda ts: _unify_all(ts, "coalesce"))
_register_func("nullif", lambda ts: ts[0] if ts else SQLType.NULL)


def _unify_all(types: list[SQLType], context: str) -> SQLType:
    result = SQLType.NULL
    for t in types:
        result = unify_types(result, t, context)
    return result


def scalar_function_names() -> frozenset[str]:
    return frozenset(_SCALAR_FUNC_TYPES)


def is_aggregate_name(name: str) -> bool:
    return name in _AGG_FUNCS


_COMPARISONS = {"=", "<>", "<", ">", "<=", ">=", "like", "ilike"}
_BOOL_OPS = {"and", "or"}
_ARITH = {"+", "-", "*", "/", "%"}


def agg_result_type(func: str, arg_type: SQLType | None) -> SQLType:
    """Static result type of an aggregate."""
    if func == "count":
        return SQLType.INT
    if arg_type is None:
        raise TypeCheckError(f"aggregate {func} requires an argument")
    if func == "avg":
        return SQLType.FLOAT
    if func == "sum":
        return SQLType.FLOAT if arg_type is SQLType.FLOAT else SQLType.INT
    if func in ("min", "max"):
        return arg_type
    raise TypeCheckError(f"unknown aggregate {func!r}")


def infer_type(expr: Expr, schema: Schema, outer_schemas: tuple[Schema, ...] = ()) -> SQLType:
    """Static type of *expr* against *schema* (and enclosing scopes for
    :class:`OuterColumn` references)."""
    if isinstance(expr, Column):
        return schema.attribute(expr.name).type
    if isinstance(expr, OuterColumn):
        if expr.level <= len(outer_schemas):
            return outer_schemas[expr.level - 1].attribute(expr.name).type
        return SQLType.NULL
    if isinstance(expr, Const):
        return expr.type
    if isinstance(expr, Param):
        # A parameter's type is unknown until bind time; NULL unifies
        # with anything (the analyzer records expected types separately,
        # see repro.analyzer.params).
        return SQLType.NULL
    if isinstance(expr, BinOp):
        lt = infer_type(expr.left, schema, outer_schemas)
        rt = infer_type(expr.right, schema, outer_schemas)
        if expr.op in _BOOL_OPS or expr.op in _COMPARISONS:
            return SQLType.BOOL
        if expr.op == "||":
            return SQLType.TEXT
        if expr.op in _ARITH:
            if expr.op == "/" and (lt is SQLType.FLOAT or rt is SQLType.FLOAT):
                return SQLType.FLOAT
            return unify_types(lt, rt, f"operator {expr.op}")
        raise TypeCheckError(f"unknown operator {expr.op!r}")
    if isinstance(expr, UnOp):
        if expr.op == "not":
            return SQLType.BOOL
        return infer_type(expr.operand, schema, outer_schemas)
    if isinstance(expr, (IsNullTest, DistinctTest, InListExpr)):
        return SQLType.BOOL
    if isinstance(expr, CaseExpr):
        result = SQLType.NULL
        for _, branch in expr.whens:
            result = unify_types(result, infer_type(branch, schema, outer_schemas), "CASE")
        if expr.else_result is not None:
            result = unify_types(result, infer_type(expr.else_result, schema, outer_schemas), "CASE")
        return result
    if isinstance(expr, FuncExpr):
        types = [infer_type(a, schema, outer_schemas) for a in expr.args]
        try:
            return _SCALAR_FUNC_TYPES[expr.name](types)
        except KeyError:
            raise TypeCheckError(f"unknown function {expr.name!r}") from None
    if isinstance(expr, CastExpr):
        return expr.target
    if isinstance(expr, AggExpr):
        arg_type = infer_type(expr.arg, schema, outer_schemas) if expr.arg is not None else None
        return agg_result_type(expr.func, arg_type)
    if isinstance(expr, SubqueryExpr):
        if expr.kind == "scalar":
            return expr.plan.schema[0].type
        return SQLType.BOOL
    raise TypeCheckError(f"cannot type expression {type(expr).__name__}")


def conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Split a condition on AND (None -> empty list)."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def combine_conjuncts(parts: list[Expr]) -> Optional[Expr]:
    """Rebuild an AND chain; empty list -> None (always true)."""
    if not parts:
        return None
    result = parts[0]
    for part in parts[1:]:
        result = BinOp("and", result, part)
    return result
