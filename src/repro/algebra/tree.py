"""Tree utilities for algebra plans: traversal and transformation."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .expressions import SubqueryExpr, map_expr, walk_expr
from .nodes import Node


def walk_tree(root: Node) -> Iterator[Node]:
    """Pre-order traversal of operators (not descending into subplans)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def walk_tree_with_subplans(root: Node) -> Iterator[Node]:
    """Pre-order traversal including sublink subplans."""
    for node in walk_tree(root):
        yield node
        for expr in node.expressions():
            for sub in walk_expr(expr):
                if isinstance(sub, SubqueryExpr):
                    yield from walk_tree_with_subplans(sub.plan)


def replace_children(node: Node, children: list[Node]) -> Node:
    """Rebuild *node* over new children (schemas are recomputed)."""
    return node.with_children(children)


def copy_tree(root: Node) -> Node:
    """Structural copy of a plan (expressions are immutable and shared)."""
    return root.with_children([copy_tree(c) for c in root.children])


def transform_tree(root: Node, fn: Callable[[Node], Optional[Node]]) -> Node:
    """Bottom-up transformation: children first, then *fn* on the rebuilt
    node; *fn* returns a replacement or ``None`` to keep the node."""
    rebuilt = root.with_children([transform_tree(c, fn) for c in root.children])
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def transform_subplans(root: Node, fn: Callable[[Node], Node]) -> Node:
    """Apply *fn* to every sublink subplan in the tree (and recursively to
    subplans inside those plans)."""

    def rewrite_node(node: Node) -> Optional[Node]:
        changed = False
        new_exprs = []
        for expr in node.expressions():
            def replace(sub):
                if isinstance(sub, SubqueryExpr):
                    new_plan = fn(transform_subplans(sub.plan, fn))
                    return SubqueryExpr(
                        sub.kind, new_plan, sub.operand, sub.op, sub.quantifier, sub.negated
                    )
                return None

            new_expr = map_expr(expr, replace)
            new_exprs.append(new_expr)
            if new_expr is not expr:
                changed = True
        if not changed:
            return None
        return _replace_expressions(node, new_exprs)

    return transform_tree(root, rewrite_node)


def _replace_expressions(node: Node, new_exprs: list) -> Node:
    """Rebuild *node* with its expression slots replaced in order."""
    from . import nodes as n

    if isinstance(node, n.Project):
        items = [(name, e) for (name, _), e in zip(node.items, new_exprs)]
        return n.Project(node.child, items)
    if isinstance(node, n.Select):
        return n.Select(node.child, new_exprs[0])
    if isinstance(node, n.Join):
        condition = new_exprs[0] if node.condition is not None else None
        return n.Join(node.left, node.right, node.kind, condition)
    if isinstance(node, n.Aggregate):
        count = len(node.group_items)
        group_items = [(name, e) for (name, _), e in zip(node.group_items, new_exprs[:count])]
        agg_items = [(name, e) for (name, _), e in zip(node.agg_items, new_exprs[count:])]
        return n.Aggregate(node.child, group_items, agg_items)
    if isinstance(node, n.Sort):
        keys = [
            n.SortKey(e, k.descending, k.nulls_first) for k, e in zip(node.keys, new_exprs)
        ]
        return n.Sort(node.child, keys)
    if isinstance(node, n.Limit):
        limit = new_exprs[0] if node.limit is not None else None
        offset_index = 1 if node.limit is not None else 0
        offset = new_exprs[offset_index] if node.offset is not None else None
        return n.Limit(node.child, limit, offset)
    return node


def count_nodes(root: Node) -> int:
    """Number of operators in the plan, subplans included."""
    return sum(1 for _ in walk_tree_with_subplans(root))


def tree_depth(root: Node) -> int:
    """Height of the operator tree (subplans not included)."""
    if not root.children:
        return 1
    return 1 + max(tree_depth(c) for c in root.children)
