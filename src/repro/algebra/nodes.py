"""Logical algebra operators.

Every node computes its output :class:`~repro.catalog.schema.Schema` at
construction time from its children, so the provenance rewriter can build
new trees and immediately read schemas off them — exactly how Perm's
rewrite module manipulates PostgreSQL query trees whose target lists are
kept consistent.

Attribute names are unique within each operator's output (the analyzer
qualifies scan outputs as ``alias.column``; the rewriter generates fresh
``prov_...`` names), which makes name-based column references stable
under rewriting.

Two marker nodes carry SQL-PLE information from the analyzer to the
provenance rewriter and never survive into a final plan:

* :class:`ProvenanceNode` — "compute the provenance of my subtree" with a
  given contribution semantics (``SELECT PROVENANCE ...``);
* :class:`BaseRelationNode` — "treat my subtree as a base relation"
  (``BASERELATION``) and/or "these attributes of my subtree already are
  provenance" (``PROVENANCE (attrs)`` / eager-provenance catalog entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..catalog.schema import Attribute, Schema
from ..datatypes import SQLType, unify_types
from ..errors import AnalyzeError
from .expressions import AggExpr, Expr, infer_type

__all__ = [
    "Node",
    "Scan",
    "SingleRow",
    "Project",
    "Select",
    "Join",
    "Aggregate",
    "SetOpNode",
    "Distinct",
    "Sort",
    "SortKey",
    "Limit",
    "ProvenanceNode",
    "BaseRelationNode",
]

JOIN_KINDS = ("inner", "left", "right", "full", "cross")
SETOP_KINDS = ("union", "intersect", "except")


class Node:
    """Base class for logical operators."""

    __slots__ = ("schema",)

    schema: Schema

    @property
    def children(self) -> tuple["Node", ...]:
        raise NotImplementedError

    def with_children(self, children: Sequence["Node"]) -> "Node":
        """Rebuild this node with new children (schemas recomputed)."""
        raise NotImplementedError

    def expressions(self) -> Iterator[Expr]:
        """All expressions held directly by this node."""
        return iter(())

    def label(self) -> str:
        """Short operator label for algebra-tree rendering (Figure 4)."""
        return type(self).__name__


class Scan(Node):
    """Base-table (or unfolded-view materialization) access.

    ``table_name`` is the catalog name; ``alias`` the query-level alias;
    ``columns`` the stored column names in table order. The output schema
    qualifies each attribute as ``alias.column``.
    """

    __slots__ = ("table_name", "alias", "columns")

    def __init__(self, table_name: str, alias: str, schema_in: Schema):
        self.table_name = table_name
        self.alias = alias
        self.columns = schema_in.names
        self.schema = Schema(
            Attribute(f"{alias}.{attribute.name}", attribute.type) for attribute in schema_in
        )

    @property
    def children(self) -> tuple[Node, ...]:
        return ()

    def with_children(self, children: Sequence[Node]) -> "Scan":
        assert not children
        clone = Scan.__new__(Scan)
        clone.table_name = self.table_name
        clone.alias = self.alias
        clone.columns = list(self.columns)
        clone.schema = self.schema
        return clone

    def label(self) -> str:
        if self.alias and self.alias.lower() != self.table_name.lower():
            return f"Scan({self.table_name} AS {self.alias})"
        return f"Scan({self.table_name})"


class SingleRow(Node):
    """Produces exactly one empty tuple (SELECT without FROM)."""

    __slots__ = ()

    def __init__(self) -> None:
        self.schema = Schema(())

    @property
    def children(self) -> tuple[Node, ...]:
        return ()

    def with_children(self, children: Sequence[Node]) -> "SingleRow":
        assert not children
        return SingleRow()

    def label(self) -> str:
        return "SingleRow"


class Project(Node):
    """Generalized projection: named output expressions."""

    __slots__ = ("child", "items")

    def __init__(self, child: Node, items: Sequence[tuple[str, Expr]]):
        self.child = child
        self.items = list(items)
        if not self.items:
            raise AnalyzeError("projection with empty output list")
        self.schema = Schema(
            Attribute(name, infer_type(expr, child.schema)) for name, expr in self.items
        )

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> "Project":
        (child,) = children
        return Project(child, self.items)

    def expressions(self) -> Iterator[Expr]:
        for _, expr in self.items:
            yield expr

    def label(self) -> str:
        names = ", ".join(name for name, _ in self.items)
        return f"Π[{_shorten(names)}]"


class Select(Node):
    """Selection σ (WHERE / HAVING / join-filter placement)."""

    __slots__ = ("child", "condition")

    def __init__(self, child: Node, condition: Expr):
        self.child = child
        self.condition = condition
        self.schema = child.schema

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> "Select":
        (child,) = children
        return Select(child, self.condition)

    def expressions(self) -> Iterator[Expr]:
        yield self.condition

    def label(self) -> str:
        from .to_sql import expr_to_sql

        return f"σ[{_shorten(expr_to_sql(self.condition))}]"


class Join(Node):
    """Inner / outer / cross join. Output schema concatenates both inputs;
    the analyzer guarantees disjoint attribute names."""

    __slots__ = ("left", "right", "kind", "condition")

    def __init__(self, left: Node, right: Node, kind: str, condition: Optional[Expr]):
        if kind not in JOIN_KINDS:
            raise AnalyzeError(f"unknown join kind {kind!r}")
        if kind == "cross" and condition is not None:
            raise AnalyzeError("cross join cannot have a condition")
        if kind != "cross" and condition is None:
            raise AnalyzeError(f"{kind} join requires a condition")
        self.left = left
        self.right = right
        self.kind = kind
        self.condition = condition
        self.schema = left.schema.concat(right.schema)

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Node]) -> "Join":
        left, right = children
        return Join(left, right, self.kind, self.condition)

    def expressions(self) -> Iterator[Expr]:
        if self.condition is not None:
            yield self.condition

    def label(self) -> str:
        from .to_sql import expr_to_sql

        symbol = {"inner": "⋈", "left": "⟕", "right": "⟖", "full": "⟗", "cross": "×"}[self.kind]
        if self.condition is None:
            return symbol
        return f"{symbol}[{_shorten(expr_to_sql(self.condition))}]"


class Aggregate(Node):
    """Grouping + aggregation α. Output = group keys then aggregates."""

    __slots__ = ("child", "group_items", "agg_items")

    def __init__(
        self,
        child: Node,
        group_items: Sequence[tuple[str, Expr]],
        agg_items: Sequence[tuple[str, AggExpr]],
    ):
        self.child = child
        self.group_items = list(group_items)
        self.agg_items = list(agg_items)
        attributes = [
            Attribute(name, infer_type(expr, child.schema)) for name, expr in self.group_items
        ]
        attributes += [
            Attribute(name, infer_type(agg, child.schema)) for name, agg in self.agg_items
        ]
        if not attributes:
            raise AnalyzeError("aggregate with no outputs")
        self.schema = Schema(attributes)

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_items, self.agg_items)

    def expressions(self) -> Iterator[Expr]:
        for _, expr in self.group_items:
            yield expr
        for _, agg in self.agg_items:
            yield agg

    def label(self) -> str:
        groups = ", ".join(name for name, _ in self.group_items)
        aggs = ", ".join(f"{agg.func}" for _, agg in self.agg_items)
        return f"α[{_shorten(groups)}; {_shorten(aggs)}]"


class SetOpNode(Node):
    """UNION / INTERSECT / EXCEPT (set) or their ALL (bag) variants.

    Output attribute names come from the left input; types are unified
    per position.
    """

    __slots__ = ("left", "right", "kind", "all")

    def __init__(self, left: Node, right: Node, kind: str, all: bool):
        if kind not in SETOP_KINDS:
            raise AnalyzeError(f"unknown set operation {kind!r}")
        if len(left.schema) != len(right.schema):
            raise AnalyzeError(
                f"{kind.upper()} inputs have different arity "
                f"({len(left.schema)} vs {len(right.schema)})"
            )
        self.left = left
        self.right = right
        self.kind = kind
        self.all = all
        attributes = []
        for left_attr, right_attr in zip(left.schema, right.schema):
            unified = unify_types(left_attr.type, right_attr.type, kind.upper())
            attributes.append(Attribute(left_attr.name, unified))
        self.schema = Schema(attributes)

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Node]) -> "SetOpNode":
        left, right = children
        return SetOpNode(left, right, self.kind, self.all)

    def label(self) -> str:
        symbol = {"union": "∪", "intersect": "∩", "except": "−"}[self.kind]
        return f"{symbol}{' ALL' if self.all else ''}"


class Distinct(Node):
    """Duplicate elimination δ."""

    __slots__ = ("child",)

    def __init__(self, child: Node):
        self.child = child
        self.schema = child.schema

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> "Distinct":
        (child,) = children
        return Distinct(child)

    def label(self) -> str:
        return "δ"


@dataclass(frozen=True)
class SortKey:
    expr: Expr
    descending: bool = False
    nulls_first: Optional[bool] = None


class Sort(Node):
    """ORDER BY."""

    __slots__ = ("child", "keys")

    def __init__(self, child: Node, keys: Sequence[SortKey]):
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def expressions(self) -> Iterator[Expr]:
        for key in self.keys:
            yield key.expr

    def label(self) -> str:
        from .to_sql import expr_to_sql

        keys = ", ".join(
            expr_to_sql(k.expr) + (" DESC" if k.descending else "") for k in self.keys
        )
        return f"Sort[{_shorten(keys)}]"


class Limit(Node):
    """LIMIT / OFFSET with constant expressions."""

    __slots__ = ("child", "limit", "offset")

    def __init__(self, child: Node, limit: Optional[Expr], offset: Optional[Expr]):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.schema = child.schema

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> "Limit":
        (child,) = children
        return Limit(child, self.limit, self.offset)

    def expressions(self) -> Iterator[Expr]:
        if self.limit is not None:
            yield self.limit
        if self.offset is not None:
            yield self.offset

    def label(self) -> str:
        from .to_sql import expr_to_sql

        parts = []
        if self.limit is not None:
            parts.append(f"limit {expr_to_sql(self.limit)}")
        if self.offset is not None:
            parts.append(f"offset {expr_to_sql(self.offset)}")
        return f"Limit[{', '.join(parts)}]"


class ProvenanceNode(Node):
    """SQL-PLE marker: compute provenance of the subtree below.

    ``contribution`` is ``influence``, ``copy partial`` or
    ``copy complete``. Consumed by :mod:`repro.core.provenance`.
    """

    __slots__ = ("child", "contribution")

    def __init__(self, child: Node, contribution: str = "influence"):
        self.child = child
        self.contribution = contribution
        self.schema = child.schema

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> "ProvenanceNode":
        (child,) = children
        return ProvenanceNode(child, self.contribution)

    def label(self) -> str:
        return f"PROVENANCE({self.contribution})"


class BaseRelationNode(Node):
    """SQL-PLE marker: treat the subtree as a base relation during the
    provenance rewrite (``BASERELATION``), optionally with externally
    supplied provenance attributes (``PROVENANCE (attrs)``).

    ``relation_label`` is the name used when generating
    ``prov_<rel>_<attr>`` columns for this pseudo base relation.
    """

    __slots__ = ("child", "relation_label", "provenance_attrs")

    def __init__(
        self,
        child: Node,
        relation_label: str,
        provenance_attrs: Optional[tuple[str, ...]] = None,
    ):
        self.child = child
        self.relation_label = relation_label
        self.provenance_attrs = provenance_attrs
        self.schema = child.schema

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> "BaseRelationNode":
        (child,) = children
        return BaseRelationNode(child, self.relation_label, self.provenance_attrs)

    def label(self) -> str:
        if self.provenance_attrs is not None:
            return f"BASERELATION({self.relation_label}, PROVENANCE {list(self.provenance_attrs)})"
        return f"BASERELATION({self.relation_label})"


def _shorten(text: str, limit: int = 48) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"
