"""``python -m repro`` launches the interactive shell."""

import sys

from .cli import main

sys.exit(main())
