"""Name-resolution scopes.

A :class:`Scope` describes the attributes visible to expressions of one
SELECT block: one :class:`ScopeEntry` per FROM item, each mapping the
item's exposed column names to the unique attribute names of the algebra
tree (``alias.column``). Scopes chain to their enclosing query's scope,
which is how correlated sublinks resolve to
:class:`~repro.algebra.expressions.OuterColumn` references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import AnalyzeError


@dataclass
class ScopeEntry:
    """One FROM item: alias plus exposed-name -> unique-attribute mapping.

    ``ordered`` keeps every exposed column in declaration order (used for
    ``*`` expansion); ``columns`` maps lower-cased exposed names to unique
    attribute names for reference resolution (first occurrence wins when
    a derived table exposes duplicate names).
    """

    alias: str
    ordered: list[tuple[str, str]] = field(default_factory=list)
    columns: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_names(cls, alias: str, exposed: list[str], unique: list[str]) -> "ScopeEntry":
        if len(exposed) != len(unique):
            raise AnalyzeError(f"alias {alias!r}: {len(exposed)} columns vs {len(unique)} names")
        entry = cls(alias=alias)
        for name, target in zip(exposed, unique):
            entry.ordered.append((name, target))
            entry.columns.setdefault(name.lower(), target)
        return entry


class Scope:
    """Attributes visible to one SELECT block, chained to outer scopes."""

    def __init__(self, entries: list[ScopeEntry], parent: Optional["Scope"] = None):
        self.entries = entries
        self.parent = parent
        seen: set[str] = set()
        for entry in entries:
            key = entry.alias.lower()
            if key in seen:
                raise AnalyzeError(f"table alias {entry.alias!r} specified more than once")
            seen.add(key)

    def child(self, entries: list[ScopeEntry]) -> "Scope":
        return Scope(entries, parent=self)

    # ------------------------------------------------------------------
    def resolve_local(self, qualifier: Optional[str], name: str) -> Optional[str]:
        """Resolve in this scope only; returns the unique attribute name,
        ``None`` if not found. Raises on ambiguity."""
        key = name.lower()
        if qualifier is not None:
            for entry in self.entries:
                if entry.alias.lower() == qualifier.lower():
                    if key in entry.columns:
                        return entry.columns[key]
                    raise AnalyzeError(f"column {name!r} not found in relation {qualifier!r}")
            return None
        matches = [entry.columns[key] for entry in self.entries if key in entry.columns]
        if len(matches) > 1:
            raise AnalyzeError(f"column reference {name!r} is ambiguous")
        return matches[0] if matches else None

    def resolve(self, qualifier: Optional[str], name: str) -> tuple[str, int]:
        """Resolve through the scope chain.

        Returns ``(unique_attribute_name, level)`` where level 0 is this
        scope and level N a correlated reference N queries out.
        """
        scope: Optional[Scope] = self
        level = 0
        while scope is not None:
            found = scope.resolve_local(qualifier, name)
            if found is not None:
                return found, level
            scope = scope.parent
            level += 1
        full = f"{qualifier}.{name}" if qualifier else name
        raise AnalyzeError(f"column {full!r} does not exist")

    def entry(self, alias: str) -> Optional[ScopeEntry]:
        for entry in self.entries:
            if entry.alias.lower() == alias.lower():
                return entry
        return None

    def star_columns(self, qualifier: Optional[str] = None) -> list[tuple[str, str]]:
        """(exposed name, unique attribute) pairs for ``*`` / ``alias.*``."""
        if qualifier is not None:
            entry = self.entry(qualifier)
            if entry is None:
                raise AnalyzeError(f"relation {qualifier!r} not found in FROM clause")
            return list(entry.ordered)
        out: list[tuple[str, str]] = []
        for entry in self.entries:
            out.extend(entry.ordered)
        return out
