"""Parameter typing: expected SQL types for bind-parameter slots.

A placeholder has no type of its own (``infer_type`` reports NULL, which
unifies with anything), but its *context* usually pins one down: in
``WHERE a > ?`` the slot must be comparable to ``a``. This module walks a
resolved algebra tree after analysis and records, per parameter slot, the
static type of the expression it is compared with / combined with. The
prepared-statement front end (:mod:`repro.engine.prepared`) checks bound
values against these expectations so a type mismatch fails at bind time
with a clear error instead of deep inside the executor.

The inference is deliberately best-effort: slots used only in opaque
contexts stay untyped and accept any value.
"""

from __future__ import annotations

from typing import Optional

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..algebra.tree import walk_tree
from ..catalog.schema import Schema
from ..datatypes import SQLType
from ..errors import PermError

_COMPARABLE_OPS = frozenset({"=", "<>", "<", ">", "<=", ">=", "+", "-", "*", "/", "%"})

_EMPTY = Schema(())


def infer_param_types(
    root: an.Node, outer_schemas: tuple[Schema, ...] = ()
) -> dict[int, SQLType]:
    """Map parameter slot index -> expected :class:`SQLType`.

    Only slots whose expected type can be pinned down appear in the
    result. When a slot is used in several contexts, the first one
    encountered wins (the contexts agree in any well-typed query).
    """
    found: dict[int, SQLType] = {}
    _walk_plan(root, outer_schemas, found)
    return found


def _input_schema(node: an.Node) -> Schema:
    """Schema the node's expressions are resolved against."""
    if isinstance(node, an.Join):
        return node.schema  # concatenation of both inputs
    if isinstance(node, an.Limit):
        return _EMPTY  # LIMIT/OFFSET expressions reference no columns
    children = node.children
    return children[0].schema if children else node.schema


def _walk_plan(
    root: an.Node, outer: tuple[Schema, ...], found: dict[int, SQLType]
) -> None:
    for node in walk_tree(root):
        schema = _input_schema(node)
        for expr in node.expressions():
            for sub in ax.walk_expr(expr):
                _match(sub, schema, outer, found)
                if isinstance(sub, ax.SubqueryExpr):
                    _walk_plan(sub.plan, (schema, *outer), found)


def _match(
    expr: ax.Expr, schema: Schema, outer: tuple[Schema, ...], found: dict[int, SQLType]
) -> None:
    if isinstance(expr, ax.BinOp) and expr.op in _COMPARABLE_OPS:
        _pair(expr.left, expr.right, schema, outer, found)
    elif isinstance(expr, ax.BinOp) and expr.op in ("||", "like", "ilike"):
        # Both operands must be text regardless of the other side.
        for side in (expr.left, expr.right):
            if isinstance(side, ax.Param):
                _record(found, side, SQLType.TEXT)
    elif isinstance(expr, ax.BinOp) and expr.op in ("and", "or"):
        for side in (expr.left, expr.right):
            if isinstance(side, ax.Param):
                _record(found, side, SQLType.BOOL)
    elif isinstance(expr, ax.UnOp) and expr.op == "not":
        if isinstance(expr.operand, ax.Param):
            _record(found, expr.operand, SQLType.BOOL)
    elif isinstance(expr, ax.DistinctTest):
        _pair(expr.left, expr.right, schema, outer, found)
    elif isinstance(expr, ax.InListExpr):
        for item in expr.items:
            _pair(expr.operand, item, schema, outer, found)
    elif isinstance(expr, ax.SubqueryExpr) and expr.kind in ("in", "quant"):
        if isinstance(expr.operand, ax.Param):
            _record(found, expr.operand, expr.plan.schema[0].type)


def _pair(
    a: ax.Expr,
    b: ax.Expr,
    schema: Schema,
    outer: tuple[Schema, ...],
    found: dict[int, SQLType],
) -> None:
    """One side a parameter, the other a typed expression -> record it."""
    if isinstance(a, ax.Param) == isinstance(b, ax.Param):
        return  # neither (nothing to do) or both (mutually untypable)
    param, other = (a, b) if isinstance(a, ax.Param) else (b, a)
    _record(found, param, _static_type(other, schema, outer))


def _static_type(
    expr: ax.Expr, schema: Schema, outer: tuple[Schema, ...]
) -> Optional[SQLType]:
    try:
        inferred = ax.infer_type(expr, schema, outer)
    except PermError:
        return None
    return None if inferred is SQLType.NULL else inferred


def _record(
    found: dict[int, SQLType], param: ax.Param, type_: Optional[SQLType]
) -> None:
    if type_ is not None and param.index not in found:
        found[param.index] = type_
