"""The analyzer: turns parsed ASTs into resolved algebra trees.

Responsibilities (the "Parser & Analyzer" box of the paper's Figure 3):

* name resolution against the catalog and FROM-clause scopes, including
  correlated references into enclosing queries;
* view unfolding — view references are replaced by their defining query's
  algebra, re-qualified under the view alias;
* aggregation analysis: GROUP BY matching, aggregate extraction, HAVING;
* typing of every expression (via schema construction);
* capture of SQL-PLE constructs as :class:`ProvenanceNode` /
  :class:`BaseRelationNode` markers for the provenance rewriter.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Optional

from ..algebra import expressions as ax
from ..algebra import nodes as an
from ..catalog.catalog import Catalog
from ..catalog.schema import Schema
from ..datatypes import SQLType, type_from_name
from ..errors import AnalyzeError, CatalogError
from ..sql import ast
from .scope import Scope, ScopeEntry

_AGG_NAMES = frozenset({"count", "sum", "avg", "min", "max"})

# Maximum view-unfolding depth; guards against (indirect) recursive views.
_MAX_VIEW_DEPTH = 64


class Analyzer:
    """Stateful analyzer bound to a catalog.

    One instance may analyze many statements; it only keeps a counter
    used to generate unique synthetic names.
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._ids = count()
        self._view_depth = 0
        # Set by the engine: expands SELECT PROVENANCE markers inside
        # derived tables and views at analysis time, so their provenance
        # columns are part of the visible schema (Perm extends the
        # PostgreSQL analyzer the same way — the paper's §2.4 example
        # filters on a provenance column of a provenance subquery).
        self.provenance_expander: Optional[Callable[[an.Node], an.Node]] = None
        # Materialized views: ``inline_matviews`` forces every matview
        # reference to unfold to its defining query (used when analyzing
        # a matview's own definition, so maintenance programs see true
        # base-table leaves). ``stale_matviews`` records each matview
        # that was unfolded because its stored contents could not be
        # trusted (stale flag, or base-table version skew) — the
        # connection refreshes these before re-planning a read.
        # ``fresh_matviews`` records each matview served from its stored
        # heap — a decision valid only while the view stays fresh for
        # the executing snapshot, so plans carry the set and revalidate
        # it before every execution (PreparedPlan.deps_valid).
        self.inline_matviews = False
        self.stale_matviews: set[str] = set()
        self.fresh_matviews: set[str] = set()

    def _expand_markers(self, node: an.Node) -> an.Node:
        if self.provenance_expander is None:
            return node
        from ..core.provenance import contains_provenance_marker

        if contains_provenance_marker(node):
            return self.provenance_expander(node)
        return node

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def analyze_query(self, query: ast.QueryExpr, outer: Optional[Scope] = None) -> an.Node:
        """Analyze a query expression into an algebra tree whose output
        schema carries the user-visible result column names."""
        if isinstance(query, ast.SetOp):
            return self._analyze_setop(query, outer)
        return self._analyze_select(query, outer)

    def resolve_scalar(
        self, expr: ast.Expression, schema: Schema, alias: str
    ) -> ax.Expr:
        """Resolve *expr* against a single relation's schema under *alias*
        — used for DML (DELETE/UPDATE conditions, assignments).

        The resulting expression references the table's own column names
        (unqualified), so it can be evaluated directly against stored
        rows.
        """
        entry = ScopeEntry.from_names(alias, schema.names, schema.names)
        scope = Scope([entry])
        return self._resolve(expr, scope, agg_resolver=None)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def _analyze_setop(self, query: ast.SetOp, outer: Optional[Scope]) -> an.Node:
        # SQL-PLE scoping: ``SELECT PROVENANCE ... UNION SELECT ...``
        # computes the provenance of the *whole* set operation (the
        # paper's q1 / Figure 2), so a provenance clause on the leftmost
        # SELECT is lifted to wrap the set-operation tree.
        provenance = _take_leftmost_provenance(query)
        try:
            left = self.analyze_query(_strip_trailing(query.left), outer)
            right = self.analyze_query(_strip_trailing(query.right), outer)
            if len(left.schema) != len(right.schema):
                raise AnalyzeError(
                    f"each {query.op.upper()} query must have the same number of columns"
                )
            node: an.Node = an.SetOpNode(left, right, query.op, query.all)
            if provenance is not None:
                node = an.ProvenanceNode(node, provenance.contribution)
            node = self._apply_trailing(node, query, result_names=node.schema.names)
            return node
        finally:
            _restore_leftmost_provenance(query, provenance)

    # ------------------------------------------------------------------
    # SELECT blocks
    # ------------------------------------------------------------------
    def _analyze_select(self, select: ast.Select, outer: Optional[Scope]) -> an.Node:
        # 1. FROM clause.
        if select.from_items:
            node, entries = self._build_from(select.from_items, outer)
        else:
            node, entries = an.SingleRow(), []
        scope = Scope(entries, parent=outer)

        # 2. WHERE clause (no aggregates allowed).
        if select.where is not None:
            condition = self._resolve(select.where, scope, agg_resolver=_forbid_aggregates("WHERE"))
            self._require_boolean(condition, node.schema, "WHERE")
            node = an.Select(node, condition)

        # 3. Expand stars in the select list now that the scope is known.
        items = self._expand_stars(select.items, scope)

        # 4. Aggregation.
        has_aggregates = any(
            _contains_aggregate(item.expression) for item in items
        ) or (select.having is not None and _contains_aggregate(select.having)) or any(
            _contains_aggregate(o.expression) for o in select.order_by
        )
        grouped = bool(select.group_by) or has_aggregates or select.having is not None

        if grouped:
            node, post_scope, post_resolver = self._build_aggregate(node, scope, select, items)
        else:
            post_scope = scope
            post_resolver = lambda e: self._resolve(e, scope, agg_resolver=None)  # noqa: E731

        # 5. HAVING (resolved post-aggregation).
        if select.having is not None:
            having = post_resolver(select.having)
            self._require_boolean(having, node.schema, "HAVING")
            node = an.Select(node, having)

        # 6. Final projection.
        project_items: list[tuple[str, ax.Expr]] = []
        result_names = self._output_names(items)
        for item, name in zip(items, result_names):
            project_items.append((name, post_resolver(item.expression)))

        # 7. ORDER BY resolution may need hidden sort columns.
        sort_keys, hidden = self._resolve_order_by(
            select.order_by, items, result_names, project_items, post_resolver
        )
        if hidden and select.distinct:
            raise AnalyzeError(
                "for SELECT DISTINCT, ORDER BY expressions must appear in the select list"
            )
        node = an.Project(node, project_items + hidden)
        if select.distinct:
            node = an.Distinct(node)
        if sort_keys:
            node = an.Sort(node, sort_keys)
        if hidden:
            node = an.Project(node, [(n, ax.Column(n)) for n in result_names])

        # 8. LIMIT / OFFSET.
        node = self._apply_limit(node, select.limit, select.offset)

        # 9. SQL-PLE: SELECT PROVENANCE wraps the whole block.
        if select.provenance is not None:
            node = an.ProvenanceNode(node, select.provenance.contribution)
        return node

    # ------------------------------------------------------------------
    def _apply_trailing(
        self, node: an.Node, query: ast.SetOp, result_names: list[str]
    ) -> an.Node:
        """ORDER BY / LIMIT on a set operation (keys must be output
        columns or ordinals)."""
        if query.order_by:
            keys = []
            for item in query.order_by:
                expr = item.expression
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    position = expr.value
                    if not 1 <= position <= len(result_names):
                        raise AnalyzeError(f"ORDER BY position {position} is out of range")
                    column = ax.Column(result_names[position - 1])
                elif isinstance(expr, ast.ColumnRef) and len(expr.parts) == 1:
                    matches = [n for n in result_names if n.lower() == expr.name.lower()]
                    if not matches:
                        raise AnalyzeError(f"column {expr.name!r} does not exist")
                    column = ax.Column(matches[0])
                else:
                    raise AnalyzeError(
                        "ORDER BY on a set operation must name an output column"
                    )
                keys.append(an.SortKey(column, item.descending, item.nulls_first))
            node = an.Sort(node, keys)
        return self._apply_limit(node, query.limit, query.offset)

    def _apply_limit(
        self, node: an.Node, limit: Optional[ast.Expression], offset: Optional[ast.Expression]
    ) -> an.Node:
        if limit is None and offset is None:
            return node
        limit_expr = self._resolve_constant(limit, "LIMIT") if limit is not None else None
        offset_expr = self._resolve_constant(offset, "OFFSET") if offset is not None else None
        return an.Limit(node, limit_expr, offset_expr)

    def _resolve_constant(self, expr: ast.Expression, context: str) -> ax.Expr:
        try:
            resolved = self._resolve(expr, Scope([]), agg_resolver=_forbid_aggregates(context))
        except AnalyzeError as exc:
            raise AnalyzeError(f"{context} must not reference columns ({exc})") from None
        for sub in ax.walk_expr(resolved):
            if isinstance(sub, (ax.Column, ax.OuterColumn)):
                raise AnalyzeError(f"{context} must not reference columns")
        return resolved

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _build_from(
        self, from_items: list[ast.FromItem], outer: Optional[Scope]
    ) -> tuple[an.Node, list[ScopeEntry]]:
        node: Optional[an.Node] = None
        entries: list[ScopeEntry] = []
        seen_aliases: set[str] = set()
        for item in from_items:
            item_node, item_entries = self._build_from_item(item, outer)
            for entry in item_entries:
                key = entry.alias.lower()
                if key in seen_aliases:
                    raise AnalyzeError(
                        f"table name {entry.alias!r} specified more than once"
                    )
                seen_aliases.add(key)
            if node is None:
                node = item_node
            else:
                node = an.Join(node, item_node, "cross", None)
            entries.extend(item_entries)
        assert node is not None
        return node, entries

    def _build_from_item(
        self, item: ast.FromItem, outer: Optional[Scope]
    ) -> tuple[an.Node, list[ScopeEntry]]:
        if isinstance(item, ast.TableRef):
            return self._build_table_ref(item)
        if isinstance(item, ast.SubqueryRef):
            return self._build_subquery_ref(item, outer)
        if isinstance(item, ast.JoinRef):
            return self._build_join_ref(item, outer)
        raise AnalyzeError(f"unsupported FROM item {type(item).__name__}")

    def _build_table_ref(self, item: ast.TableRef) -> tuple[an.Node, list[ScopeEntry]]:
        alias = item.alias or item.name
        if self.catalog.has_table(item.name):
            table = self.catalog.table(item.name)
            scan = an.Scan(item.name, alias, table.schema)
            entry = ScopeEntry.from_names(alias, table.schema.names, scan.schema.names)
            node: an.Node = scan
            node = self._wrap_base_relation(
                node,
                entry,
                relation_label=item.name,
                explicit_baserelation=item.baserelation,
                explicit_attrs=item.provenance_attrs,
                registered_attrs=table.provenance_attrs,
            )
            return node, [entry]
        if self.catalog.has_matview(item.name):
            matview = self.catalog.matview(item.name)
            if not self.inline_matviews and self.catalog.matview_fresh(matview):
                # Fresh contents: scan the stored heap like a table.
                self.fresh_matviews.add(matview.name)
                scan = an.Scan(item.name, alias, matview.table.schema)
                entry = ScopeEntry.from_names(
                    alias, matview.table.schema.names, scan.schema.names
                )
                node = self._wrap_base_relation(
                    scan,
                    entry,
                    relation_label=item.name,
                    explicit_baserelation=item.baserelation,
                    explicit_attrs=item.provenance_attrs,
                    registered_attrs=matview.provenance_attrs,
                )
                return node, [entry]
            # Unfold the defining query (matview inlining for its own
            # maintenance program, or stored rows that cannot be
            # trusted). The unfolded plan computes the same columns, so
            # results are identical — just not served from the heap.
            if not self.inline_matviews:
                self.stale_matviews.add(matview.name)
            if self._view_depth >= _MAX_VIEW_DEPTH:
                raise AnalyzeError(
                    f"view nesting too deep (is view {item.name!r} recursive?)"
                )
            self._view_depth += 1
            try:
                inner = self._expand_markers(
                    self.analyze_query(matview.query, outer=None)
                )
            finally:
                self._view_depth -= 1
            exposed = inner.schema.names
            unique = _uniquify([f"{alias}.{name}" for name in exposed])
            project = an.Project(
                inner,
                [(u, ax.Column(old.name)) for u, old in zip(unique, inner.schema)],
            )
            entry = ScopeEntry.from_names(alias, exposed, unique)
            node = self._wrap_base_relation(
                project,
                entry,
                relation_label=item.name,
                explicit_baserelation=item.baserelation,
                explicit_attrs=item.provenance_attrs,
                registered_attrs=matview.provenance_attrs,
            )
            return node, [entry]
        if self.catalog.has_view(item.name):
            view = self.catalog.view(item.name)
            if self._view_depth >= _MAX_VIEW_DEPTH:
                raise AnalyzeError(f"view nesting too deep (is view {item.name!r} recursive?)")
            self._view_depth += 1
            try:
                inner = self._expand_markers(self.analyze_query(view.query, outer=None))
            finally:
                self._view_depth -= 1
            exposed = inner.schema.names
            unique = [f"{alias}.{name}" for name in exposed]
            unique = _uniquify(unique)
            project = an.Project(
                inner, [(u, ax.Column(old.name)) for u, old in zip(unique, inner.schema)]
            )
            entry = ScopeEntry.from_names(alias, exposed, unique)
            node = self._wrap_base_relation(
                project,
                entry,
                relation_label=item.name,
                explicit_baserelation=item.baserelation,
                explicit_attrs=item.provenance_attrs,
                registered_attrs=view.provenance_attrs,
            )
            return node, [entry]
        raise AnalyzeError(f"relation {item.name!r} does not exist")

    def _build_subquery_ref(
        self, item: ast.SubqueryRef, outer: Optional[Scope]
    ) -> tuple[an.Node, list[ScopeEntry]]:
        alias = item.alias or f"subquery_{next(self._ids)}"
        # Derived tables are not LATERAL — they cannot see their FROM
        # siblings — but they do see the scopes of *enclosing* queries
        # (PostgreSQL semantics: a derived table inside a sublink may
        # correlate to the sublink's outer query).
        inner = self._expand_markers(self.analyze_query(item.query, outer=outer))
        exposed = list(item.column_aliases or inner.schema.names)
        if len(exposed) != len(inner.schema):
            raise AnalyzeError(
                f"derived table {alias!r} has {len(inner.schema)} columns, "
                f"{len(exposed)} aliases given"
            )
        unique = _uniquify([f"{alias}.{name}" for name in exposed])
        project = an.Project(
            inner, [(u, ax.Column(old.name)) for u, old in zip(unique, inner.schema)]
        )
        entry = ScopeEntry.from_names(alias, exposed, unique)
        node = self._wrap_base_relation(
            project,
            entry,
            relation_label=alias,
            explicit_baserelation=item.baserelation,
            explicit_attrs=item.provenance_attrs,
            registered_attrs=(),
        )
        return node, [entry]

    def _wrap_base_relation(
        self,
        node: an.Node,
        entry: ScopeEntry,
        relation_label: str,
        explicit_baserelation: bool,
        explicit_attrs: Optional[list[str]],
        registered_attrs: tuple[str, ...],
    ) -> an.Node:
        """Attach a :class:`BaseRelationNode` marker when SQL-PLE modifiers
        or eager-provenance catalog registrations apply."""
        attrs: Optional[tuple[str, ...]] = None
        if explicit_attrs is not None:
            resolved = []
            for name in explicit_attrs:
                target = entry.columns.get(name.lower())
                if target is None:
                    raise AnalyzeError(
                        f"provenance attribute {name!r} not found in relation {entry.alias!r}"
                    )
                resolved.append(target)
            attrs = tuple(resolved)
        elif registered_attrs:
            attrs = tuple(
                entry.columns[name.lower()] for name in registered_attrs
                if name.lower() in entry.columns
            )
        if explicit_baserelation or attrs is not None:
            return an.BaseRelationNode(node, relation_label, attrs)
        return node

    def _build_join_ref(
        self, item: ast.JoinRef, outer: Optional[Scope]
    ) -> tuple[an.Node, list[ScopeEntry]]:
        left_node, left_entries = self._build_from_item(item.left, outer)
        right_node, right_entries = self._build_from_item(item.right, outer)
        entries = left_entries + right_entries
        scope = Scope(entries, parent=outer)

        if item.kind == "cross":
            return an.Join(left_node, right_node, "cross", None), entries

        condition: Optional[ax.Expr]
        if item.natural or item.using is not None:
            common = self._common_columns(left_entries, right_entries, item.using)
            if not common:
                # NATURAL JOIN with no shared columns degrades to a cross
                # join (PostgreSQL behaviour).
                if item.kind == "inner":
                    return an.Join(left_node, right_node, "cross", None), entries
                raise AnalyzeError("NATURAL/USING join has no common columns")
            parts = [
                ax.BinOp("=", ax.Column(lu), ax.Column(ru)) for lu, ru in common
            ]
            condition = ax.combine_conjuncts(parts)
        else:
            assert item.condition is not None
            condition = self._resolve(
                item.condition, scope, agg_resolver=_forbid_aggregates("JOIN/ON")
            )
        node = an.Join(left_node, right_node, item.kind, condition)
        return node, entries

    def _common_columns(
        self,
        left_entries: list[ScopeEntry],
        right_entries: list[ScopeEntry],
        using: Optional[list[str]],
    ) -> list[tuple[str, str]]:
        def lookup(entries: list[ScopeEntry], name: str) -> Optional[str]:
            matches = [
                e.columns[name.lower()] for e in entries if name.lower() in e.columns
            ]
            if len(matches) > 1:
                raise AnalyzeError(f"common column name {name!r} appears more than once")
            return matches[0] if matches else None

        if using is not None:
            names = using
        else:
            left_names = {n for e in left_entries for n in e.columns}
            right_names = {n for e in right_entries for n in e.columns}
            names = sorted(left_names & right_names)
        pairs = []
        for name in names:
            left_unique = lookup(left_entries, name)
            right_unique = lookup(right_entries, name)
            if left_unique is None or right_unique is None:
                raise AnalyzeError(f"column {name!r} specified in USING is missing")
            pairs.append((left_unique, right_unique))
        return pairs

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _build_aggregate(
        self,
        node: an.Node,
        scope: Scope,
        select: ast.Select,
        items: list[ast.SelectItem],
    ) -> tuple[an.Node, Scope, Callable[[ast.Expression], ax.Expr]]:
        """Build the Aggregate operator and a post-aggregation resolver."""
        # Resolve GROUP BY expressions (supporting ordinals and aliases).
        group_exprs: list[ax.Expr] = []
        for g in select.group_by:
            group_exprs.append(self._resolve_group_expr(g, scope, items))

        group_items: list[tuple[str, ax.Expr]] = []
        group_map: dict[ax.Expr, str] = {}
        used_names: set[str] = set()
        for index, expr in enumerate(group_exprs):
            if expr in group_map:
                continue  # duplicate GROUP BY expression
            if isinstance(expr, ax.Column) and expr.name not in used_names:
                name = expr.name
            else:
                name = f"_group_{index}"
            used_names.add(name)
            group_items.append((name, expr))
            group_map[expr] = name

        # Collect aggregate calls from select list, HAVING and ORDER BY.
        agg_items: list[tuple[str, ax.AggExpr]] = []
        agg_map: dict[ax.AggExpr, str] = {}

        def register_aggregate(call: ast.FuncCall) -> str:
            if call.star:
                agg = ax.AggExpr(call.name, None, False)
            else:
                if len(call.args) != 1:
                    raise AnalyzeError(f"aggregate {call.name} takes exactly one argument")
                if _contains_aggregate(call.args[0]):
                    raise AnalyzeError("aggregate calls cannot be nested")
                arg = self._resolve(call.args[0], scope, agg_resolver=None)
                agg = ax.AggExpr(call.name, arg, call.distinct)
            if agg not in agg_map:
                name = f"_agg_{len(agg_items)}"
                agg_map[agg] = name
                agg_items.append((name, agg))
            return agg_map[agg]

        aggregate = _AggregateState(group_map, register_aggregate)

        # Pre-register aggregates appearing anywhere, so the Aggregate
        # node is complete before post-resolution begins.
        for item in items:
            _walk_aggregates(item.expression, register_aggregate)
        if select.having is not None:
            _walk_aggregates(select.having, register_aggregate)
        for order in select.order_by:
            _walk_aggregates(order.expression, register_aggregate)

        agg_node = an.Aggregate(node, group_items, agg_items)

        def post_resolver(expr: ast.Expression) -> ax.Expr:
            resolved = self._resolve(expr, scope, agg_resolver=aggregate)
            self._validate_grouping(resolved, agg_node.schema)
            return resolved

        return agg_node, scope, post_resolver

    def _resolve_group_expr(
        self, expr: ast.Expression, scope: Scope, items: list[ast.SelectItem]
    ) -> ax.Expr:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(items):
                raise AnalyzeError(f"GROUP BY position {position} is out of range")
            target = items[position - 1].expression
            return self._resolve(target, scope, agg_resolver=_forbid_aggregates("GROUP BY"))
        try:
            return self._resolve(expr, scope, agg_resolver=_forbid_aggregates("GROUP BY"))
        except AnalyzeError:
            # Fall back to select-list aliases (GROUP BY output_alias).
            if isinstance(expr, ast.ColumnRef) and len(expr.parts) == 1:
                for item in items:
                    if item.alias and item.alias.lower() == expr.name.lower():
                        return self._resolve(
                            item.expression, scope, agg_resolver=_forbid_aggregates("GROUP BY")
                        )
            raise

    def _validate_grouping(self, expr: ax.Expr, agg_schema: Schema) -> None:
        """Every level-0 column reference above the Aggregate must be one
        of its outputs (group keys or aggregate results)."""
        for sub in ax.walk_expr(expr):
            if isinstance(sub, ax.Column) and not agg_schema.has(sub.name):
                raise AnalyzeError(
                    f"column {sub.name!r} must appear in the GROUP BY clause "
                    "or be used in an aggregate function"
                )
            if isinstance(sub, ax.SubqueryExpr):
                for name in ax._outer_columns_of_plan(sub.plan, level=1):
                    if not agg_schema.has(name):
                        raise AnalyzeError(
                            f"subquery uses ungrouped column {name!r} from outer query"
                        )

    # ------------------------------------------------------------------
    # Select list helpers
    # ------------------------------------------------------------------
    def _expand_stars(
        self, items: list[ast.SelectItem], scope: Scope
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expression, ast.Star):
                qualifier = item.expression.qualifier
                pairs = scope.star_columns(qualifier)
                if not pairs:
                    raise AnalyzeError("SELECT * with no FROM clause")
                for exposed, unique in pairs:
                    # Reference by unique name with explicit qualifier so
                    # later resolution is unambiguous.
                    alias_part, _, column_part = unique.partition(".")
                    ref = ast.ColumnRef((alias_part, column_part) if column_part else (unique,))
                    expanded.append(ast.SelectItem(ref, alias=exposed))
            else:
                expanded.append(item)
        if not expanded:
            raise AnalyzeError("select list is empty")
        return expanded

    def _output_names(self, items: list[ast.SelectItem]) -> list[str]:
        names: list[str] = []
        for index, item in enumerate(items):
            if item.alias:
                name = item.alias
            else:
                name = _derive_name(item.expression, index)
            names.append(name)
        return _uniquify(names)

    def _resolve_order_by(
        self,
        order_by: list[ast.OrderItem],
        items: list[ast.SelectItem],
        result_names: list[str],
        project_items: list[tuple[str, ax.Expr]],
        post_resolver: Callable[[ast.Expression], ax.Expr],
    ) -> tuple[list[an.SortKey], list[tuple[str, ax.Expr]]]:
        """Resolve ORDER BY into sort keys over the projection output,
        adding hidden projection columns when a key is not in the select
        list."""
        keys: list[an.SortKey] = []
        hidden: list[tuple[str, ax.Expr]] = []
        expr_to_name = {expr: name for name, expr in project_items}
        for order in order_by:
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(result_names):
                    raise AnalyzeError(f"ORDER BY position {position} is out of range")
                keys.append(
                    an.SortKey(ax.Column(result_names[position - 1]), order.descending, order.nulls_first)
                )
                continue
            if isinstance(expr, ast.ColumnRef) and len(expr.parts) == 1:
                matches = [
                    (name, i) for i, name in enumerate(result_names)
                    if name.lower() == expr.name.lower()
                ]
                if len(matches) == 1:
                    keys.append(
                        an.SortKey(ax.Column(matches[0][0]), order.descending, order.nulls_first)
                    )
                    continue
                if len(matches) > 1:
                    raise AnalyzeError(f"ORDER BY {expr.name!r} is ambiguous")
            resolved = post_resolver(expr)
            if resolved in expr_to_name:
                keys.append(
                    an.SortKey(ax.Column(expr_to_name[resolved]), order.descending, order.nulls_first)
                )
                continue
            name = f"_sort_{len(hidden)}"
            hidden.append((name, resolved))
            keys.append(an.SortKey(ax.Column(name), order.descending, order.nulls_first))
        return keys, hidden

    # ------------------------------------------------------------------
    # Expression resolution
    # ------------------------------------------------------------------
    def _resolve(
        self,
        expr: ast.Expression,
        scope: Scope,
        agg_resolver: Optional["_AggregateState" | Callable[[ast.FuncCall], str]],
    ) -> ax.Expr:
        resolve = lambda e: self._resolve(e, scope, agg_resolver)  # noqa: E731

        # Post-aggregation resolution: an expression that matches a GROUP
        # BY expression *as a whole* resolves to that group column, e.g.
        # ``SELECT upper(name) ... GROUP BY upper(name)``.
        if (
            isinstance(agg_resolver, _AggregateState)
            and not isinstance(expr, ast.Literal)
            and not _contains_aggregate(expr)
        ):
            try:
                whole = self._resolve(expr, scope, agg_resolver=None)
            except AnalyzeError:
                whole = None
            if whole is not None and whole in agg_resolver.group_map:
                return ax.Column(agg_resolver.group_map[whole])

        if isinstance(expr, ast.Literal):
            return ax.Const.of(expr.value)
        if isinstance(expr, ast.Parameter):
            return ax.Param(expr.index, expr.name)
        if isinstance(expr, ast.ColumnRef):
            if len(expr.parts) > 2:
                raise AnalyzeError(
                    f"cross-database references are not supported: {'.'.join(expr.parts)}"
                )
            unique, level = scope.resolve(expr.qualifier, expr.name)
            if level == 0:
                return ax.Column(unique)
            return ax.OuterColumn(unique, level)
        if isinstance(expr, ast.Star):
            raise AnalyzeError("'*' is only allowed as a top-level select item or in count(*)")
        if isinstance(expr, ast.BinaryOp):
            return ax.BinOp(expr.op, resolve(expr.left), resolve(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ax.UnOp(expr.op, resolve(expr.operand))
        if isinstance(expr, ast.IsNull):
            return ax.IsNullTest(resolve(expr.operand), expr.negated)
        if isinstance(expr, ast.IsDistinct):
            return ax.DistinctTest(resolve(expr.left), resolve(expr.right), expr.negated)
        if isinstance(expr, ast.Between):
            operand = resolve(expr.operand)
            low = resolve(expr.low)
            high = resolve(expr.high)
            test: ax.Expr = ax.BinOp(
                "and", ax.BinOp(">=", operand, low), ax.BinOp("<=", operand, high)
            )
            return ax.UnOp("not", test) if expr.negated else test
        if isinstance(expr, ast.InList):
            return ax.InListExpr(
                resolve(expr.operand), tuple(resolve(i) for i in expr.items), expr.negated
            )
        if isinstance(expr, ast.InSubquery):
            plan = self.analyze_query(expr.query, outer=scope)
            if len(plan.schema) != 1:
                raise AnalyzeError("subquery of IN must return exactly one column")
            return ax.SubqueryExpr("in", plan, resolve(expr.operand), negated=expr.negated)
        if isinstance(expr, ast.Exists):
            plan = self.analyze_query(expr.query, outer=scope)
            return ax.SubqueryExpr("exists", plan, negated=expr.negated)
        if isinstance(expr, ast.ScalarSubquery):
            plan = self.analyze_query(expr.query, outer=scope)
            if len(plan.schema) != 1:
                raise AnalyzeError("scalar subquery must return exactly one column")
            return ax.SubqueryExpr("scalar", plan)
        if isinstance(expr, ast.QuantifiedComparison):
            plan = self.analyze_query(expr.query, outer=scope)
            if len(plan.schema) != 1:
                raise AnalyzeError(f"subquery of {expr.quantifier.upper()} must return one column")
            return ax.SubqueryExpr(
                "quant", plan, resolve(expr.operand), op=expr.op, quantifier=expr.quantifier
            )
        if isinstance(expr, ast.FuncCall):
            if expr.name in _AGG_NAMES:
                if agg_resolver is None:
                    raise AnalyzeError(
                        f"aggregate function {expr.name}() is not allowed here"
                    )
                if isinstance(agg_resolver, _AggregateState):
                    return ax.Column(agg_resolver.register(expr))
                # A plain callable signals a context that forbids them.
                return ax.Column(agg_resolver(expr))
            if expr.star:
                raise AnalyzeError(f"{expr.name}(*) is not a known aggregate")
            if expr.distinct:
                raise AnalyzeError("DISTINCT is only allowed in aggregate calls")
            if expr.name not in ax.scalar_function_names():
                raise AnalyzeError(f"unknown function {expr.name!r}")
            return ax.FuncExpr(expr.name, tuple(resolve(a) for a in expr.args))
        if isinstance(expr, ast.Case):
            operand = resolve(expr.operand) if expr.operand is not None else None
            whens = tuple((resolve(c), resolve(r)) for c, r in expr.whens)
            else_result = resolve(expr.else_result) if expr.else_result is not None else None
            return ax.CaseExpr(operand, whens, else_result)
        if isinstance(expr, ast.Cast):
            return ax.CastExpr(resolve(expr.operand), type_from_name(expr.type_name))
        raise AnalyzeError(f"unsupported expression {type(expr).__name__}")

    def _require_boolean(self, expr: ax.Expr, schema: Schema, context: str) -> None:
        inferred = ax.infer_type(expr, schema)
        if inferred not in (SQLType.BOOL, SQLType.NULL):
            raise AnalyzeError(f"argument of {context} must be boolean, not {inferred}")


class _AggregateState:
    """Post-aggregation resolution context: maps aggregate calls to their
    Aggregate-node output columns."""

    def __init__(
        self,
        group_map: dict[ax.Expr, str],
        register: Callable[[ast.FuncCall], str],
    ):
        self.group_map = group_map
        self.register = register


def _forbid_aggregates(context: str) -> Callable[[ast.FuncCall], str]:
    def fail(call: ast.FuncCall) -> str:
        raise AnalyzeError(f"aggregate functions are not allowed in {context}")

    return fail


def _contains_aggregate(expr: ast.Expression) -> bool:
    """Does the expression contain an aggregate call (not descending into
    subqueries, whose aggregates belong to the subquery)?"""
    found = False

    def walk(node: ast.Expression) -> None:
        nonlocal found
        if found:
            return
        if isinstance(node, ast.FuncCall):
            if node.name in _AGG_NAMES:
                found = True
                return
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.IsDistinct):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.InSubquery):
            walk(node.operand)
        elif isinstance(node, ast.QuantifiedComparison):
            walk(node.operand)
        elif isinstance(node, ast.Case):
            if node.operand is not None:
                walk(node.operand)
            for condition, result in node.whens:
                walk(condition)
                walk(result)
            if node.else_result is not None:
                walk(node.else_result)
        elif isinstance(node, ast.Cast):
            walk(node.operand)

    walk(expr)
    return found


def _walk_aggregates(
    expr: ast.Expression, register: Callable[[ast.FuncCall], str]
) -> None:
    """Register every aggregate call appearing in *expr*."""

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.FuncCall):
            if node.name in _AGG_NAMES:
                register(node)
                return
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.IsDistinct):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.InSubquery):
            walk(node.operand)
        elif isinstance(node, ast.QuantifiedComparison):
            walk(node.operand)
        elif isinstance(node, ast.Case):
            if node.operand is not None:
                walk(node.operand)
            for condition, result in node.whens:
                walk(condition)
                walk(result)
            if node.else_result is not None:
                walk(node.else_result)
        elif isinstance(node, ast.Cast):
            walk(node.operand)

    walk(expr)


def _derive_name(expr: ast.Expression, index: int) -> str:
    """PostgreSQL-style derived output column names."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return expr.name
    if isinstance(expr, ast.Cast):
        return _derive_name(expr.operand, index)
    if isinstance(expr, ast.Case):
        return "case"
    if isinstance(expr, ast.Exists) or isinstance(expr, ast.InSubquery):
        return "exists" if isinstance(expr, ast.Exists) else "in"
    return f"column_{index + 1}"


def _uniquify(names: list[str]) -> list[str]:
    """Disambiguate duplicate names with numeric suffixes (SQL result sets
    may repeat names; our schemas require uniqueness)."""
    seen: dict[str, int] = {}
    out: list[str] = []
    for name in names:
        key = name.lower()
        if key not in seen:
            seen[key] = 0
            out.append(name)
        else:
            seen[key] += 1
            candidate = f"{name}_{seen[key]}"
            while candidate.lower() in seen:
                seen[key] += 1
                candidate = f"{name}_{seen[key]}"
            seen[candidate.lower()] = 0
            out.append(candidate)
    return out


def _take_leftmost_provenance(query: ast.SetOp) -> Optional[ast.ProvenanceClause]:
    """Detach the provenance clause from the leftmost SELECT of a set
    operation (SQL-PLE scopes it over the whole operation)."""
    current: ast.QueryExpr = query
    while isinstance(current, ast.SetOp):
        current = current.left
    clause = current.provenance
    current.provenance = None
    return clause


def _restore_leftmost_provenance(
    query: ast.SetOp, clause: Optional[ast.ProvenanceClause]
) -> None:
    if clause is None:
        return
    current: ast.QueryExpr = query
    while isinstance(current, ast.SetOp):
        current = current.left
    current.provenance = clause


def _strip_trailing(query: ast.QueryExpr) -> ast.QueryExpr:
    """Inner operands of a set operation keep their own ORDER BY/LIMIT
    (parenthesized subqueries); nothing to strip — identity hook kept for
    clarity at call sites."""
    return query


def analyze_query(catalog: Catalog, query: ast.QueryExpr) -> an.Node:
    """Convenience function: analyze one query against *catalog*."""
    return Analyzer(catalog).analyze_query(query)
