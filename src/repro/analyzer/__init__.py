"""Semantic analysis: AST -> resolved algebra trees.

Mirrors the "Parser & Analyzer" stage of the paper's Figure 3, including
view unfolding, and captures the SQL-PLE constructs as marker nodes for
the provenance rewriter.
"""

from .analyzer import Analyzer, analyze_query  # noqa: F401
from .params import infer_param_types  # noqa: F401
from .scope import Scope, ScopeEntry  # noqa: F401
