"""Planner: logical algebra -> physical operator trees."""

from .planner import ENGINES, Planner, plan  # noqa: F401
