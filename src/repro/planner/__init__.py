"""Planner: logical algebra -> physical operator trees."""

from .planner import Planner, plan  # noqa: F401
