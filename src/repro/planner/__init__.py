"""Planner: logical algebra -> physical operator trees."""

from .planner import Planner, plan  # noqa: F401


def __getattr__(name: str):
    if name == "ENGINES":
        # Live view of the backend registry (see repro.backend.registry).
        from . import planner as _planner

        return _planner.ENGINES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
