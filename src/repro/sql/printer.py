"""AST -> SQL text.

Used by the Perm browser (pane 1 shows the normalized input query), by
``EXPLAIN REWRITE`` and by the parser round-trip property tests
(``parse(print(parse(q)))`` must be a fixpoint).
"""

from __future__ import annotations

from ..datatypes import Value
from . import ast

_IDENT_SAFE = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def quote_identifier(name: str) -> str:
    """Quote *name* if it is not a lower-case bare-safe identifier."""
    if name and all(c in _IDENT_SAFE for c in name) and not name[0].isdigit():
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _literal(value: Value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def format_expression(node: ast.Expression) -> str:
    """Render an expression AST back to SQL text (fully parenthesized
    where precedence could be ambiguous)."""
    if isinstance(node, ast.Literal):
        return _literal(node.value)
    if isinstance(node, ast.Parameter):
        return f":{node.name}" if node.name is not None else "?"
    if isinstance(node, ast.ColumnRef):
        return ".".join(quote_identifier(p) for p in node.parts)
    if isinstance(node, ast.Star):
        return f"{quote_identifier(node.qualifier)}.*" if node.qualifier else "*"
    if isinstance(node, ast.BinaryOp):
        op = node.op.upper() if node.op in ("and", "or", "like", "ilike") else node.op
        return f"({format_expression(node.left)} {op} {format_expression(node.right)})"
    if isinstance(node, ast.UnaryOp):
        if node.op == "not":
            return f"(NOT {format_expression(node.operand)})"
        return f"({node.op}{format_expression(node.operand)})"
    if isinstance(node, ast.IsNull):
        maybe_not = " NOT" if node.negated else ""
        return f"({format_expression(node.operand)} IS{maybe_not} NULL)"
    if isinstance(node, ast.IsDistinct):
        maybe_not = " NOT" if node.negated else ""
        return f"({format_expression(node.left)} IS{maybe_not} DISTINCT FROM {format_expression(node.right)})"
    if isinstance(node, ast.Between):
        maybe_not = "NOT " if node.negated else ""
        return (
            f"({format_expression(node.operand)} {maybe_not}BETWEEN "
            f"{format_expression(node.low)} AND {format_expression(node.high)})"
        )
    if isinstance(node, ast.InList):
        maybe_not = "NOT " if node.negated else ""
        items = ", ".join(format_expression(i) for i in node.items)
        return f"({format_expression(node.operand)} {maybe_not}IN ({items}))"
    if isinstance(node, ast.InSubquery):
        maybe_not = "NOT " if node.negated else ""
        return f"({format_expression(node.operand)} {maybe_not}IN ({format_query(node.query)}))"
    if isinstance(node, ast.Exists):
        prefix = "NOT " if node.negated else ""
        return f"({prefix}EXISTS ({format_query(node.query)}))"
    if isinstance(node, ast.ScalarSubquery):
        return f"({format_query(node.query)})"
    if isinstance(node, ast.QuantifiedComparison):
        return (
            f"({format_expression(node.operand)} {node.op} {node.quantifier.upper()} "
            f"({format_query(node.query)}))"
        )
    if isinstance(node, ast.FuncCall):
        if node.star:
            return f"{node.name}(*)"
        distinct = "DISTINCT " if node.distinct else ""
        args = ", ".join(format_expression(a) for a in node.args)
        return f"{node.name}({distinct}{args})"
    if isinstance(node, ast.Case):
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(format_expression(node.operand))
        for condition, result in node.whens:
            parts.append(f"WHEN {format_expression(condition)} THEN {format_expression(result)}")
        if node.else_result is not None:
            parts.append(f"ELSE {format_expression(node.else_result)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(node, ast.Cast):
        return f"CAST({format_expression(node.operand)} AS {node.type_name})"
    raise TypeError(f"cannot format expression node {type(node).__name__}")


def _format_from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        text = quote_identifier(item.name)
        if item.alias:
            text += f" AS {quote_identifier(item.alias)}"
        if item.baserelation:
            text += " BASERELATION"
        if item.provenance_attrs:
            attrs = ", ".join(quote_identifier(a) for a in item.provenance_attrs)
            text += f" PROVENANCE ({attrs})"
        return text
    if isinstance(item, ast.SubqueryRef):
        text = f"({format_query(item.query)})"
        if item.alias:
            text += f" AS {quote_identifier(item.alias)}"
            if item.column_aliases:
                cols = ", ".join(quote_identifier(c) for c in item.column_aliases)
                text += f" ({cols})"
        if item.baserelation:
            text += " BASERELATION"
        if item.provenance_attrs:
            attrs = ", ".join(quote_identifier(a) for a in item.provenance_attrs)
            text += f" PROVENANCE ({attrs})"
        return text
    if isinstance(item, ast.JoinRef):
        left = _format_from_item(item.left)
        right = _format_from_item(item.right)
        if isinstance(item.right, ast.JoinRef):
            right = f"({right})"
        natural = "NATURAL " if item.natural else ""
        keyword = {"inner": "JOIN", "left": "LEFT JOIN", "right": "RIGHT JOIN",
                   "full": "FULL JOIN", "cross": "CROSS JOIN"}[item.kind]
        text = f"{left} {natural}{keyword} {right}"
        if item.condition is not None:
            text += f" ON {format_expression(item.condition)}"
        elif item.using:
            cols = ", ".join(quote_identifier(c) for c in item.using)
            text += f" USING ({cols})"
        return text
    raise TypeError(f"cannot format FROM item {type(item).__name__}")


def _format_order(items: list[ast.OrderItem]) -> str:
    rendered = []
    for item in items:
        text = format_expression(item.expression)
        text += " DESC" if item.descending else " ASC"
        if item.nulls_first is True:
            text += " NULLS FIRST"
        elif item.nulls_first is False:
            text += " NULLS LAST"
        rendered.append(text)
    return "ORDER BY " + ", ".join(rendered)


def format_query(query: ast.QueryExpr) -> str:
    """Render a query expression (SELECT or set operation) to SQL."""
    if isinstance(query, ast.SetOp):
        keyword = query.op.upper() + (" ALL" if query.all else "")
        left = format_query(query.left)
        right = format_query(query.right)
        if isinstance(query.left, ast.SetOp):
            left = f"({left})"
        if isinstance(query.right, ast.SetOp):
            right = f"({right})"
        text = f"{left} {keyword} {right}"
        if query.order_by:
            text += " " + _format_order(query.order_by)
        if query.limit is not None:
            text += f" LIMIT {format_expression(query.limit)}"
        if query.offset is not None:
            text += f" OFFSET {format_expression(query.offset)}"
        return text

    select = query
    parts = ["SELECT"]
    if select.provenance is not None:
        parts.append("PROVENANCE")
        if select.provenance.contribution != "influence":
            parts.append(f"ON CONTRIBUTION ({select.provenance.contribution.upper()})")
        else:
            parts.append("ON CONTRIBUTION (INFLUENCE)")
    if select.distinct:
        parts.append("DISTINCT")
    rendered_items = []
    for item in select.items:
        text = format_expression(item.expression)
        if item.alias:
            text += f" AS {quote_identifier(item.alias)}"
        rendered_items.append(text)
    parts.append(", ".join(rendered_items))
    if select.from_items:
        parts.append("FROM " + ", ".join(_format_from_item(i) for i in select.from_items))
    if select.where is not None:
        parts.append("WHERE " + format_expression(select.where))
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(format_expression(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING " + format_expression(select.having))
    if select.order_by:
        parts.append(_format_order(select.order_by))
    if select.limit is not None:
        parts.append(f"LIMIT {format_expression(select.limit)}")
    if select.offset is not None:
        parts.append(f"OFFSET {format_expression(select.offset)}")
    return " ".join(parts)


def format_statement(statement: ast.Statement) -> str:
    """Render any statement AST back to SQL text."""
    if isinstance(statement, ast.QueryStatement):
        return format_query(statement.query)
    if isinstance(statement, ast.CreateTable):
        ine = "IF NOT EXISTS " if statement.if_not_exists else ""
        columns = ", ".join(
            f"{quote_identifier(c.name)} {c.type_name}" for c in statement.columns
        )
        return f"CREATE TABLE {ine}{quote_identifier(statement.name)} ({columns})"
    if isinstance(statement, ast.CreateTableAs):
        ine = "IF NOT EXISTS " if statement.if_not_exists else ""
        return f"CREATE TABLE {ine}{quote_identifier(statement.name)} AS {format_query(statement.query)}"
    if isinstance(statement, ast.CreateView):
        replace = "OR REPLACE " if statement.or_replace else ""
        return f"CREATE {replace}VIEW {quote_identifier(statement.name)} AS {format_query(statement.query)}"
    if isinstance(statement, ast.CreateMaterializedView):
        prov = "WITH PROVENANCE " if statement.with_provenance else ""
        return (
            f"CREATE MATERIALIZED VIEW {quote_identifier(statement.name)} "
            f"{prov}AS {format_query(statement.query)}"
        )
    if isinstance(statement, ast.RefreshMaterializedView):
        return f"REFRESH MATERIALIZED VIEW {quote_identifier(statement.name)}"
    if isinstance(statement, ast.DropRelation):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP {statement.kind.upper()} {exists}{quote_identifier(statement.name)}"
    if isinstance(statement, ast.Insert):
        text = f"INSERT INTO {quote_identifier(statement.table)}"
        if statement.columns:
            text += " (" + ", ".join(quote_identifier(c) for c in statement.columns) + ")"
        if statement.rows is not None:
            rows = ", ".join(
                "(" + ", ".join(format_expression(v) for v in row) + ")" for row in statement.rows
            )
            return f"{text} VALUES {rows}"
        assert statement.query is not None
        return f"{text} {format_query(statement.query)}"
    if isinstance(statement, ast.Delete):
        text = f"DELETE FROM {quote_identifier(statement.table)}"
        if statement.where is not None:
            text += f" WHERE {format_expression(statement.where)}"
        return text
    if isinstance(statement, ast.Update):
        sets = ", ".join(
            f"{quote_identifier(c)} = {format_expression(e)}" for c, e in statement.assignments
        )
        text = f"UPDATE {quote_identifier(statement.table)} SET {sets}"
        if statement.where is not None:
            text += f" WHERE {format_expression(statement.where)}"
        return text
    if isinstance(statement, ast.Explain):
        return f"EXPLAIN {statement.mode.upper()} {format_statement(statement.statement)}"
    if isinstance(statement, ast.TransactionControl):
        if statement.action == "begin":
            return "BEGIN"
        if statement.action == "commit":
            return "COMMIT"
        if statement.action == "rollback":
            return "ROLLBACK"
        name = quote_identifier(statement.savepoint or "")
        if statement.action == "savepoint":
            return f"SAVEPOINT {name}"
        if statement.action == "rollback_to":
            return f"ROLLBACK TO SAVEPOINT {name}"
        return f"RELEASE SAVEPOINT {name}"
    if isinstance(statement, ast.Checkpoint):
        return "CHECKPOINT"
    raise TypeError(f"cannot format statement {type(statement).__name__}")
