"""SQL frontend: lexer, parser, AST and SQL text generation.

The dialect is the subset of PostgreSQL SQL that the Perm demo exercises
— SELECT/FROM/WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, explicit and implicit
joins (inner, left/right/full outer, cross, NATURAL, USING), set
operations, nested subqueries (scalar, EXISTS, IN, ANY/ALL), views and
basic DDL/DML — plus the SQL-PLE provenance extension of the paper's
section 2.4 (``SELECT PROVENANCE``, ``ON CONTRIBUTION (...)``,
``BASERELATION`` and ``PROVENANCE (attrs)`` on FROM items).
"""

from .ast import *  # noqa: F401,F403
from .lexer import Lexer, Token, TokenKind, tokenize  # noqa: F401
from .parser import Parser, parse_expression, parse_sql, parse_statement  # noqa: F401
from .printer import format_expression, format_statement  # noqa: F401
