"""Recursive-descent parser for the SQL / SQL-PLE dialect.

Grammar highlights (see :mod:`repro.sql.ast` for node semantics):

* full SELECT blocks with DISTINCT, GROUP BY, HAVING, ORDER BY,
  LIMIT/OFFSET;
* explicit joins (INNER/LEFT/RIGHT/FULL/CROSS, ON/USING/NATURAL) and
  implicit comma joins;
* UNION / INTERSECT / EXCEPT with the usual precedence (INTERSECT binds
  tighter) and ALL variants;
* subqueries in FROM and in expressions (scalar, EXISTS, IN, ANY/ALL);
* DDL/DML: CREATE TABLE (AS), CREATE [OR REPLACE] VIEW, DROP, INSERT,
  DELETE, UPDATE, EXPLAIN;
* bind parameters: positional ``?`` and named ``:name`` placeholders,
  numbered per statement (see :func:`repro.sql.ast.statement_parameters`);
* SQL-PLE (paper §2.4): ``SELECT PROVENANCE [ON CONTRIBUTION (...)]``,
  ``BASERELATION`` and ``PROVENANCE (attrs)`` modifiers on FROM items.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast
from .lexer import Token, TokenKind, tokenize

# Words that may not be used as bare identifiers (aliases, table names).
_RESERVED = frozenset(
    """
    select from where group having order limit offset union intersect except
    join inner left right full cross on using natural and or not as when then
    else end case distinct all into values set is in like between exists
    """.split()
)

_COMPARISON_OPS = {"=", "<>", "!=", "<", ">", "<=", ">="}

_JOIN_KINDS = {"INNER": "inner", "LEFT": "left", "RIGHT": "right", "FULL": "full", "CROSS": "cross"}


class Parser:
    """Parses one or more SQL statements from a token stream."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0
        # Parameter registry for the statement currently being parsed:
        # slot-ordered placeholder names (None = positional "?"). Repeated
        # :name placeholders share a slot; ? and :name must not be mixed.
        self._param_names: list[Optional[str]] = []
        self._param_style: Optional[str] = None
        self._statement_depth = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.upper in words

    def _at_operator(self, *ops: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.OPERATOR and token.text in ops

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._at_keyword(*words):
            return self._advance()
        return None

    def _accept_operator(self, *ops: str) -> Optional[Token]:
        if self._at_operator(*ops):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not self._at_keyword(word):
            raise ParseError(f"expected {word}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_operator(self, op: str) -> Token:
        token = self._peek()
        if not self._at_operator(op):
            raise ParseError(f"expected {op!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            return self._advance().text
        # Non-reserved keywords double as identifiers (e.g. a column named
        # "text", "count" or "copy" — the paper's schema uses "text").
        if token.kind is TokenKind.KEYWORD and token.text.lower() not in _RESERVED:
            return self._advance().text
        raise ParseError(f"expected {what}, found {token.text!r}", token.line, token.column)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while True:
            while self._accept_operator(";"):
                pass
            if self._peek().kind is TokenKind.EOF:
                return statements
            statements.append(self.parse_statement())
            token = self._peek()
            if token.kind is TokenKind.EOF:
                return statements
            if not self._at_operator(";"):
                raise ParseError(
                    f"unexpected input after statement: {token.text!r}", token.line, token.column
                )

    def parse_statement(self) -> ast.Statement:
        # Each top-level statement numbers its placeholders from zero
        # (EXPLAIN recurses into parse_statement; the inner statement
        # shares the outer registry).
        if self._statement_depth == 0:
            self._param_names = []
            self._param_style = None
        self._statement_depth += 1
        try:
            statement = self._parse_statement_inner()
        finally:
            self._statement_depth -= 1
        if self._statement_depth == 0:
            statement.parameters = tuple(self._param_names)  # type: ignore[attr-defined]
        return statement

    def _parse_statement_inner(self) -> ast.Statement:
        if self._at_keyword("SELECT") or self._at_operator("("):
            return ast.QueryStatement(self.parse_query_expr())
        if self._at_keyword("CREATE"):
            return self._parse_create()
        if self._at_keyword("DROP"):
            return self._parse_drop()
        if self._at_keyword("INSERT"):
            return self._parse_insert()
        if self._at_keyword("DELETE"):
            return self._parse_delete()
        if self._at_keyword("UPDATE"):
            return self._parse_update()
        if self._at_keyword("EXPLAIN"):
            return self._parse_explain()
        if self._at_keyword("REFRESH"):
            return self._parse_refresh()
        if self._at_keyword("BEGIN", "START", "COMMIT", "ROLLBACK", "SAVEPOINT", "RELEASE"):
            return self._parse_transaction_control()
        if self._at_keyword("CHECKPOINT"):
            self._advance()
            return ast.Checkpoint()
        token = self._peek()
        raise ParseError(f"unexpected start of statement: {token.text!r}", token.line, token.column)

    # ------------------------------------------------------------------
    # Transaction control
    # ------------------------------------------------------------------
    def _parse_transaction_control(self) -> ast.Statement:
        if self._accept_keyword("BEGIN"):
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.TransactionControl("begin")
        if self._accept_keyword("START"):
            self._expect_keyword("TRANSACTION")
            return ast.TransactionControl("begin")
        if self._accept_keyword("COMMIT"):
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.TransactionControl("commit")
        if self._accept_keyword("ROLLBACK"):
            if self._accept_keyword("TO"):
                self._accept_keyword("SAVEPOINT")
                name = self._expect_identifier("savepoint name")
                return ast.TransactionControl("rollback_to", name)
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.TransactionControl("rollback")
        if self._accept_keyword("SAVEPOINT"):
            return ast.TransactionControl("savepoint", self._expect_identifier("savepoint name"))
        self._expect_keyword("RELEASE")
        self._accept_keyword("SAVEPOINT")
        return ast.TransactionControl("release", self._expect_identifier("savepoint name"))

    # ------------------------------------------------------------------
    # Query expressions (set-operation precedence: EXCEPT/UNION < INTERSECT)
    # ------------------------------------------------------------------
    def parse_query_expr(self) -> ast.QueryExpr:
        query = self._parse_set_op_operand()
        while self._at_keyword("UNION", "EXCEPT", "INTERSECT"):
            op_token = self._advance()
            op = op_token.upper.lower()
            is_all = bool(self._accept_keyword("ALL"))
            self._accept_keyword("DISTINCT")
            if op == "intersect":
                right = self._parse_set_op_primary()
            else:
                right = self._parse_set_op_operand_no_union()
            query = ast.SetOp(op=op, all=is_all, left=query, right=right)  # type: ignore[arg-type]
        self._parse_trailing_clauses(query)
        return query

    def _parse_set_op_operand(self) -> ast.QueryExpr:
        """Parse a chain of INTERSECTs (binds tighter than UNION/EXCEPT)."""
        query = self._parse_set_op_primary()
        while self._at_keyword("INTERSECT"):
            self._advance()
            is_all = bool(self._accept_keyword("ALL"))
            self._accept_keyword("DISTINCT")
            right = self._parse_set_op_primary()
            query = ast.SetOp(op="intersect", all=is_all, left=query, right=right)
        return query

    # After consuming UNION/EXCEPT we still need INTERSECT to bind tighter
    # on the right-hand side.
    _parse_set_op_operand_no_union = _parse_set_op_operand

    def _parse_set_op_primary(self) -> ast.QueryExpr:
        if self._accept_operator("("):
            query = self.parse_query_expr()
            self._expect_operator(")")
            return query
        return self._parse_select()

    def _parse_trailing_clauses(self, query: ast.QueryExpr) -> None:
        """ORDER BY / LIMIT / OFFSET attach to the outermost query expression."""
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            items = [self._parse_order_item()]
            while self._accept_operator(","):
                items.append(self._parse_order_item())
            if query.order_by:
                token = self._peek()
                raise ParseError("duplicate ORDER BY clause", token.line, token.column)
            query.order_by = items
        if self._accept_keyword("LIMIT"):
            if not self._accept_keyword("ALL"):
                query.limit = self.parse_expression()
        if self._accept_keyword("OFFSET"):
            query.offset = self.parse_expression()

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expression()
        descending = False
        if self._accept_keyword("ASC"):
            descending = False
        elif self._accept_keyword("DESC"):
            descending = True
        nulls_first: Optional[bool] = None
        if self._accept_keyword("NULLS"):
            if self._accept_keyword("FIRST"):
                nulls_first = True
            else:
                self._expect_keyword("LAST")
                nulls_first = False
        return ast.OrderItem(expression, descending, nulls_first)

    # ------------------------------------------------------------------
    # SELECT block
    # ------------------------------------------------------------------
    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        provenance = self._parse_provenance_clause()

        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")

        items = [self._parse_select_item()]
        while self._accept_operator(","):
            items.append(self._parse_select_item())

        from_items: list[ast.FromItem] = []
        if self._accept_keyword("FROM"):
            from_items.append(self._parse_from_item())
            while self._accept_operator(","):
                from_items.append(self._parse_from_item())

        where = self.parse_expression() if self._accept_keyword("WHERE") else None

        group_by: list[ast.Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self._accept_operator(","):
                group_by.append(self.parse_expression())

        having = self.parse_expression() if self._accept_keyword("HAVING") else None

        return ast.Select(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
            provenance=provenance,
        )

    def _parse_provenance_clause(self) -> Optional[ast.ProvenanceClause]:
        """``PROVENANCE [ON CONTRIBUTION (INFLUENCE | COPY [PARTIAL|COMPLETE])]``.

        ``SELECT PROVENANCE`` is only recognized when the next token keeps
        it unambiguous — ``SELECT provenance FROM t`` (a column named
        provenance) still parses, because a bare column reference would be
        followed by ``,``/``FROM``, not by another value expression.
        """
        if not self._at_keyword("PROVENANCE"):
            return None
        nxt = self._peek(1)
        if nxt.kind is TokenKind.OPERATOR and nxt.text in (",", ";", ")", "."):
            return None  # it's a column named provenance
        if nxt.kind is TokenKind.KEYWORD and nxt.upper in ("FROM", "AS", "UNION", "INTERSECT", "EXCEPT"):
            return None
        if nxt.kind is TokenKind.EOF:
            return None
        self._advance()
        contribution = "influence"
        if self._accept_keyword("ON"):
            self._expect_keyword("CONTRIBUTION")
            self._expect_operator("(")
            if self._accept_keyword("INFLUENCE"):
                contribution = "influence"
            elif self._accept_keyword("COPY"):
                if self._accept_keyword("COMPLETE"):
                    contribution = "copy complete"
                else:
                    self._accept_keyword("PARTIAL")
                    contribution = "copy partial"
            else:
                token = self._peek()
                raise ParseError(
                    f"unknown contribution semantics {token.text!r} "
                    "(expected INFLUENCE or COPY [PARTIAL|COMPLETE])",
                    token.line,
                    token.column,
                )
            self._expect_operator(")")
        return ast.ProvenanceClause(contribution=contribution)

    def _parse_select_item(self) -> ast.SelectItem:
        if self._at_operator("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        expression = self.parse_expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._advance().text
        elif self._peek().kind is TokenKind.KEYWORD and self._peek().text.lower() not in _RESERVED:
            alias = self._advance().text
        return ast.SelectItem(expression, alias)

    # ------------------------------------------------------------------
    # FROM items and joins
    # ------------------------------------------------------------------
    def _parse_from_item(self) -> ast.FromItem:
        item = self._parse_join_operand()
        while True:
            natural = False
            if self._at_keyword("NATURAL"):
                natural = True
                self._advance()
            kind: Optional[str] = None
            if self._at_keyword("JOIN"):
                kind = "inner"
                self._advance()
            elif self._peek().upper in _JOIN_KINDS and self._peek().kind is TokenKind.KEYWORD:
                kind = _JOIN_KINDS[self._advance().upper]
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
            elif natural:
                token = self._peek()
                raise ParseError("expected JOIN after NATURAL", token.line, token.column)
            else:
                return item
            right = self._parse_join_operand()
            condition: Optional[ast.Expression] = None
            using: Optional[list[str]] = None
            if kind != "cross" and not natural:
                if self._accept_keyword("ON"):
                    condition = self.parse_expression()
                elif self._accept_keyword("USING"):
                    self._expect_operator("(")
                    using = [self._expect_identifier("column name")]
                    while self._accept_operator(","):
                        using.append(self._expect_identifier("column name"))
                    self._expect_operator(")")
                else:
                    token = self._peek()
                    raise ParseError(
                        f"expected ON or USING after JOIN, found {token.text!r}",
                        token.line,
                        token.column,
                    )
            item = ast.JoinRef(
                kind=kind,  # type: ignore[arg-type]
                left=item,
                right=right,
                condition=condition,
                using=using,
                natural=natural,
            )

    def _parse_join_operand(self) -> ast.FromItem:
        if self._at_operator("("):
            # Either a parenthesized join / from item or a subquery.
            if self._starts_subquery():
                self._advance()
                query = self.parse_query_expr()
                self._expect_operator(")")
                alias, column_aliases = self._parse_from_alias()
                baserelation, prov_attrs = self._parse_from_modifiers()
                return ast.SubqueryRef(
                    query=query,
                    alias=alias,
                    column_aliases=column_aliases,
                    baserelation=baserelation,
                    provenance_attrs=prov_attrs,
                )
            self._advance()
            inner = self._parse_from_item()
            self._expect_operator(")")
            return inner
        name = self._expect_identifier("relation name")
        alias, column_aliases = self._parse_from_alias()
        if column_aliases is not None:
            token = self._peek()
            raise ParseError("column aliases are only supported on subqueries", token.line, token.column)
        baserelation, prov_attrs = self._parse_from_modifiers()
        return ast.TableRef(
            name=name, alias=alias, baserelation=baserelation, provenance_attrs=prov_attrs
        )

    def _starts_subquery(self) -> bool:
        """Positioned at ``(``: does it open a subquery (vs a nested
        join / parenthesized expression)?

        The content is a query expression when it starts with SELECT, or
        when it starts with a parenthesized group followed by a set-op
        keyword / ORDER / LIMIT / the closing paren (e.g. the deparser's
        ``((SELECT ...) UNION ALL (SELECT ...))``). A group followed by
        an alias, JOIN or comma is a FROM item instead.
        """
        first = self._peek(1)
        if first.kind is TokenKind.KEYWORD and first.upper == "SELECT":
            return True
        if not (first.kind is TokenKind.OPERATOR and first.text == "("):
            return False
        # Find the token following the first parenthesized group.
        offset = 1
        depth = 0
        while True:
            token = self._peek(offset)
            if token.kind is TokenKind.EOF:
                return False
            if token.kind is TokenKind.OPERATOR and token.text == "(":
                depth += 1
            elif token.kind is TokenKind.OPERATOR and token.text == ")":
                depth -= 1
                if depth == 0:
                    follower = self._peek(offset + 1)
                    if follower.kind is TokenKind.KEYWORD and follower.upper in (
                        "UNION",
                        "INTERSECT",
                        "EXCEPT",
                        "ORDER",
                        "LIMIT",
                        "OFFSET",
                    ):
                        return True
                    if follower.kind is TokenKind.OPERATOR and follower.text == ")":
                        # "((...))": subquery iff the inner chain opens
                        # with SELECT behind the leading parentheses.
                        inner = 1
                        while (
                            self._peek(inner).kind is TokenKind.OPERATOR
                            and self._peek(inner).text == "("
                        ):
                            inner += 1
                        head = self._peek(inner)
                        return head.kind is TokenKind.KEYWORD and head.upper == "SELECT"
                    return False
            offset += 1

    def _parse_from_alias(self) -> tuple[Optional[str], Optional[list[str]]]:
        alias: Optional[str] = None
        column_aliases: Optional[list[str]] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._advance().text
        elif (
            self._peek().kind is TokenKind.KEYWORD
            and self._peek().text.lower() not in _RESERVED
            # These may directly follow a FROM item (SQL-PLE modifiers),
            # so they cannot double as bare aliases.
            and self._peek().upper not in ("BASERELATION", "PROVENANCE")
        ):
            # Non-reserved keywords double as bare aliases, matching the
            # select-item alias rule (a FROM item aliased "start" or
            # "work" must not break when those words become keywords).
            alias = self._advance().text
        if alias is not None and self._at_operator("("):
            self._advance()
            column_aliases = [self._expect_identifier("column alias")]
            while self._accept_operator(","):
                column_aliases.append(self._expect_identifier("column alias"))
            self._expect_operator(")")
        return alias, column_aliases

    def _parse_from_modifiers(self) -> tuple[bool, Optional[list[str]]]:
        """SQL-PLE FROM-item suffixes: ``BASERELATION`` / ``PROVENANCE (a, b)``."""
        baserelation = False
        prov_attrs: Optional[list[str]] = None
        while True:
            if self._accept_keyword("BASERELATION"):
                baserelation = True
                continue
            if self._at_keyword("PROVENANCE") and self._peek(1).text == "(":
                self._advance()
                self._expect_operator("(")
                prov_attrs = [self._expect_identifier("provenance attribute")]
                while self._accept_operator(","):
                    prov_attrs.append(self._expect_identifier("provenance attribute"))
                self._expect_operator(")")
                continue
            return baserelation, prov_attrs

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        or_replace = False
        if self._accept_keyword("OR"):
            self._expect_keyword("REPLACE")
            or_replace = True
        self._accept_keyword("TEMP") or self._accept_keyword("TEMPORARY")
        if self._at_keyword("MATERIALIZED"):
            token = self._advance()
            if or_replace:
                raise ParseError(
                    "OR REPLACE is not supported for materialized views "
                    "(DROP MATERIALIZED VIEW first)",
                    token.line,
                    token.column,
                )
            self._expect_keyword("VIEW")
            name = self._expect_identifier("materialized view name")
            with_provenance = False
            # WITH is not a keyword in this dialect; match it by text so
            # identifiers named "with" elsewhere keep working.
            if self._peek().upper == "WITH":
                self._advance()
                self._expect_keyword("PROVENANCE")
                with_provenance = True
            self._expect_keyword("AS")
            query = self.parse_query_expr()
            return ast.CreateMaterializedView(
                name=name, query=query, with_provenance=with_provenance
            )
        if self._accept_keyword("VIEW"):
            name = self._expect_identifier("view name")
            self._expect_keyword("AS")
            query = self.parse_query_expr()
            return ast.CreateView(name=name, query=query, or_replace=or_replace)
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_identifier("table name")
        if self._accept_keyword("AS"):
            query = self.parse_query_expr()
            return ast.CreateTableAs(name=name, query=query, if_not_exists=if_not_exists)
        self._expect_operator("(")
        columns = [self._parse_column_def()]
        while self._accept_operator(","):
            columns.append(self._parse_column_def())
        self._expect_operator(")")
        return ast.CreateTable(name=name, columns=columns, if_not_exists=if_not_exists)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier("column name")
        type_name = self._expect_identifier("type name")
        # "double precision" / "character varying" two-word types.
        if type_name.lower() in ("double", "character") and self._peek().kind in (
            TokenKind.IDENT,
            TokenKind.KEYWORD,
        ):
            follower = self._peek().text.lower()
            if follower in ("precision", "varying"):
                type_name = f"{type_name} {self._advance().text}"
        # Ignore length parameters such as varchar(20).
        if self._accept_operator("("):
            while not self._at_operator(")"):
                self._advance()
            self._expect_operator(")")
        # Ignore column constraints (PRIMARY KEY, NOT NULL, ...).
        while self._at_keyword("PRIMARY", "NOT", "NULL", "UNIQUE", "DEFAULT", "REFERENCES", "CHECK", "KEY"):
            self._advance()
            if self._at_operator("("):
                self._advance()
                depth = 1
                while depth:
                    if self._at_operator("("):
                        depth += 1
                    elif self._at_operator(")"):
                        depth -= 1
                    self._advance()
        return ast.ColumnDef(name=name, type_name=type_name)

    def _parse_drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("MATERIALIZED"):
            self._expect_keyword("VIEW")
            kind = "materialized view"
        elif self._accept_keyword("VIEW"):
            kind = "view"
        else:
            self._expect_keyword("TABLE")
            kind = "table"
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._expect_identifier("relation name")
        return ast.DropRelation(kind=kind, name=name, if_exists=if_exists)  # type: ignore[arg-type]

    def _parse_insert(self) -> ast.Statement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns: Optional[list[str]] = None
        if self._at_operator("(") and not self._starts_subquery():
            self._advance()
            columns = [self._expect_identifier("column name")]
            while self._accept_operator(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_operator(")")
        if self._accept_keyword("VALUES"):
            rows = [self._parse_value_row()]
            while self._accept_operator(","):
                rows.append(self._parse_value_row())
            return ast.Insert(table=table, columns=columns, rows=rows)
        query = self.parse_query_expr()
        return ast.Insert(table=table, columns=columns, query=query)

    def _parse_value_row(self) -> list[ast.Expression]:
        self._expect_operator("(")
        row = [self.parse_expression()]
        while self._accept_operator(","):
            row.append(self.parse_expression())
        self._expect_operator(")")
        return row

    def _parse_delete(self) -> ast.Statement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        where = self.parse_expression() if self._accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    def _parse_update(self) -> ast.Statement:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_operator(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expression() if self._accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=assignments, where=where)

    def _parse_assignment(self) -> tuple[str, ast.Expression]:
        column = self._expect_identifier("column name")
        self._expect_operator("=")
        return column, self.parse_expression()

    def _parse_refresh(self) -> ast.Statement:
        self._expect_keyword("REFRESH")
        self._expect_keyword("MATERIALIZED")
        self._expect_keyword("VIEW")
        name = self._expect_identifier("materialized view name")
        return ast.RefreshMaterializedView(name=name)

    _STATEMENT_STARTERS = frozenset(
        ("SELECT", "CREATE", "DROP", "INSERT", "DELETE", "UPDATE", "EXPLAIN", "REFRESH")
    )

    def _parse_explain(self) -> ast.Statement:
        self._expect_keyword("EXPLAIN")
        mode = "plan"
        if self._accept_keyword("REWRITE"):
            mode = "rewrite"
        elif self._accept_keyword("ALGEBRA"):
            mode = "algebra"
        elif self._accept_keyword("PLAN"):
            mode = "plan"
        else:
            token = self._peek()
            starts_statement = self._at_operator("(") or (
                token.kind is TokenKind.KEYWORD and token.upper in self._STATEMENT_STARTERS
            )
            if not starts_statement:
                raise ParseError(
                    f"unknown EXPLAIN mode {token.text!r} "
                    "(valid modes: REWRITE, ALGEBRA, PLAN)",
                    token.line,
                    token.column,
                )
        statement = self.parse_statement()
        return ast.Explain(mode=mode, statement=statement)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._at_keyword("OR"):
            self._advance()
            left = ast.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._at_keyword("AND"):
            self._advance()
            left = ast.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._at_keyword("NOT"):
            self._advance()
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        while True:
            if self._at_operator(*_COMPARISON_OPS):
                op = self._advance().text
                if op == "!=":
                    op = "<>"
                if self._at_keyword("ANY", "SOME", "ALL"):
                    quantifier = "all" if self._advance().upper == "ALL" else "any"
                    self._expect_operator("(")
                    query = self.parse_query_expr()
                    self._expect_operator(")")
                    left = ast.QuantifiedComparison(op=op, quantifier=quantifier, operand=left, query=query)
                else:
                    left = ast.BinaryOp(op, left, self._parse_additive())
                continue
            negated = False
            checkpoint = self._index
            if self._at_keyword("NOT") and self._peek(1).upper in ("IN", "BETWEEN", "LIKE", "ILIKE"):
                self._advance()
                negated = True
            if self._accept_keyword("IS"):
                is_not = bool(self._accept_keyword("NOT"))
                if self._accept_keyword("NULL"):
                    left = ast.IsNull(left, negated=is_not)
                elif self._accept_keyword("DISTINCT"):
                    self._expect_keyword("FROM")
                    right = self._parse_additive()
                    left = ast.IsDistinct(left, right, negated=is_not)
                elif self._accept_keyword("TRUE"):
                    cmp = ast.IsDistinct(left, ast.Literal(True), negated=True)
                    left = ast.UnaryOp("not", cmp) if is_not else cmp
                elif self._accept_keyword("FALSE"):
                    cmp = ast.IsDistinct(left, ast.Literal(False), negated=True)
                    left = ast.UnaryOp("not", cmp) if is_not else cmp
                else:
                    token = self._peek()
                    raise ParseError(
                        f"expected NULL, DISTINCT FROM, TRUE or FALSE after IS, found {token.text!r}",
                        token.line,
                        token.column,
                    )
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = ast.Between(left, low, high, negated=negated)
                continue
            if self._accept_keyword("IN"):
                self._expect_operator("(")
                if self._at_keyword("SELECT") or (self._at_operator("(") and self._starts_subquery()):
                    query = self.parse_query_expr()
                    self._expect_operator(")")
                    left = ast.InSubquery(left, query, negated=negated)
                else:
                    items = [self.parse_expression()]
                    while self._accept_operator(","):
                        items.append(self.parse_expression())
                    self._expect_operator(")")
                    left = ast.InList(left, items, negated=negated)
                continue
            if self._at_keyword("LIKE", "ILIKE"):
                op = self._advance().upper.lower()
                pattern = self._parse_additive()
                node: ast.Expression = ast.BinaryOp(op, left, pattern)
                left = ast.UnaryOp("not", node) if negated else node
                continue
            self._index = checkpoint
            return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._at_operator("+", "-", "||"):
            op = self._advance().text
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._at_operator("*", "/", "%"):
            op = self._advance().text
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._at_operator("-"):
            self._advance()
            return ast.UnaryOp("-", self._parse_unary())
        if self._at_operator("+"):
            self._advance()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_atom()
        while self._accept_operator("::"):
            type_name = self._expect_identifier("type name")
            expression = ast.Cast(expression, type_name)
        return expression

    def _parse_atom(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.PARAM:
            self._advance()
            return self._make_parameter(token)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.text)
        if self._accept_keyword("NULL"):
            return ast.Literal(None)
        if self._accept_keyword("TRUE"):
            return ast.Literal(True)
        if self._accept_keyword("FALSE"):
            return ast.Literal(False)
        if self._accept_keyword("CASE"):
            return self._parse_case()
        if self._accept_keyword("CAST"):
            self._expect_operator("(")
            operand = self.parse_expression()
            self._expect_keyword("AS")
            type_name = self._expect_identifier("type name")
            if type_name.lower() in ("double", "character"):
                follower = self._peek().text.lower()
                if follower in ("precision", "varying"):
                    type_name = f"{type_name} {self._advance().text}"
            if self._accept_operator("("):
                while not self._at_operator(")"):
                    self._advance()
                self._expect_operator(")")
            self._expect_operator(")")
            return ast.Cast(operand, type_name)
        if self._accept_keyword("EXISTS"):
            self._expect_operator("(")
            query = self.parse_query_expr()
            self._expect_operator(")")
            return ast.Exists(query)
        if self._at_operator("("):
            if self._starts_subquery():
                self._advance()
                query = self.parse_query_expr()
                self._expect_operator(")")
                return ast.ScalarSubquery(query)
            self._advance()
            expression = self.parse_expression()
            self._expect_operator(")")
            return expression
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            return self._parse_name_or_call()
        raise ParseError(f"unexpected token {token.text!r} in expression", token.line, token.column)

    def _make_parameter(self, token: Token) -> ast.Parameter:
        style = "named" if token.text.startswith(":") else "positional"
        if self._param_style is None:
            self._param_style = style
        elif self._param_style != style:
            raise ParseError(
                "cannot mix positional (?) and named (:name) placeholders "
                "in one statement",
                token.line,
                token.column,
            )
        if style == "positional":
            index = len(self._param_names)
            self._param_names.append(None)
            return ast.Parameter(index=index)
        name = token.text[1:].lower()
        if name in self._param_names:
            return ast.Parameter(index=self._param_names.index(name), name=name)
        self._param_names.append(name)
        return ast.Parameter(index=len(self._param_names) - 1, name=name)

    def _parse_case(self) -> ast.Expression:
        operand: Optional[ast.Expression] = None
        if not self._at_keyword("WHEN"):
            operand = self.parse_expression()
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        if not whens:
            token = self._peek()
            raise ParseError("CASE requires at least one WHEN branch", token.line, token.column)
        else_result = self.parse_expression() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.Case(operand=operand, whens=whens, else_result=else_result)

    def _parse_name_or_call(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.text.lower() in _RESERVED:
            raise ParseError(f"unexpected keyword {token.text!r} in expression", token.line, token.column)
        name = self._advance().text
        # Function call?
        if self._at_operator("(") :
            self._advance()
            if self._accept_operator("*"):
                self._expect_operator(")")
                return ast.FuncCall(name=name.lower(), args=[], star=True)
            distinct = bool(self._accept_keyword("DISTINCT"))
            args: list[ast.Expression] = []
            if not self._at_operator(")"):
                args.append(self.parse_expression())
                while self._accept_operator(","):
                    args.append(self.parse_expression())
            self._expect_operator(")")
            return ast.FuncCall(name=name.lower(), args=args, distinct=distinct)
        parts = [name]
        while self._at_operator(".") :
            self._advance()
            if self._accept_operator("*"):
                return ast.Star(qualifier=".".join(parts))
            parts.append(self._expect_identifier("column name"))
        return ast.ColumnRef(tuple(parts))


def parse_sql(text: str) -> list[ast.Statement]:
    """Parse a string holding one or more ``;``-separated statements."""
    return Parser(text).parse_statements()


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement; raises if there are zero or several."""
    statements = parse_sql(text)
    if len(statements) != 1:
        raise ParseError(f"expected exactly one statement, found {len(statements)}")
    return statements[0]


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone scalar expression (used by tests and the REPL)."""
    parser = Parser(text)
    expression = parser.parse_expression()
    token = parser._peek()
    if token.kind is not TokenKind.EOF:
        raise ParseError(f"unexpected trailing input: {token.text!r}", token.line, token.column)
    return expression
