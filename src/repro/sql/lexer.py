"""SQL tokenizer.

Produces a stream of :class:`Token` objects with 1-based line/column
positions (used by :class:`~repro.errors.ParseError`). Keywords are
recognized case-insensitively; the SQL-PLE keywords of the paper
(``PROVENANCE``, ``BASERELATION``, ``CONTRIBUTION``, ``INFLUENCE``,
``COPY``) are ordinary keywords here so the parser can treat them
contextually — plain SQL queries that use them as identifiers still parse
when quoted.

Parameter placeholders — positional ``?`` and named ``:name`` — lex as
PARAM tokens (``::`` remains the cast operator).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ParseError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PARAM = "param"
    EOF = "eof"


# Every word the parser treats specially. Membership here only means the
# token is tagged KEYWORD; reserved-ness is decided by the parser.
KEYWORDS = frozenset(
    """
    select from where group by having order limit offset distinct all as
    and or not null true false is in like ilike between exists any some
    case when then else end cast asc desc nulls first last
    join inner left right full outer cross on using natural
    union intersect except
    create table view drop insert into values delete update set
    if replace temp temporary materialized refresh
    provenance baserelation contribution influence copy partial complete
    transitive explain analyze rewrite algebra plan
    begin commit rollback savepoint release start transaction work to
    checkpoint
    count sum avg min max
    primary key references default unique check
    """.split()
)

# Multi-character operators, longest first so the lexer is greedy.
_OPERATORS = ["<>", "!=", "<=", ">=", "||", "::", "=", "<", ">", "+", "-", "*", "/", "%",
              "(", ")", ",", ".", ";"]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass tokenizer over a SQL string."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.kind is TokenKind.EOF:
                return out

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self._text):
                if self._text[self._pos] == "\n":
                    self._line += 1
                    self._col = 1
                else:
                    self._col += 1
                self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._col
                self._advance(2)
                while self._pos < len(self._text) and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self._pos >= len(self._text):
                    raise ParseError("unterminated block comment", start_line, start_col)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, col = self._line, self._col
        if self._pos >= len(self._text):
            return Token(TokenKind.EOF, "", line, col)
        ch = self._peek()

        if ch == "'":
            return self._lex_string(line, col)
        if ch == '"':
            return self._lex_quoted_ident(line, col)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, col)
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, col)
        if ch == "?":
            self._advance()
            return Token(TokenKind.PARAM, "?", line, col)
        if ch == ":" and (self._peek(1).isalpha() or self._peek(1) == "_"):
            # Named placeholder :name ("::" casts are handled below).
            self._advance()
            start = self._pos
            while self._pos < len(self._text) and (self._peek().isalnum() or self._peek() == "_"):
                self._advance()
            return Token(TokenKind.PARAM, ":" + self._text[start:self._pos], line, col)
        for op in _OPERATORS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenKind.OPERATOR, op, line, col)
        raise ParseError(f"unexpected character {ch!r}", line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise ParseError("unterminated string literal", line, col)
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # '' escape
                    chars.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenKind.STRING, "".join(chars), line, col)
            chars.append(ch)
            self._advance()

    def _lex_quoted_ident(self, line: int, col: int) -> Token:
        self._advance()
        chars: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise ParseError("unterminated quoted identifier", line, col)
            ch = self._peek()
            if ch == '"':
                if self._peek(1) == '"':
                    chars.append('"')
                    self._advance(2)
                    continue
                self._advance()
                if not chars:
                    raise ParseError("empty quoted identifier", line, col)
                return Token(TokenKind.IDENT, "".join(chars), line, col)
            chars.append(ch)
            self._advance()

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        seen_dot = False
        seen_exp = False
        while self._pos < len(self._text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                self._advance()
            elif ch in "eE" and not seen_exp and self._pos > start:
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    seen_exp = True
                    self._advance()
                    if self._peek() in "+-":
                        self._advance()
                else:
                    break
            else:
                break
        return Token(TokenKind.NUMBER, self._text[start:self._pos], line, col)

    def _lex_word(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        word = self._text[start:self._pos]
        kind = TokenKind.KEYWORD if word.lower() in KEYWORDS else TokenKind.IDENT
        return Token(kind, word, line, col)


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, returning a list ending with an EOF token."""
    return Lexer(text).tokens()
