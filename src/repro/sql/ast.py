"""Abstract syntax tree for the SQL / SQL-PLE dialect.

Nodes are small frozen-ish dataclasses (mutable where the analyzer
annotates them). The AST is deliberately *unresolved*: column references
are name paths, relations are names. The analyzer
(:mod:`repro.analyzer`) turns an AST into a resolved algebra tree.

SQL-PLE additions relative to plain SQL (paper §2.4):

* :class:`ProvenanceClause` attached to a :class:`Select` — produced by
  ``SELECT PROVENANCE [ON CONTRIBUTION (...)]``;
* ``baserelation`` flag on FROM items — ``FROM v1 BASERELATION`` stops
  the rewrite at that item (it is treated like a base relation);
* ``provenance_attrs`` on FROM items — ``FROM t PROVENANCE (a, b)``
  declares externally supplied provenance attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal as L
from typing import Optional, Union

from ..datatypes import Value

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for expression AST nodes."""

    __slots__ = ()


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: Value


@dataclass
class Parameter(Expression):
    """A bind-parameter placeholder: positional ``?`` or named ``:name``.

    ``index`` is the 0-based slot in the enclosing statement's parameter
    order (assigned by the parser; repeated ``:name`` occurrences share
    one slot). Values are supplied at execution time through the DB-API
    front end (:meth:`repro.Connection.execute` / prepared statements).
    """

    index: int
    name: Optional[str] = None


@dataclass
class ColumnRef(Expression):
    """A possibly qualified column reference such as ``v1.mId``.

    ``parts`` holds the path components in source order; the analyzer
    resolves the final component as the column name and everything before
    it as the relation qualifier.
    """

    parts: tuple[str, ...]

    @property
    def name(self) -> str:
        return self.parts[-1]

    @property
    def qualifier(self) -> Optional[str]:
        return self.parts[-2] if len(self.parts) > 1 else None


@dataclass
class Star(Expression):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None


@dataclass
class BinaryOp(Expression):
    """Binary operator: arithmetic, comparison, AND/OR, ``||``, LIKE."""

    op: str
    left: Expression
    right: Expression


@dataclass
class UnaryOp(Expression):
    """Unary operator: NOT, unary minus / plus."""

    op: str
    operand: Expression


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class IsDistinct(Expression):
    """``a IS [NOT] DISTINCT FROM b`` — null-safe (in)equality."""

    left: Expression
    right: Expression
    negated: bool = False  # True for IS NOT DISTINCT FROM


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    operand: Expression
    items: list[Expression]
    negated: bool = False


@dataclass
class InSubquery(Expression):
    operand: Expression
    query: "QueryExpr"
    negated: bool = False


@dataclass
class Exists(Expression):
    query: "QueryExpr"
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    query: "QueryExpr"


@dataclass
class QuantifiedComparison(Expression):
    """``expr op ANY (subquery)`` / ``expr op ALL (subquery)``."""

    op: str
    quantifier: L["any", "all"]
    operand: Expression
    query: "QueryExpr"


@dataclass
class FuncCall(Expression):
    """Function or aggregate call. ``count(*)`` sets ``star``."""

    name: str
    args: list[Expression]
    distinct: bool = False
    star: bool = False


@dataclass
class Case(Expression):
    """Searched or simple CASE."""

    operand: Optional[Expression]
    whens: list[tuple[Expression, Expression]]
    else_result: Optional[Expression] = None


@dataclass
class Cast(Expression):
    operand: Expression
    type_name: str


# ---------------------------------------------------------------------------
# Query expressions
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False
    nulls_first: Optional[bool] = None


@dataclass
class ProvenanceClause:
    """``SELECT PROVENANCE [ON CONTRIBUTION (semantics)]``.

    ``contribution`` is one of ``influence`` (default; PI-CS /
    why-provenance), ``copy partial`` or ``copy complete`` (C-CS /
    where-provenance variants).
    """

    contribution: str = "influence"


class FromItem:
    """Base class for FROM-clause items."""

    __slots__ = ()


@dataclass
class TableRef(FromItem):
    """A base relation or view reference, with SQL-PLE modifiers."""

    name: str
    alias: Optional[str] = None
    baserelation: bool = False
    provenance_attrs: Optional[list[str]] = None


@dataclass
class SubqueryRef(FromItem):
    """A derived table ``(SELECT ...) AS alias``, with SQL-PLE modifiers."""

    query: "QueryExpr"
    alias: Optional[str] = None
    column_aliases: Optional[list[str]] = None
    baserelation: bool = False
    provenance_attrs: Optional[list[str]] = None


@dataclass
class JoinRef(FromItem):
    """An explicit JOIN between two FROM items."""

    kind: L["inner", "left", "right", "full", "cross"]
    left: FromItem
    right: FromItem
    condition: Optional[Expression] = None
    using: Optional[list[str]] = None
    natural: bool = False


@dataclass
class Select:
    """A single SELECT block."""

    items: list[SelectItem]
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    distinct: bool = False
    provenance: Optional[ProvenanceClause] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None


@dataclass
class SetOp:
    """UNION / INTERSECT / EXCEPT, set or bag (ALL) semantics."""

    op: L["union", "intersect", "except"]
    all: bool
    left: "QueryExpr"
    right: "QueryExpr"
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None


QueryExpr = Union[Select, SetOp]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    __slots__ = ()


@dataclass
class QueryStatement(Statement):
    query: QueryExpr


@dataclass
class ColumnDef:
    name: str
    type_name: str


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef]
    if_not_exists: bool = False


@dataclass
class CreateTableAs(Statement):
    name: str
    query: QueryExpr
    if_not_exists: bool = False


@dataclass
class CreateView(Statement):
    name: str
    query: QueryExpr
    or_replace: bool = False


@dataclass
class CreateMaterializedView(Statement):
    """``CREATE MATERIALIZED VIEW name [WITH PROVENANCE] AS query``.

    ``with_provenance`` materializes the provenance-rewritten query (the
    stored rows include the ``prov_*`` columns), registering them so
    later ``SELECT PROVENANCE`` queries resume from the stored columns
    — the paper's eager provenance storage (§2.4) applied to a
    maintained materialization.
    """

    name: str
    query: QueryExpr
    with_provenance: bool = False


@dataclass
class RefreshMaterializedView(Statement):
    """``REFRESH MATERIALIZED VIEW name`` — recompute the stored rows
    from the current base-table state and clear staleness."""

    name: str


@dataclass
class DropRelation(Statement):
    kind: L["table", "view", "materialized view"]
    name: str
    if_exists: bool = False


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[list[str]]
    # Either literal VALUES rows or a source query.
    rows: Optional[list[list[Expression]]] = None
    query: Optional[QueryExpr] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]]
    where: Optional[Expression] = None


@dataclass
class Explain(Statement):
    """``EXPLAIN [REWRITE|ALGEBRA|PLAN] <query>`` — the browser's panes."""

    mode: L["rewrite", "algebra", "plan"]
    statement: Statement


@dataclass
class TransactionControl(Statement):
    """Transaction control: ``BEGIN``/``START TRANSACTION``, ``COMMIT``,
    ``ROLLBACK``, ``SAVEPOINT n``, ``ROLLBACK TO [SAVEPOINT] n`` and
    ``RELEASE [SAVEPOINT] n``. Carries no expressions (and therefore no
    parameter placeholders); the connection interprets it against its
    transaction state rather than the query pipeline."""

    action: L["begin", "commit", "rollback", "savepoint", "rollback_to", "release"]
    savepoint: Optional[str] = None


@dataclass
class Checkpoint(Statement):
    """``CHECKPOINT`` — force a durable snapshot + WAL rotation on a
    persistent database (a no-op on in-memory ones). Like transaction
    control it never enters the query pipeline."""


def statement_parameters(statement: Statement) -> tuple[Optional[str], ...]:
    """Parameter slots of a parsed statement, in slot order.

    Each entry is the placeholder's name (for ``:name`` style) or ``None``
    (for positional ``?``). The parser attaches this to every top-level
    statement it produces; statements built by hand have no parameters.
    """
    return getattr(statement, "parameters", ())
