"""The asyncio socket server.

One event loop accepts connections and frames messages; all engine work
runs on a bounded :class:`~concurrent.futures.ThreadPoolExecutor` so a
long provenance query never stalls the loop. Requests on one connection
are strictly serialized (read -> execute -> respond), so each session is
single-threaded from the engine's point of view; different sessions run
genuinely concurrently, sharing one :class:`~repro.engine.Database`
under row-level MVCC.

Admission control, enforced before any engine work:

* ``max_sessions`` — connections beyond it are greeted with a
  structured :class:`~repro.errors.ServerBusy` error frame and closed;
* ``max_pending`` — a global bound on queued-plus-running requests
  across all sessions; requests beyond it get a ``ServerBusy`` response
  (the session survives; the client backs off and retries).

A client that disconnects mid-session (even mid-query) is torn down
defensively: its open transaction is rolled back and its session slot
freed, so abandoned clients can neither leak snapshots (which would pin
version GC) nor exhaust admission slots.

:class:`ServerThread` runs the whole thing on a background thread for
tests, benchmarks and embedding.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..engine.database import Database
from ..errors import OperationalError, PermError, ServerBusy
from . import protocol
from .session import Session
from .stats import ServerStats

DEFAULT_PORT = 5433  # one past PostgreSQL, in the paper's spirit


class PermServer:
    """A provenance SQL server over one shared :class:`Database`."""

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 256,
        max_workers: int = 8,
        max_pending: int = 128,
        default_engine: Optional[str] = None,
    ):
        self.database = database if database is not None else Database()
        self.host = host
        self.port = port  # 0 = ephemeral; replaced once listening
        self.max_sessions = max_sessions
        self.max_pending = max_pending
        self.default_engine = default_engine
        self.stats = ServerStats()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-worker"
        )
        self._session_ids = itertools.count(1)
        self._pending = 0
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise OperationalError("server is already running")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)

    def snapshot(self) -> dict:
        """Server-wide counters plus version-GC stats (the ``server``
        half of a STATS response)."""
        snap = self.stats.snapshot()
        snap["max_sessions"] = self.max_sessions
        snap["max_pending"] = self.max_pending
        snap["granularity"] = self.database.manager.granularity
        return snap

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.stats.sessions_open >= self.max_sessions:
            self.stats.bump("sessions_rejected")
            await self._try_write(
                writer,
                protocol.error_response(
                    ServerBusy(
                        f"session limit reached ({self.max_sessions}); retry later"
                    )
                ),
            )
            writer.close()
            return
        self.stats.bump("sessions_open")
        self.stats.bump("sessions_total")
        session = Session(
            self.database,
            self.stats,
            session_id=next(self._session_ids),
            default_engine=self.default_engine,
            server_snapshot=self.snapshot,
        )
        loop = asyncio.get_running_loop()
        clean = False
        try:
            while True:
                message = await self._read_message(reader)
                if message is None:
                    break  # EOF: client went away
                if message.get("op") == "close":
                    await self._try_write(writer, {"ok": True, "bye": True})
                    clean = True
                    break
                response = await self._execute(loop, session, message)
                if not await self._try_write(writer, response):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # disconnect mid-frame: teardown below still runs
        finally:
            if not clean:
                self.stats.bump("disconnects")
            self.stats.bump("sessions_open", -1)
            # Teardown rolls back the session's open transaction and
            # frees its snapshot; run it on the pool like any other
            # engine work.
            await loop.run_in_executor(self._pool, session.teardown)
            writer.close()

    async def _execute(
        self, loop: asyncio.AbstractEventLoop, session: Session, message: dict
    ) -> dict:
        if self._pending >= self.max_pending:
            self.stats.bump("busy_rejections")
            return protocol.error_response(
                ServerBusy(
                    f"request queue is full ({self.max_pending} in flight); "
                    "retry later"
                )
            )
        self._pending += 1
        try:
            return await loop.run_in_executor(self._pool, session.handle, message)
        finally:
            self._pending -= 1

    async def _read_message(
        self, reader: asyncio.StreamReader
    ) -> Optional[dict]:
        try:
            header = await reader.readexactly(protocol.HEADER_SIZE)
            body = await reader.readexactly(protocol.frame_length(header))
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        return protocol.decode_body(body)

    async def _try_write(self, writer: asyncio.StreamWriter, message: dict) -> bool:
        try:
            writer.write(protocol.encode_frame(message))
            await writer.drain()
            return True
        except (ConnectionError, PermError):
            return False


class ServerThread:
    """Run a :class:`PermServer` on a background thread (tests,
    benchmarks, and embedding a server next to application code).

    >>> with ServerThread(PermServer()) as handle:   # doctest: +SKIP
    ...     client = ServerClient("127.0.0.1", handle.port)
    """

    def __init__(self, server: PermServer):
        self.server = server
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise OperationalError(f"server failed to start: {self._error}")
        if not self._ready.is_set():
            raise OperationalError("server did not start within 30s")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
