"""Per-connection server sessions.

A :class:`Session` owns exactly one embedded
:class:`~repro.engine.Connection` plus the wire-visible state around it:
the engine choice and autocommit mode (set by HELLO), the open
transaction (BEGIN/COMMIT/ROLLBACK travel over the wire like any other
request), numbered prepared-statement handles, and per-session counters.

``handle()`` is synchronous and runs on a worker-pool thread; the
server serializes requests per connection (it never reads the next
request before responding to the current one), so a session is only
ever executing one request at a time — possibly on different pool
threads, which the engine tolerates because the MVCC activation is
scoped to each statement. ``handle()`` never raises: every failure
becomes a structured error response."""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..engine.connection import Connection, resolve_engine
from ..engine.database import Database
from ..errors import OperationalError, PermError, ProgrammingError, SerializationError
from . import protocol
from .stats import ServerStats, SessionStats


class Session:
    def __init__(
        self,
        database: Database,
        server_stats: ServerStats,
        session_id: int,
        default_engine: Optional[str] = None,
        server_snapshot: Optional[Callable[[], dict]] = None,
    ):
        self.database = database
        self.session_id = session_id
        self.stats = SessionStats()
        self._server_stats = server_stats
        self._server_snapshot = server_snapshot or (lambda: {})
        self._engine = resolve_engine(default_engine)
        self._autocommit = True
        self._conn: Optional[Connection] = None
        self._prepared: dict[int, object] = {}
        self._next_handle = 1
        self._retries_reported = 0

    # ------------------------------------------------------------------
    @property
    def connection(self) -> Connection:
        if self._conn is None:
            self._conn = Connection(
                database=self.database,
                engine=self._engine,
                autocommit=self._autocommit,
            )
        return self._conn

    def handle(self, message: dict) -> dict:
        """Execute one request; always returns a response payload."""
        started = time.perf_counter()
        try:
            response = self._dispatch(message)
        except SerializationError as exc:
            self.stats.conflicts += 1
            self._server_stats.bump("conflicts")
            self.stats.errors += 1
            self._server_stats.bump("errors")
            response = protocol.error_response(exc)
        except BaseException as exc:  # noqa: BLE001 - becomes a wire error
            self.stats.errors += 1
            self._server_stats.bump("errors")
            response = protocol.error_response(exc)
        finally:
            self._account_retries()
        elapsed = time.perf_counter() - started
        op = message.get("op")
        if op in ("query", "execute"):
            self.stats.latency.record(elapsed)
            self._server_stats.latency.record(elapsed)
        return response

    def _dispatch(self, message: dict) -> dict:
        op = message.get("op")
        if op == "hello":
            return self._op_hello(message)
        if op == "query":
            return self._op_query(message)
        if op == "prepare":
            return self._op_prepare(message)
        if op == "execute":
            return self._op_execute(message)
        if op in ("begin", "commit", "rollback"):
            return self._op_txn(op)
        if op == "stats":
            return self.stats_response()
        raise ProgrammingError(f"unknown protocol op {op!r}")

    # ------------------------------------------------------------------
    def _op_hello(self, message: dict) -> dict:
        if self._conn is not None:
            raise OperationalError("HELLO must precede the first statement")
        if "engine" in message and message["engine"] is not None:
            self._engine = resolve_engine(str(message["engine"]))
        if "autocommit" in message and message["autocommit"] is not None:
            self._autocommit = bool(message["autocommit"])
        return {
            "ok": True,
            "server": "repro",
            "protocol": protocol.PROTOCOL_VERSION,
            "session": self.session_id,
            "engine": self._engine,
            "autocommit": self._autocommit,
        }

    def _op_query(self, message: dict) -> dict:
        sql = message.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProgrammingError("query requires a non-empty 'sql' string")
        params = _params(message)
        cursor = self.connection.execute(sql, params)
        self.stats.queries += 1
        self._server_stats.bump("queries")
        return _result_response(cursor)

    def _op_prepare(self, message: dict) -> dict:
        sql = message.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProgrammingError("prepare requires a non-empty 'sql' string")
        statement = self.connection.prepare(sql)
        handle = self._next_handle
        self._next_handle += 1
        self._prepared[handle] = statement
        return {
            "ok": True,
            "handle": handle,
            "columns": statement.columns,
            "parameters": statement.parameter_count,
        }

    def _op_execute(self, message: dict) -> dict:
        handle = message.get("handle")
        statement = self._prepared.get(handle)  # type: ignore[arg-type]
        if statement is None:
            raise ProgrammingError(f"unknown prepared-statement handle {handle!r}")
        relation = statement.execute(_params(message))  # type: ignore[union-attr]
        self.stats.queries += 1
        self._server_stats.bump("queries")
        return {
            "ok": True,
            "columns": list(relation.columns),
            "rows": protocol.rows_to_wire(relation.rows),
            "rowcount": len(relation.rows),
            "provenance": list(relation.provenance_attrs),
        }

    def _op_txn(self, op: str) -> dict:
        conn = self.connection
        if op == "begin":
            conn.begin()
        elif op == "commit":
            conn.commit()
        else:
            conn.rollback()
        return {"ok": True, "in_transaction": conn.in_transaction}

    def stats_response(self) -> dict:
        retries = self._conn.serialization_retries if self._conn else 0
        return {
            "ok": True,
            "session": self.stats.snapshot(retries=retries),
            "server": self._server_snapshot(),
            "gc": self.database.gc_stats(),
            "wal": self.database.wal_stats(),
            "matviews": self.database.matview_stats(),
        }

    # ------------------------------------------------------------------
    def _account_retries(self) -> None:
        """Fold this connection's autocommit retry counter into the
        server-wide total (delta since last report)."""
        if self._conn is None:
            return
        current = self._conn.serialization_retries
        delta = current - self._retries_reported
        if delta > 0:
            self._server_stats.bump("retries", delta)
            self._retries_reported = current

    def teardown(self) -> None:
        """Session end (CLOSE or disconnect): roll back any open
        transaction and release the embedded connection. Safe to call
        more than once."""
        conn, self._conn = self._conn, None
        self._prepared.clear()
        if conn is not None:
            try:
                conn.close()  # close() rolls back an open transaction
            except PermError:  # pragma: no cover - teardown is best-effort
                pass


def _params(message: dict):
    params = message.get("params")
    if params is None or isinstance(params, (list, dict)):
        return protocol.params_from_wire(params)
    raise ProgrammingError("params must be a list (positional) or object (named)")


def _result_response(cursor) -> dict:
    description = cursor.description
    return {
        "ok": True,
        "columns": [entry[0] for entry in description] if description else [],
        "rows": protocol.rows_to_wire(cursor.fetchall()),
        "rowcount": cursor.rowcount,
        "provenance": list(cursor.provenance_attrs or ()),
    }
