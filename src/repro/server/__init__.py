"""The concurrent SQL server: Perm over a wire.

The paper's Perm system lives inside PostgreSQL, where many clients
query one provenance-enabled database concurrently. This subpackage
gives the reproduction that deployment shape: an asyncio socket server
(:class:`PermServer`) speaking a small length-prefixed JSON protocol
(:mod:`repro.server.protocol`), per-connection sessions holding engine
choice, transaction and prepared-statement state
(:mod:`repro.server.session`), a bounded worker pool running engine
work off the event loop, admission control with structured
:class:`~repro.errors.ServerBusy` rejections, live counters
(:mod:`repro.server.stats`), and a small blocking client
(:mod:`repro.server.client`) used by tests, benchmarks and
``python -m repro.server``.
"""

from .client import ServerClient, ServerError
from .server import PermServer, ServerThread
from .session import Session

__all__ = [
    "PermServer",
    "ServerThread",
    "ServerClient",
    "ServerError",
    "Session",
]
