"""The wire protocol: length-prefixed JSON frames.

Every message — request or response — is one UTF-8 JSON object preceded
by a 4-byte big-endian length. Small, explicit, and implementable in a
few lines from any language.

Requests are ``{"op": ..., ...}``; the ops are:

========== =======================================================
``hello``  ``{engine?, autocommit?}`` — session options; must precede
           the first statement. Response carries server identity.
``query``  ``{sql, params?}`` — execute one statement (SELECT,
           PROVENANCE queries, DML, DDL, BEGIN/COMMIT/ROLLBACK all
           work; params positional list or named mapping).
``prepare``  ``{sql}`` — plan a query once; response carries ``handle``.
``execute``  ``{handle, params?}`` — run a prepared handle.
``begin`` / ``commit`` / ``rollback`` — transaction control.
``stats``  session + server counters (latency percentiles, conflicts,
           retries, GC, WAL, materialized-view freshness).
``close``  end the session (the server also tears down on disconnect).
========== =======================================================

Successful responses are ``{"ok": true, ...}``; failures are
``{"ok": false, "error": {"type": <PEP 249 class name>, "message": ...,
"retryable": bool}}``. ``type`` names a class from :mod:`repro.errors`
(``SerializationError``, ``ProgrammingError``, ``ServerBusy``, ...), so
clients re-raise the exact exception the embedded API would have raised;
``retryable`` marks the two losses a client should simply retry
(serialization conflicts and admission rejections).
"""

from __future__ import annotations

import json
import struct
from typing import Optional

from .. import errors
from ..datatypes import from_jsonsafe_value, to_jsonsafe_value

# 4-byte big-endian unsigned frame length.
_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

# Refuse absurd frames before allocating for them (a malformed or
# malicious header would otherwise ask for gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

PROTOCOL_VERSION = 1

# Wire name -> exception class, for every PermError subclass (walked at
# import so new error classes are automatically wire-representable).
ERROR_CLASSES: dict[str, type] = {
    name: obj
    for name, obj in vars(errors).items()
    if isinstance(obj, type) and issubclass(obj, errors.PermError)
}

_RETRYABLE = (errors.SerializationError, errors.ServerBusy)


def encode_frame(message: dict) -> bytes:
    """One wire frame: header plus compact, strictly RFC 8259 JSON.

    ``allow_nan=False`` because Python's default would emit bare
    ``Infinity``/``NaN`` tokens no strict parser accepts; non-finite
    floats must be tagged first (:func:`rows_to_wire` /
    :func:`params_to_wire` do this for every value-carrying field)."""
    try:
        body = json.dumps(
            message, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except ValueError as exc:
        raise errors.OperationalError(
            f"frame is not strictly JSON-encodable: {exc}"
        ) from exc
    if len(body) > MAX_FRAME_BYTES:
        raise errors.OperationalError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict):
        raise errors.ProgrammingError("protocol frames must be JSON objects")
    return message


def frame_length(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise errors.OperationalError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    return length


def error_response(exc: BaseException) -> dict:
    """Encode an exception as a structured error payload. Non-Perm
    exceptions (true server bugs) are wrapped as OperationalError so the
    client always sees the PEP 249 surface."""
    if isinstance(exc, errors.PermError):
        type_name = type(exc).__name__
        if type_name not in ERROR_CLASSES:  # subclass defined elsewhere
            type_name = "OperationalError"
    else:
        type_name = "OperationalError"
    return {
        "ok": False,
        "error": {
            "type": type_name,
            "message": str(exc),
            "retryable": isinstance(exc, _RETRYABLE),
        },
    }


def exception_from_payload(error: dict) -> Exception:
    """The inverse of :func:`error_response`, used by clients."""
    cls = ERROR_CLASSES.get(str(error.get("type")), errors.OperationalError)
    return cls(str(error.get("message", "unknown server error")))


def rows_to_wire(rows) -> list[list]:
    """Result rows as JSON arrays. SQL values are JSON-native except
    non-finite floats (``1e308 * 10``), which travel as tagged objects
    so the frame stays strict RFC 8259 JSON."""
    return [[to_jsonsafe_value(value) for value in row] for row in rows]


def rows_from_wire(rows: Optional[list]) -> list[tuple]:
    return [tuple(from_jsonsafe_value(value) for value in row) for row in rows or []]


def params_to_wire(params: Optional[object]) -> Optional[object]:
    """Statement parameters (positional list or named mapping) with the
    same non-finite tagging as result rows."""
    if isinstance(params, (list, tuple)):
        return [to_jsonsafe_value(value) for value in params]
    if isinstance(params, dict):
        return {name: to_jsonsafe_value(value) for name, value in params.items()}
    return params


def params_from_wire(params: Optional[object]) -> Optional[object]:
    if isinstance(params, list):
        return [from_jsonsafe_value(value) for value in params]
    if isinstance(params, dict):
        return {name: from_jsonsafe_value(value) for name, value in params.items()}
    return params
