"""``python -m repro.server`` — start the SQL server from the shell.

Example::

    python -m repro.server --port 5433 --engine vectorized \
        --init schema.sql

``--init`` runs a SQL script (``;``-separated statements) against the
fresh database before accepting connections, which is how a served
instance gets its schema and seed data.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from ..backend.registry import engine_names
from ..engine.connection import Connection
from ..engine.database import Database
from .server import DEFAULT_PORT, PermServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.server",
        description="Serve a Perm provenance database over a socket.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--engine",
        default=None,
        help="default execution engine for sessions that do not choose one "
        f"({', '.join(engine_names())})",
    )
    parser.add_argument(
        "--granularity",
        default="row",
        choices=("row", "table"),
        help="write-write conflict granularity (default: row)",
    )
    parser.add_argument("--max-sessions", type=int, default=256)
    parser.add_argument("--max-workers", type=int, default=8)
    parser.add_argument("--max-pending", type=int, default=128)
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="open (or create) a durable database in this directory: "
        "committed transactions survive restarts via a checkpoint "
        "snapshot plus write-ahead log (default: in-memory)",
    )
    parser.add_argument(
        "--durability",
        default="fsync",
        choices=("fsync", "os", "off"),
        help="how hard COMMIT lands in the WAL (fsync: power-loss safe; "
        "os: crash safe; off: buffered). Only with --data-dir",
    )
    parser.add_argument(
        "--checkpoint-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rewrite the snapshot whenever the WAL exceeds N bytes "
        "(0 disables the automatic checkpointer)",
    )
    parser.add_argument(
        "--init",
        default=None,
        metavar="SCRIPT.sql",
        help="SQL script to run against the fresh database before serving",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    database = Database(
        conflict_granularity=args.granularity,
        path=args.data_dir,
        durability=args.durability,
        checkpoint_bytes=args.checkpoint_bytes,
    )
    if database.persistent:
        recovered = database.wal_stats()
        print(
            f"recovered {args.data_dir}: "
            f"{len(database.catalog.tables)} table(s), "
            f"{recovered['records_replayed']} WAL record(s) replayed, "
            f"{recovered['torn_bytes_truncated']} torn byte(s) truncated "
            f"in {recovered['recovery_ms']} ms",
            flush=True,
        )
    if args.init:
        with open(args.init, "r", encoding="utf-8") as handle:
            script = handle.read()
        conn = Connection(database=database)
        try:
            conn.run(script)
        finally:
            conn.close()
    server = PermServer(
        database=database,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        max_workers=args.max_workers,
        max_pending=args.max_pending,
        default_engine=args.engine,
    )

    async def serve() -> None:
        await server.start()
        print(f"repro server listening on {server.host}:{server.port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        database.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
