"""A small blocking client for the wire protocol.

Used by the integration tests, ``bench_server.py`` and as the reference
implementation of the protocol from the consumer side. One socket, one
session; requests are synchronous (send a frame, read the response
frame). Server-reported errors re-raise as the PEP 249 exception class
the embedded API would have raised (:class:`~repro.errors.ServerBusy`
and :class:`~repro.errors.SerializationError` are the retryable ones).
"""

from __future__ import annotations

import socket
from typing import Optional

from ..errors import OperationalError
from . import protocol


class ServerError(OperationalError):
    """A response frame that was not understandable as success or a
    structured error (protocol violation, truncated stream)."""


class QueryResult:
    """One statement's result: columns, rows (as tuples), rowcount and
    which columns carry provenance."""

    __slots__ = ("columns", "rows", "rowcount", "provenance_attrs")

    def __init__(self, payload: dict):
        self.columns: list[str] = list(payload.get("columns") or [])
        self.rows: list[tuple] = protocol.rows_from_wire(payload.get("rows"))
        self.rowcount: int = int(payload.get("rowcount", -1))
        self.provenance_attrs: tuple[str, ...] = tuple(payload.get("provenance") or ())

    def fetchall(self) -> list[tuple]:
        return list(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class PreparedHandle:
    """A server-side prepared statement, executable by handle."""

    __slots__ = ("_client", "handle", "columns", "parameters")

    def __init__(self, client: "ServerClient", payload: dict):
        self._client = client
        self.handle: int = payload["handle"]
        self.columns: list[str] = list(payload.get("columns") or [])
        self.parameters: int = int(payload.get("parameters", 0))

    def execute(self, params: Optional[object] = None) -> QueryResult:
        return QueryResult(
            self._client.request(
                {
                    "op": "execute",
                    "handle": self.handle,
                    "params": protocol.params_to_wire(params),
                }
            )
        )


class ServerClient:
    """A blocking protocol client (context-manager friendly)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 5433,
        engine: Optional[str] = None,
        autocommit: Optional[bool] = None,
        timeout: Optional[float] = 30.0,
        hello: bool = True,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._closed = False
        self.server_info: dict = {}
        if hello:
            self.server_info = self.request(
                {"op": "hello", "engine": engine, "autocommit": autocommit}
            )

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------
    def _recv_exactly(self, count: int) -> bytes:
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ServerError("server closed the connection mid-frame")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def request(self, message: dict) -> dict:
        """Send one request frame, read one response frame; raises the
        server-reported exception on failure, returns the payload on
        success."""
        if self._closed:
            raise ServerError("client is closed")
        self._sock.sendall(protocol.encode_frame(message))
        header = self._recv_exactly(protocol.HEADER_SIZE)
        payload = protocol.decode_body(
            self._recv_exactly(protocol.frame_length(header))
        )
        if payload.get("ok"):
            return payload
        error = payload.get("error")
        if isinstance(error, dict):
            raise protocol.exception_from_payload(error)
        raise ServerError(f"malformed server response: {payload!r}")

    # ------------------------------------------------------------------
    # SQL surface
    # ------------------------------------------------------------------
    def query(self, sql: str, params: Optional[object] = None) -> QueryResult:
        return QueryResult(
            self.request(
                {"op": "query", "sql": sql, "params": protocol.params_to_wire(params)}
            )
        )

    execute = query  # DB-API-flavored alias

    def prepare(self, sql: str) -> PreparedHandle:
        return PreparedHandle(self, self.request({"op": "prepare", "sql": sql}))

    def begin(self) -> None:
        self.request({"op": "begin"})

    def commit(self) -> None:
        self.request({"op": "commit"})

    def rollback(self) -> None:
        self.request({"op": "rollback"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._sock.sendall(protocol.encode_frame({"op": "close"}))
            header = self._recv_exactly(protocol.HEADER_SIZE)
            self._recv_exactly(protocol.frame_length(header))
        except (OSError, ServerError):
            pass  # best-effort goodbye; the server tears down either way
        finally:
            self._closed = True
            self._sock.close()

    def disconnect(self) -> None:
        """Drop the socket without the CLOSE handshake (tests use this
        to exercise the server's abrupt-disconnect teardown)."""
        self._closed = True
        self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
