"""Server observability: latency reservoirs and counter snapshots.

Counters are deliberately simple — plain ints guarded by a lock, plus a
bounded latency reservoir good enough for p50/p99 — and are exposed to
clients through the ``STATS`` protocol message from day one, so load
problems on a busy server are diagnosable without instrumenting it.
"""

from __future__ import annotations

import threading
from typing import Optional


class LatencyReservoir:
    """A bounded sample of query latencies (seconds) for percentile
    estimates. Once full it overwrites round-robin — recent traffic
    dominates, which is what a STATS probe wants to see."""

    def __init__(self, capacity: int = 2048):
        self._capacity = capacity
        self._samples: list[float] = []
        self._cursor = 0
        self._count = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._count += 1
            if len(self._samples) < self._capacity:
                self._samples.append(seconds)
            else:
                self._samples[self._cursor] = seconds
                self._cursor = (self._cursor + 1) % self._capacity

    def percentile(self, fraction: float) -> Optional[float]:
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def snapshot(self) -> dict:
        return {
            "count": self._count,
            "p50_ms": _ms(self.percentile(0.50)),
            "p99_ms": _ms(self.percentile(0.99)),
        }


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1000.0, 3)


class ServerStats:
    """Server-wide counters (shared across sessions; lock-guarded)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.sessions_total = 0
        self.sessions_open = 0
        self.sessions_rejected = 0
        self.queries = 0
        self.errors = 0
        self.conflicts = 0
        self.retries = 0
        self.busy_rejections = 0
        self.disconnects = 0
        self.latency = LatencyReservoir()

    def bump(self, field: str, amount: int = 1) -> None:
        with self.lock:
            setattr(self, field, getattr(self, field) + amount)

    def snapshot(self) -> dict:
        with self.lock:
            counters = {
                "sessions_total": self.sessions_total,
                "sessions_open": self.sessions_open,
                "sessions_rejected": self.sessions_rejected,
                "queries": self.queries,
                "errors": self.errors,
                "conflicts": self.conflicts,
                "retries": self.retries,
                "busy_rejections": self.busy_rejections,
                "disconnects": self.disconnects,
            }
        counters["latency"] = self.latency.snapshot()
        return counters


class SessionStats:
    """Per-session counters (touched only by that session's serialized
    requests, so no lock is needed)."""

    def __init__(self) -> None:
        self.queries = 0
        self.errors = 0
        self.conflicts = 0
        self.latency = LatencyReservoir(capacity=512)

    def snapshot(self, retries: int = 0) -> dict:
        return {
            "queries": self.queries,
            "errors": self.errors,
            "conflicts": self.conflicts,
            "retries": retries,
            "latency": self.latency.snapshot(),
        }
