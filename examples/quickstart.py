"""Quickstart: the paper's running example, end to end.

Builds the Figure 1 forum database, runs the example queries q1-q3, and
computes the provenance of q1 — reproducing Figure 2 — plus the SQL-PLE
variations of §2.4.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PermDB


def main() -> None:
    db = PermDB()

    # -- Figure 1: schema and data ---------------------------------------
    db.execute(
        """
        CREATE TABLE messages (mId int, text text, uId int);
        CREATE TABLE users (uId int, name text);
        CREATE TABLE imports (mId int, text text, origin text);
        CREATE TABLE approved (uId int, mId int);

        INSERT INTO messages VALUES (1, 'lorem ipsum ...', 3), (4, 'hi there ...', 2);
        INSERT INTO users VALUES (1, 'Bert'), (2, 'Gert'), (3, 'Gertrud');
        INSERT INTO imports VALUES (2, 'hello ...', 'superForum'),
                                   (3, 'I don''t ...', 'HiBoard');
        INSERT INTO approved VALUES (2, 2), (1, 4), (2, 4), (3, 4);
        """
    )

    # -- q1: all messages, entered or imported ---------------------------
    q1 = "SELECT mId, text FROM messages UNION SELECT mId, text FROM imports"
    print("q1: all messages")
    print(db.execute(q1 + " ORDER BY mId").format(), "\n")

    # -- q2: store q1 as a view ------------------------------------------
    db.execute(f"CREATE VIEW v1 AS {q1}")

    # -- q3: approval counts per message ----------------------------------
    q3 = (
        "SELECT count(*), text FROM v1 JOIN approved a ON (v1.mId = a.mId) "
        "GROUP BY v1.mId, text"
    )
    print("q3: approvals per message (unapproved messages omitted)")
    print(db.execute(q3).format(), "\n")

    # -- Figure 2: the provenance of q1 ------------------------------------
    print("Figure 2: SELECT PROVENANCE on q1")
    prov = db.execute(
        "SELECT PROVENANCE mId, text FROM messages "
        "UNION SELECT mId, text FROM imports ORDER BY mId"
    )
    print(prov.format())
    print("original attributes:  ", prov.original_attrs)
    print("provenance attributes:", list(prov.provenance_attrs), "\n")

    # -- §2.4: provenance of an aggregation, then querying it --------------
    print("provenance of q3 (aggregation provenance, INFLUENCE semantics)")
    print(
        db.execute(
            "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text "
            "FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text"
        ).format(),
        "\n",
    )

    print("filtering provenance with plain SQL (imported from superForum):")
    print(
        db.execute(
            "SELECT text, prov_imports_origin FROM "
            "(SELECT PROVENANCE count(*) AS cnt, text "
            " FROM v1 JOIN approved a ON v1.mId = a.mId "
            " GROUP BY v1.mId, text) AS prov "
            "WHERE cnt > 0 AND prov_imports_origin = 'superForum'"
        ).format(),
        "\n",
    )

    print("BASERELATION: treat the view itself as the provenance source")
    print(db.execute("SELECT PROVENANCE text FROM v1 BASERELATION").format())


if __name__ == "__main__":
    main()
