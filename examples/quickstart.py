"""Quickstart: the paper's running example on the DB-API front end.

Builds the Figure 1 forum database through a Connection/Cursor session,
runs the example queries q1-q3, computes the provenance of q1 —
reproducing Figure 2 — and shows the SQL-PLE variations of §2.4, using
parameterized statements and a prepared statement where the original
demo re-sent raw SQL.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    conn = repro.connect()

    # -- Figure 1: schema and data ---------------------------------------
    conn.execute(
        """
        CREATE TABLE messages (mId int, text text, uId int);
        CREATE TABLE users (uId int, name text);
        CREATE TABLE imports (mId int, text text, origin text);
        CREATE TABLE approved (uId int, mId int);
        """
    )
    conn.executemany(
        "INSERT INTO messages VALUES (?, ?, ?)",
        [(1, "lorem ipsum ...", 3), (4, "hi there ...", 2)],
    )
    conn.executemany(
        "INSERT INTO users VALUES (?, ?)",
        [(1, "Bert"), (2, "Gert"), (3, "Gertrud")],
    )
    conn.executemany(
        "INSERT INTO imports VALUES (?, ?, ?)",
        [(2, "hello ...", "superForum"), (3, "I don't ...", "HiBoard")],
    )
    conn.executemany(
        "INSERT INTO approved VALUES (?, ?)",
        [(2, 2), (1, 4), (2, 4), (3, 4)],
    )

    # -- q1: all messages, entered or imported ---------------------------
    q1 = "SELECT mId, text FROM messages UNION SELECT mId, text FROM imports"
    print("q1: all messages (cursor iteration)")
    for mid, text in conn.execute(q1 + " ORDER BY mId"):
        print(f"  {mid}  {text}")
    print()

    # -- q2: store q1 as a view ------------------------------------------
    conn.execute(f"CREATE VIEW v1 AS {q1}")

    # -- q3: approval counts per message ----------------------------------
    cursor = conn.execute(
        "SELECT count(*), text FROM v1 JOIN approved a ON (v1.mId = a.mId) "
        "GROUP BY v1.mId, text"
    )
    print("q3: approvals per message (unapproved messages omitted)")
    print("columns:", [name for name, *_ in cursor.description])
    print("rows:   ", cursor.fetchall(), "\n")

    # -- Figure 2: the provenance of q1 ------------------------------------
    print("Figure 2: SELECT PROVENANCE on q1")
    cursor = conn.execute(
        "SELECT PROVENANCE mId, text FROM messages "
        "UNION SELECT mId, text FROM imports ORDER BY mId"
    )
    prov = cursor.relation
    print(prov.format())
    print("original attributes:  ", prov.original_attrs)
    print("provenance attributes:", list(cursor.provenance_attrs), "\n")

    # -- §2.4: provenance of an aggregation, then querying it --------------
    print("provenance of q3 (aggregation provenance, INFLUENCE semantics)")
    print(
        conn.execute(
            "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text "
            "FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text"
        ).relation.format(),
        "\n",
    )

    # -- prepared statement: the pipeline runs once, execute() many times --
    stmt = conn.prepare(
        "SELECT text, prov_imports_origin FROM "
        "(SELECT PROVENANCE count(*) AS cnt, text "
        " FROM v1 JOIN approved a ON v1.mId = a.mId "
        " GROUP BY v1.mId, text) AS prov "
        "WHERE cnt > 0 AND prov_imports_origin = ?"
    )
    print("filtering provenance with plain SQL, prepared + parameterized:")
    for origin in ("superForum", "HiBoard"):
        print(f"  origin={origin!r}: {stmt.execute((origin,)).rows}")
    print(
        "pipeline counters:",
        f"analyze={conn.counters.analyze}",
        f"execute={conn.counters.execute}",
        "(the prepared statement analyzed once, executed twice)",
        "\n",
    )

    print("BASERELATION: treat the view itself as the provenance source")
    print(conn.execute("SELECT PROVENANCE text FROM v1 BASERELATION").relation.format())

    # -- execution engines: same results, different execution style ------
    # connect(engine="vectorized") runs batch-at-a-time columnar
    # execution (2-5x faster on scan-heavy queries); the default "row"
    # engine pulls tuple at a time. REPRO_ENGINE sets a process default.
    vectorized = repro.connect(engine="vectorized")
    vectorized.execute("CREATE TABLE m (mId int, text text)")
    vectorized.executemany(
        "INSERT INTO m VALUES (?, ?)", [(1, "lorem ipsum ..."), (4, "hi there ...")]
    )
    print(f"\nvectorized engine ({vectorized.engine}) agrees:")
    print(vectorized.execute("SELECT PROVENANCE text FROM m").relation.format())


if __name__ == "__main__":
    main()
