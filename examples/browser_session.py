"""An interactive Perm-browser session, scripted.

Replays the demonstration of the paper's §3 with the text browser:
running queries, inspecting the rewritten SQL and algebra trees (the
Figure 4 panes), switching contribution semantics, and toggling rewrite
strategies.

Run:  python examples/browser_session.py
"""

from __future__ import annotations

from repro.browser import PermBrowser
from repro.workloads.forum import SQLPLE_AGGREGATION, create_forum_db


def main() -> None:
    db = create_forum_db()
    browser = PermBrowser(db)

    print("### Part 1 — query execution")
    print(browser.show("SELECT PROVENANCE mId, text FROM messages "
                       "UNION SELECT mId, text FROM imports"))

    print("\n\n### Part 2 — rewrite analysis (aggregation rule)")
    view = browser.run(SQLPLE_AGGREGATION)
    print(view.render(max_rows=6))

    print("\n\n### Part 3 — implementation details: per-stage timings")
    profile = db.profile(SQLPLE_AGGREGATION)
    print(profile.summary())

    print("\n\n### Part 4 — strategy toggles")
    browser.set_union_strategy("joinback")
    print("union strategy = joinback; rewritten SQL now joins the union back:")
    joined = browser.run(
        "SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports"
    )
    print(joined.rewritten_tree)
    browser.set_union_strategy("pad")

    print("\ncontribution semantics = COPY PARTIAL:")
    copy_view = browser.run(
        "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) text FROM messages"
    )
    print(copy_view.result.format())


if __name__ == "__main__":
    main()
